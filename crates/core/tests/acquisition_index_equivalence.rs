//! The `AcquisitionIndex` determinism contract, proven end to end.
//!
//! The ALM's persistent candidate index promises that incremental syncing
//! (change-log ingest, in-place label masking, Δ-anchor coverage updates,
//! sketch reuse) produces **bit-identical selections** to a from-scratch
//! rebuild at the same store/label state, at any `compute_threads` setting.
//! These property tests drive randomized interleavings of *extract*, *label*,
//! *train*, and *explore* events against two managers:
//!
//! * the **incremental** ALM lives across the whole interleaving, growing its
//!   index call over call;
//! * the **from-scratch** oracle is a brand-new ALM constructed at every
//!   explore event, whose first selection rebuilds the candidate state from
//!   the full store snapshot and label list.
//!
//! Both must return the same picks and the same selection stats, for
//! Coreset, Cluster-Margin, and rare-class Uncertainty, with the candidate
//! cap set low enough that the cluster-sketch reduction is exercised too.
//!
//! The incremental ALM keeps the model-version-aware `ProbabilityCache` at
//! its default (enabled) while the from-scratch oracle runs with the cache
//! disabled, so every property here simultaneously proves the cache's
//! bit-identical contract: cached probability rows must never change a
//! selection relative to plain `predict_proba_batch`.

use proptest::prelude::*;
use ve_al::AcquisitionKind;
use ve_features::{ExtractorId, FeatureSimulator};
use ve_storage::{LabelRecord, LabelStore, StorageManager};
use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle, TaskKind, TimeRange, VideoId};
use vocalexplore::alm::ActiveLearningManager;
use vocalexplore::config::{FeatureSelectionPolicy, SamplingPolicy, VocalExploreConfig};
use vocalexplore::feature_manager::FeatureManager;
use vocalexplore::model_manager::ModelManager;

const EXTRACTOR: ExtractorId = ExtractorId::Mvit;
const BUDGET: usize = 3;
const CLIP_LEN: f64 = 1.0;
/// Low cap so the sketch reduction participates in most interleavings.
const CAP: usize = 16;

fn dataset() -> &'static Dataset {
    static DATASET: std::sync::OnceLock<Dataset> = std::sync::OnceLock::new();
    DATASET.get_or_init(|| Dataset::scaled(DatasetName::Deer, 0.1, 5))
}

fn config(kind: AcquisitionKind) -> VocalExploreConfig {
    let mut cfg = VocalExploreConfig::for_dataset(dataset(), 5)
        .with_sampling(SamplingPolicy::Fixed(kind))
        .with_feature_selection(FeatureSelectionPolicy::Fixed(EXTRACTOR))
        // `extra_candidates_x = 0` keeps the lazy-extension RNG out of the
        // picture: a freshly constructed oracle ALM has a fresh RNG, so the
        // equivalence statement is about the deterministic index path.
        .with_extra_candidates(0)
        .with_candidate_cap(CAP);
    cfg.train.epochs = 20;
    cfg
}

/// One step of a randomized session. The `(code, arg)` pairs produced by
/// proptest map onto these.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Extract features for the next `n` corpus videos.
    Extract(usize),
    /// Label one currently unlabeled window (video chosen by `arg`).
    Label(usize),
    /// Train the model on the labels collected so far.
    Train,
    /// Run one `Explore` selection and compare incremental vs from-scratch.
    Explore,
}

fn decode(events: &[(usize, usize)]) -> Vec<Event> {
    let mut out = Vec::with_capacity(events.len() + 3);
    // Guarantee a feature-bearing pool before the first selection so the
    // active path never falls back to RNG-driven random sampling.
    out.push(Event::Extract(BUDGET + 1));
    out.push(Event::Explore);
    for &(code, arg) in events {
        out.push(match code {
            0 => Event::Extract(1 + arg % 3),
            1 => Event::Label(arg),
            2 => Event::Explore,
            _ => Event::Train,
        });
    }
    out.push(Event::Explore);
    out
}

/// Picks the next `n` corpus videos to extract, walking the corpus with a
/// position-dependent stride so video ids arrive **out of order**: most
/// ingests land before the index tail, forcing the `AcquisitionIndex` merge
/// splice (not just the O(Δ) tail append) under the equivalence oracle.
fn extraction_plan<'a>(
    dataset: &'a Dataset,
    extracted: &[VideoId],
    n: usize,
) -> Vec<&'a ve_vidsim::VideoClip> {
    let videos = dataset.train.videos();
    let total = videos.len();
    let done: std::collections::HashSet<VideoId> = extracted.iter().copied().collect();
    let mut plan = Vec::with_capacity(n);
    // A stride coprime with most corpus sizes scatters the walk; the offset
    // shifts with how much is already extracted so successive events visit
    // different regions.
    let stride = 7;
    let offset = (extracted.len() * 13) % total.max(1);
    let mut probe = offset;
    for _ in 0..total {
        if plan.len() == n {
            break;
        }
        let clip = &videos[probe];
        if !done.contains(&clip.id) && !plan.iter().any(|c: &&ve_vidsim::VideoClip| c.id == clip.id)
        {
            plan.push(clip);
        }
        probe = (probe + stride) % total;
    }
    // The strided walk visits only one stride-coset when the stride divides
    // the corpus size; top up with a plain scan so `n` is always honored.
    for clip in videos {
        if plan.len() == n {
            break;
        }
        if !done.contains(&clip.id) && !plan.iter().any(|c: &&ve_vidsim::VideoClip| c.id == clip.id)
        {
            plan.push(clip);
        }
    }
    plan
}

/// Runs one interleaving; returns the pick sequence of every explore event.
/// Panics (failing the property) if any explore's picks or stats diverge
/// between the incremental ALM and a freshly built one.
fn run_interleaving(
    kind: AcquisitionKind,
    target: Option<usize>,
    events: &[Event],
) -> Vec<Vec<(VideoId, TimeRange)>> {
    let dataset = dataset();
    let cfg = config(kind);
    let fm = FeatureManager::new(
        FeatureSimulator::new(DatasetName::Deer, cfg.num_classes, 5),
        StorageManager::new(),
    );
    let mm = ModelManager::new(cfg.clone());
    let mut labels = LabelStore::new();
    let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
    let mut incremental = ActiveLearningManager::new(cfg.clone());
    let mut extracted: Vec<VideoId> = Vec::new();
    let mut all_picks = Vec::new();

    for &event in events {
        match event {
            Event::Extract(n) => {
                for clip in extraction_plan(dataset, &extracted, n) {
                    fm.ensure_clip(EXTRACTOR, clip).unwrap();
                    extracted.push(clip.id);
                }
            }
            Event::Label(arg) => {
                if extracted.is_empty() {
                    continue;
                }
                let vid = extracted[arg % extracted.len()];
                let clip = dataset.train.get(vid).expect("extracted from corpus");
                let window = (0..clip.num_windows(CLIP_LEN))
                    .map(|w| TimeRange::new(w as f64 * CLIP_LEN, (w + 1) as f64 * CLIP_LEN))
                    .find(|range| !labels.is_labeled(vid, range));
                if let Some(range) = window {
                    labels.add(LabelRecord {
                        vid,
                        range,
                        classes: oracle.label(&dataset.train, vid, &range),
                        iteration: 0,
                    });
                }
            }
            Event::Train => {
                mm.train(EXTRACTOR, &dataset.train, &fm, labels.records(), 0, None)
                    .unwrap();
            }
            Event::Explore => {
                let (picks, stats) = incremental.select_segments(
                    &dataset.train,
                    &fm,
                    &mm,
                    &labels,
                    BUDGET,
                    CLIP_LEN,
                    target,
                );
                // From-scratch oracle: a new ALM whose index rebuilds from
                // the current store snapshot and full label list, with the
                // probability cache disabled (cached vs uncached must agree
                // bit for bit).
                let mut fresh = ActiveLearningManager::new(cfg.clone().with_prob_cache(false));
                let (fresh_picks, fresh_stats) = fresh.select_segments(
                    &dataset.train,
                    &fm,
                    &mm,
                    &labels,
                    BUDGET,
                    CLIP_LEN,
                    target,
                );
                assert_eq!(
                    picks, fresh_picks,
                    "incremental selection diverged from a from-scratch rebuild ({kind:?})"
                );
                assert_eq!(stats, fresh_stats, "selection stats diverged ({kind:?})");
                assert_eq!(stats.acquisition, kind, "active path must not fall back");
                all_picks.push(picks);
            }
        }
    }
    all_picks
}

fn event_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..4, 0usize..17), 6..18)
}

proptest! {
    // 3 × 20 cases ≥ 50 randomized interleavings before even counting the
    // thread-count property below.
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn coreset_incremental_matches_from_scratch(events in event_strategy()) {
        let events = decode(&events);
        run_interleaving(AcquisitionKind::Coreset, None, &events);
    }

    #[test]
    fn cluster_margin_incremental_matches_from_scratch(events in event_strategy()) {
        let events = decode(&events);
        run_interleaving(AcquisitionKind::ClusterMargin, None, &events);
    }

    #[test]
    fn uncertainty_incremental_matches_from_scratch(events in event_strategy()) {
        let events = decode(&events);
        // `Explore(label = 2)` forces the rare-class uncertainty sampler
        // regardless of the configured policy.
        run_interleaving(AcquisitionKind::Uncertainty, Some(2), &events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn selections_identical_across_compute_threads(events in event_strategy()) {
        let events = decode(&events);
        let _guard = ve_sched::parallel::test_parallelism_guard();
        for kind in [AcquisitionKind::Coreset, AcquisitionKind::ClusterMargin] {
            ve_sched::parallel::set_parallelism(1);
            let single = run_interleaving(kind, None, &events);
            ve_sched::parallel::set_parallelism(4);
            let multi = run_interleaving(kind, None, &events);
            ve_sched::parallel::set_parallelism(0);
            assert_eq!(single, multi, "thread count changed {kind:?} selections");
        }
    }
}

/// The invalidation rules the property interleavings cannot reach: a
/// *replaced* store entry and a dropped extractor must both rebuild the
/// index, and the rebuilt state must still match a from-scratch ALM.
#[test]
fn replaced_entries_and_extractor_drops_rebuild_to_from_scratch_state() {
    let dataset = dataset();
    let cfg = config(AcquisitionKind::Coreset);
    let storage = StorageManager::new();
    let fm = FeatureManager::new(
        FeatureSimulator::new(DatasetName::Deer, cfg.num_classes, 5),
        storage.clone(),
    );
    let mm = ModelManager::new(cfg.clone());
    let mut labels = LabelStore::new();
    let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
    let mut incremental = ActiveLearningManager::new(cfg.clone());

    let compare = |incremental: &mut ActiveLearningManager, labels: &LabelStore| {
        let (picks, stats) =
            incremental.select_segments(&dataset.train, &fm, &mm, labels, BUDGET, CLIP_LEN, None);
        let mut fresh = ActiveLearningManager::new(cfg.clone().with_prob_cache(false));
        let (fresh_picks, fresh_stats) =
            fresh.select_segments(&dataset.train, &fm, &mm, labels, BUDGET, CLIP_LEN, None);
        assert_eq!(picks, fresh_picks, "picks diverged after invalidation");
        assert_eq!(stats, fresh_stats);
        picks
    };

    // Seed an out-of-order pool, some labels, and a first selection.
    let mut extracted: Vec<VideoId> = Vec::new();
    for clip in extraction_plan(dataset, &extracted, 6) {
        fm.ensure_clip(EXTRACTOR, clip).unwrap();
        extracted.push(clip.id);
    }
    for &vid in extracted.iter().take(2) {
        let range = TimeRange::new(0.0, CLIP_LEN);
        labels.add(LabelRecord {
            vid,
            range,
            classes: oracle.label(&dataset.train, vid, &range),
            iteration: 0,
        });
    }
    compare(&mut incremental, &labels);

    // Replaced upsert: overwrite an ingested entry with identical vectors.
    // The change log records `replaced == true`, which must invalidate the
    // incremental index even though the bytes are unchanged.
    let victim = extracted[3];
    let vectors = storage.with_features(|f| {
        f.get(EXTRACTOR, victim)
            .expect("victim was extracted")
            .to_vectors()
    });
    storage.with_features_mut(|f| f.put(EXTRACTOR, victim, vectors));
    compare(&mut incremental, &labels);

    // Dropped extractor: the whole pool vanishes; re-extract a smaller pool
    // before selecting again (an empty pool would route both managers
    // through RNG-driven lazy extension, which is out of scope here). The
    // labeled videos must be part of it: coreset anchor lookups extract
    // labeled videos on demand mid-call, and that store mutation would put
    // the from-scratch oracle — which runs *after* the incremental call — at
    // a different store state than the call under test.
    storage.with_features_mut(|f| f.drop_extractor(EXTRACTOR));
    let survivors: Vec<VideoId> = extracted.iter().take(4).copied().collect();
    for &vid in &survivors {
        let clip = dataset.train.get(vid).expect("from corpus");
        fm.ensure_clip(EXTRACTOR, clip).unwrap();
    }
    let picks = compare(&mut incremental, &labels);
    let survivor_set: std::collections::HashSet<VideoId> = survivors.into_iter().collect();
    assert!(
        picks.iter().all(|(vid, _)| survivor_set.contains(vid)),
        "picks must come from the re-extracted pool: {picks:?}"
    );
}

/// Deterministic hit/miss accounting of the probability cache across a small
/// session: consecutive explores on an unchanged model serve rows from the
/// cache, a retrain invalidates wholesale.
#[test]
fn prob_cache_hits_between_trains_and_invalidates_on_retrain() {
    let dataset = dataset();
    let cfg = config(AcquisitionKind::ClusterMargin);
    let fm = FeatureManager::new(
        FeatureSimulator::new(DatasetName::Deer, cfg.num_classes, 5),
        StorageManager::new(),
    );
    let mm = ModelManager::new(cfg.clone());
    let mut labels = LabelStore::new();
    let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
    let mut alm = ActiveLearningManager::new(cfg.clone());

    let mut extracted: Vec<VideoId> = Vec::new();
    for clip in extraction_plan(dataset, &extracted, 12) {
        fm.ensure_clip(EXTRACTOR, clip).unwrap();
        extracted.push(clip.id);
    }
    for &vid in extracted.iter().take(8) {
        let range = TimeRange::new(0.0, CLIP_LEN);
        labels.add(LabelRecord {
            vid,
            range,
            classes: oracle.label(&dataset.train, vid, &range),
            iteration: 0,
        });
    }
    assert!(mm
        .train(EXTRACTOR, &dataset.train, &fm, labels.records(), 0, None)
        .unwrap());

    let explore = |alm: &mut ActiveLearningManager, labels: &LabelStore| {
        alm.select_segments(&dataset.train, &fm, &mm, labels, BUDGET, CLIP_LEN, None)
    };
    explore(&mut alm, &labels);
    let cold = alm.prob_cache_stats();
    assert!(cold.miss_rows > 0, "first explore fills the cache");
    assert_eq!(cold.hit_rows, 0);

    // Same model, same index: the second explore is all hits.
    explore(&mut alm, &labels);
    let warm = alm.prob_cache_stats();
    assert_eq!(warm.miss_rows, cold.miss_rows, "no new rows computed");
    assert!(warm.hit_rows > 0, "unchanged model version must serve hits");

    // A retrain bumps the model version: the next explore recomputes.
    assert!(mm
        .train(EXTRACTOR, &dataset.train, &fm, labels.records(), 1, None)
        .unwrap());
    explore(&mut alm, &labels);
    let after = alm.prob_cache_stats();
    assert!(after.invalidations > warm.invalidations, "version bump");
    assert!(after.miss_rows > warm.miss_rows, "rows recomputed");
}
