//! Stress tests for the priority executor: concurrent submitters, priority
//! ordering under contention, panic storms, and counter convergence.

// Raw threads on purpose: these tests hammer the executor *from outside* it,
// which is exactly what the disallowed-methods rule forbids in product code.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;
use ve_sched::{Executor, Priority, RetryPolicy, TaskFailure};

const PRIORITIES: [Priority; 3] = [Priority::Critical, Priority::Normal, Priority::Background];

#[test]
fn mixed_priority_flood_from_many_submitters_runs_every_job() {
    const SUBMITTERS: usize = 8;
    const JOBS_PER_SUBMITTER: usize = 250;

    let ex = Arc::new(Executor::new(4));
    let ran = Arc::new(AtomicUsize::new(0));
    let start = Arc::new(Barrier::new(SUBMITTERS));

    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|s| {
            let ex = Arc::clone(&ex);
            let ran = Arc::clone(&ran);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                for j in 0..JOBS_PER_SUBMITTER {
                    let ran = Arc::clone(&ran);
                    ex.submit(PRIORITIES[(s + j) % 3], move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    ex.wait_idle();
    let total = (SUBMITTERS * JOBS_PER_SUBMITTER) as u64;
    assert_eq!(ran.load(Ordering::SeqCst) as u64, total);
    let stats = ex.stats();
    assert_eq!(stats.submitted, total);
    assert_eq!(
        stats.completed, total,
        "counters must converge after a flood"
    );
    assert_eq!(stats.failed, 0);
}

#[test]
fn priority_classes_never_invert_under_a_single_worker() {
    // Gate the only worker so every submission (from several racing threads)
    // is queued before anything executes; execution order then equals queue
    // order, which must be Critical, then Normal, then Background.
    let ex = Arc::new(Executor::new(1));
    let gate = Arc::new(AtomicBool::new(false));
    {
        let gate = Arc::clone(&gate);
        ex.submit(Priority::Critical, move || {
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    }

    let order: Arc<Mutex<Vec<Priority>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Arc::new(Barrier::new(3));
    let handles: Vec<_> = (0..3)
        .map(|s| {
            let ex = Arc::clone(&ex);
            let order = Arc::clone(&order);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                for j in 0..30 {
                    // Each submitter interleaves all three classes.
                    let priority = PRIORITIES[(s + j) % 3];
                    let order = Arc::clone(&order);
                    ex.submit(priority, move || {
                        order.lock().unwrap().push(priority);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    gate.store(true, Ordering::SeqCst);
    ex.wait_idle();

    let order = order.lock().unwrap();
    assert_eq!(order.len(), 90);
    let boundary_ok = order.windows(2).all(|w| w[0] <= w[1]);
    assert!(
        boundary_ok,
        "priority classes inverted in execution order: {order:?}"
    );
}

#[test]
fn stats_converge_when_jobs_panic_under_load() {
    const SUBMITTERS: usize = 4;
    const JOBS_PER_SUBMITTER: usize = 100;

    let ex = Arc::new(Executor::new(3));
    let succeeded = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|s| {
            let ex = Arc::clone(&ex);
            let succeeded = Arc::clone(&succeeded);
            std::thread::spawn(move || {
                for j in 0..JOBS_PER_SUBMITTER {
                    let succeeded = Arc::clone(&succeeded);
                    if j % 10 == 3 {
                        ex.submit(PRIORITIES[(s + j) % 3], || panic!("storm"));
                    } else {
                        ex.submit(PRIORITIES[(s + j) % 3], move || {
                            succeeded.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    ex.wait_idle();
    let total = (SUBMITTERS * JOBS_PER_SUBMITTER) as u64;
    let panicked = (SUBMITTERS * JOBS_PER_SUBMITTER / 10) as u64;
    let stats = ex.stats();
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.failed, panicked);
    assert_eq!(succeeded.load(Ordering::SeqCst) as u64, total - panicked);
    assert_eq!(stats.succeeded(), total - panicked);
}

#[test]
fn retry_storm_converges_at_one_and_eight_workers() {
    // Every job fails a known number of attempts before succeeding; the
    // retry budget always covers it, so the storm must finish with no
    // give-ups and an exactly predictable `retried` counter — at any
    // worker count.
    const JOBS: u64 = 200;
    let policy = RetryPolicy::new(4, 0.0, 2.0);
    for workers in [1usize, 8] {
        let ex = Executor::new(workers);
        let handles: Vec<_> = (0..JOBS)
            .map(|i| {
                ex.submit_retryable(PRIORITIES[(i % 3) as usize], policy, move |attempt| {
                    // Job i needs `i % 4` failed attempts before succeeding
                    // (0..=3, always within the 4-attempt budget).
                    if u64::from(attempt) < i % 4 {
                        Err(format!("transient #{attempt}"))
                    } else {
                        Ok(i * i)
                    }
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let i = i as u64;
            assert_eq!(handle.join_task().unwrap(), i * i, "workers={workers}");
        }
        ex.wait_idle();
        let stats = ex.stats();
        let expected_retries: u64 = (0..JOBS).map(|i| i % 4).sum();
        assert_eq!(stats.submitted, JOBS, "workers={workers}");
        assert_eq!(stats.completed, JOBS, "workers={workers}");
        assert_eq!(
            stats.failed, 0,
            "retries are not panics (workers={workers})"
        );
        assert_eq!(stats.retried, expected_retries, "workers={workers}");
        assert_eq!(stats.gave_up, 0, "workers={workers}");
    }
}

#[test]
fn give_up_storm_with_panics_converges_and_never_hangs() {
    // A mixed flood: a third of the jobs exhaust their retry budget, a
    // tenth panic outright, the rest succeed first try. Counters must
    // converge exactly and the drain barrier must return promptly.
    const JOBS: u64 = 300;
    let policy = RetryPolicy::new(3, 0.0, 2.0);
    for workers in [1usize, 8] {
        let ex = Arc::new(Executor::new(workers));
        let mut doomed = Vec::new();
        let mut fine = Vec::new();
        for i in 0..JOBS {
            if i % 10 == 7 {
                ex.submit(PRIORITIES[(i % 3) as usize], || panic!("storm"));
            } else if i % 3 == 0 {
                doomed.push(ex.submit_retryable::<u64, _, _>(
                    PRIORITIES[(i % 3) as usize],
                    policy,
                    move |attempt| Err(format!("permanent #{attempt}")),
                ));
            } else {
                fine.push(ex.submit_retryable::<_, String, _>(
                    PRIORITIES[(i % 3) as usize],
                    policy,
                    move |_| Ok(i),
                ));
            }
        }
        assert!(
            ex.wait_for(Duration::from_secs(30)),
            "the flood must drain (workers={workers})"
        );
        let doomed_count = doomed.len() as u64;
        for handle in doomed {
            match handle.join_task() {
                Err(TaskFailure::GaveUp { attempts, .. }) => assert_eq!(attempts, 3),
                other => panic!("expected give-up, got {other:?} (workers={workers})"),
            }
        }
        for handle in fine {
            assert!(handle.join_task().is_ok(), "workers={workers}");
        }
        let panicked = (0..JOBS).filter(|i| i % 10 == 7).count() as u64;
        let stats = ex.stats();
        assert_eq!(stats.submitted, JOBS, "workers={workers}");
        assert_eq!(stats.completed, JOBS, "workers={workers}");
        assert_eq!(stats.failed, panicked, "workers={workers}");
        // Each doomed job burns attempts 0..3: two re-runs, one give-up.
        assert_eq!(stats.retried, doomed_count * 2, "workers={workers}");
        assert_eq!(stats.gave_up, doomed_count, "workers={workers}");
        assert_eq!(stats.pending(), 0, "workers={workers}");
    }
}

#[test]
fn handles_resolve_under_concurrent_load() {
    let ex = Arc::new(Executor::new(4));
    let handles: Vec<_> = (0..200u64)
        .map(|i| ex.submit_with_handle(PRIORITIES[(i % 3) as usize], move || i * i))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.join().unwrap(), (i * i) as u64);
    }
    ex.wait_idle();
    assert_eq!(ex.stats().failed, 0);
}
