//! The user-facing VOCALExplore system (Table 1 API).
//!
//! [`VocalExplore`] wires the Storage, Feature, Model, and Active Learning
//! managers together behind the four API calls of the paper: `AddVideo`,
//! `Watch`, `Explore`, and `AddLabel`. This facade is the "real" in-process
//! execution path used by the examples and integration tests; the latency
//! experiments use the [`crate::harness`] driver on top of it so that GPU
//! costs (which are simulated) can be accounted per scheduling strategy.

use crate::alm::{ActiveLearningManager, SelectionStats};
use crate::api::{ExploreBatch, SegmentRef};
use crate::config::VocalExploreConfig;
use crate::degradation::Degradation;
use crate::feature_manager::FeatureManager;
use crate::model_manager::{InferenceError, ModelManager};
use crate::observability::{Obs, ObsHandle, SessionEvent};
use std::sync::Arc;
use ve_al::AcquisitionKind;
use ve_features::{ExtractorId, FeatureSimulator};
use ve_sched::fault::FaultInjector;
use ve_storage::{LabelRecord, StorageManager, VideoRecord};
use ve_vidsim::{ClassId, TimeRange, VideoClip, VideoCorpus, VideoId};

/// The VOCALExplore system.
///
/// The Feature and Model managers are held behind `Arc` so the async session
/// engine ([`crate::session::AsyncSessionRunner`]) can hand clones of them to
/// closures running on `ve_sched::Executor` worker threads; both managers use
/// interior locking and are safe to share. The ALM and corpus stay owned —
/// all selection (and its RNG) runs on the calling thread.
pub struct VocalExplore {
    config: VocalExploreConfig,
    corpus: VideoCorpus,
    storage: StorageManager,
    fm: Arc<FeatureManager>,
    mm: Arc<ModelManager>,
    alm: ActiveLearningManager,
    iteration: u32,
    labels_at_last_training: usize,
    /// Shared deterministic fault injector (built from
    /// [`VocalExploreConfig::fault_plan`]); `None` in production runs.
    fault: Option<Arc<FaultInjector>>,
    /// Observability recorder: the deterministic event plane plus the
    /// metrics registry, shared with the feature/model/AL managers. The
    /// degradation ledger is a drain view over this plane.
    obs: ObsHandle,
}

impl VocalExplore {
    /// Creates a system for the configured dataset characteristics.
    pub fn new(config: VocalExploreConfig) -> Self {
        ve_sched::parallel::set_parallelism(config.compute_threads);
        let storage = StorageManager::new();
        let simulator = FeatureSimulator::with_dim(
            config.dataset,
            config.num_classes,
            config.seed,
            config.feature_dim,
        );
        let fault = config
            .fault_plan
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let obs = Obs::with_recorder_capacity(config.observability, config.recorder_capacity);
        let mut fm = FeatureManager::new(simulator, storage.clone());
        fm.set_fault_injector(fault.clone(), config.retry);
        fm.set_obs(Arc::clone(&obs));
        let fm = Arc::new(fm);
        let mut mm = ModelManager::new(config.clone());
        mm.set_fault_injector(fault.clone());
        mm.set_obs(Arc::clone(&obs));
        let mm = Arc::new(mm);
        let mut alm = ActiveLearningManager::new(config.clone());
        alm.set_obs(Arc::clone(&obs));
        Self {
            config,
            corpus: VideoCorpus::new(),
            storage,
            fm,
            mm,
            alm,
            iteration: 0,
            labels_at_last_training: 0,
            fault,
            obs,
        }
    }

    /// The shared fault injector, when a fault plan is configured (exposed
    /// for tests and the chaos harness).
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// Drains the absorbed-fault ledger accumulated since the last drain, in
    /// deterministic recording order. This is a cursor view over the
    /// observability event plane: degradations are recorded there (always,
    /// even with sinks disabled) and materialized into the legacy
    /// `Vec<Degradation>` shape here.
    pub fn drain_degradations(&mut self) -> Vec<Degradation> {
        self.obs.drain_degradations()
    }

    /// The observability recorder (event ledger + metrics registry).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Records a degradation the caller absorbed on the system's behalf
    /// (the async session engine routes its task-level losses through here
    /// so the ledger view stays complete and ordered).
    pub fn record_degradation(&mut self, degradation: Degradation) {
        self.obs.record_degradation(degradation);
    }

    /// The system configuration.
    pub fn config(&self) -> &VocalExploreConfig {
        &self.config
    }

    /// The video corpus registered so far.
    pub fn corpus(&self) -> &VideoCorpus {
        &self.corpus
    }

    /// The feature manager (exposed for the experiment harness).
    pub fn feature_manager(&self) -> &FeatureManager {
        &self.fm
    }

    /// Shared handle to the feature manager (for executor task closures).
    pub fn feature_manager_arc(&self) -> Arc<FeatureManager> {
        Arc::clone(&self.fm)
    }

    /// The model manager (exposed for the experiment harness).
    pub fn model_manager(&self) -> &ModelManager {
        &self.mm
    }

    /// Shared handle to the model manager (for executor task closures).
    pub fn model_manager_arc(&self) -> Arc<ModelManager> {
        Arc::clone(&self.mm)
    }

    /// The active learning manager (exposed for the experiment harness).
    pub fn alm(&self) -> &ActiveLearningManager {
        &self.alm
    }

    /// Mutable ALM access (harness only).
    pub fn alm_mut(&mut self) -> &mut ActiveLearningManager {
        &mut self.alm
    }

    /// Number of labels collected so far.
    pub fn label_count(&self) -> usize {
        self.storage.with_labels(|l| l.len())
    }

    /// Per-class label counts over the vocabulary.
    pub fn class_counts(&self) -> Vec<u64> {
        self.storage
            .with_labels(|l| l.class_counts(self.config.num_classes))
    }

    /// All label records collected so far.
    pub fn label_records(&self) -> Vec<LabelRecord> {
        self.storage.with_labels(|l| l.records().to_vec())
    }

    /// `AddVideo(path)`: registers a video and returns its id.
    pub fn add_video(&mut self, clip: VideoClip) -> VideoId {
        let record = VideoRecord {
            vid: clip.id,
            path: clip.path.clone(),
            duration: clip.duration,
            start_timestamp: clip.start_timestamp,
        };
        let vid = self.corpus.add_with_id(clip);
        self.storage.with_metadata_mut(|m| {
            m.insert(VideoRecord { vid, ..record });
        });
        vid
    }

    /// `Watch(vid, start, end)`: returns the stream of segments in the window
    /// with the current model's predictions attached.
    pub fn watch(&mut self, vid: VideoId, start: f64, end: f64, clip_len: f64) -> ExploreBatch {
        assert!(clip_len > 0.0, "clip length must be positive");
        let Some(clip) = self.corpus.get(vid) else {
            return ExploreBatch::default();
        };
        let end = end.min(clip.duration);
        let mut segments = Vec::new();
        let mut t = start.max(0.0);
        while t < end {
            let range = TimeRange::new(t, (t + clip_len).min(end));
            segments.push((vid, range));
            t += clip_len;
        }
        let refs = self.attach_predictions(segments);
        ExploreBatch {
            segments: refs,
            acquisition: None,
            stats: None,
        }
    }

    /// `Explore(B, t, label)`: returns `budget` system-selected segments of
    /// duration `clip_len`, with predictions attached.
    pub fn explore(
        &mut self,
        budget: usize,
        clip_len: f64,
        target_label: Option<ClassId>,
    ) -> ExploreBatch {
        assert!(clip_len > 0.0, "clip length must be positive");
        // Keep models and feature selection up to date before sampling (in
        // the in-process facade this work is synchronous; the harness
        // accounts its latency according to the scheduling strategy, and the
        // async engine runs the equivalent work on executor threads instead).
        self.process_pending_work();
        let (picks, stats) = self.sample_segments(budget, clip_len, target_label);
        let refs = self.attach_predictions(picks);
        ExploreBatch {
            segments: refs,
            acquisition: Some(stats.acquisition),
            stats: Some(stats),
        }
    }

    /// The selection step of `Explore` alone: advances the iteration counter
    /// and picks `budget` segments, without running the deferred
    /// training/evaluation work and without attaching predictions. The async
    /// session engine calls this directly — it schedules the deferred work on
    /// the executor and fans inference out as critical tasks.
    pub fn sample_segments(
        &mut self,
        budget: usize,
        clip_len: f64,
        target_label: Option<ClassId>,
    ) -> (Vec<(VideoId, TimeRange)>, SelectionStats) {
        assert!(clip_len > 0.0, "clip length must be positive");
        self.iteration += 1;
        // Events recorded from here (including by executor tasks of the
        // async engine's current window) attribute to the new iteration; the
        // synchronous path's deferred work runs *before* this bump, which is
        // how both paths tag the equivalent work identically (see the
        // `observability` module docs).
        self.obs.set_iteration(self.iteration);
        // The ALM's persistent acquisition index tracks the feature-bearing
        // pool by itself (via the feature store's change log), so no
        // per-call pool snapshot is assembled here anymore.
        let (picks, stats) = self.alm.select_segments(
            &self.corpus,
            &self.fm,
            &self.mm,
            &self.storage.with_labels(|l| l.clone()),
            budget,
            clip_len,
            target_label,
        );
        self.obs.record(SessionEvent::SelectionCompleted {
            batch: picks.len() as u32,
            videos_extracted_for_call: stats.videos_extracted_for_call as u32,
            candidates_lost: stats.candidates_lost as u32,
            coverage_fallback: stats.coverage_fallback,
        });
        if stats.candidates_lost > 0 {
            self.obs.record_degradation(Degradation::CandidatesLost {
                iteration: self.iteration,
                videos: stats.candidates_lost,
            });
        }
        if stats.coverage_fallback {
            self.obs.record_degradation(Degradation::CoverageFallback {
                iteration: self.iteration,
                extractor: self.alm.current_extractor(),
            });
        }
        (picks, stats)
    }

    /// `AddLabel(vid, start, end, label)`: records the user's label(s) for a
    /// segment.
    pub fn add_label(&mut self, vid: VideoId, range: TimeRange, classes: Vec<ClassId>) {
        let iteration = self.iteration;
        self.storage.with_labels_mut(|l| {
            l.add(LabelRecord {
                vid,
                range,
                classes,
                iteration,
            })
        });
        self.obs.record(SessionEvent::LabelAdded { vid });
        let counts = self.class_counts();
        self.alm.observe_labels(&counts);
    }

    /// Runs the deferred work the Task Scheduler would run in the background:
    /// model (re)training for the current extractor and one feature-evaluation
    /// step for the rising bandit. Returns the number of `T_e` tasks executed.
    pub fn process_pending_work(&mut self) -> usize {
        let labels = self.label_records();
        if labels.len() < self.config.min_labels_for_predictions {
            return 0;
        }
        // Feature evaluation for the bandit (one T_e per active extractor).
        let scores = self
            .alm
            .feature_evaluation_step(&self.corpus, &self.fm, &self.mm, &labels);
        // (Re)train the model of the extractor used for predictions when new
        // labels have arrived since the previous training.
        if labels.len() > self.labels_at_last_training {
            let extractor = self.alm.current_extractor();
            let cv = scores
                .iter()
                .find(|(e, _)| *e == extractor)
                .map(|(_, s)| *s);
            match self.mm.train(
                extractor,
                &self.corpus,
                &self.fm,
                &labels,
                self.iteration,
                cv,
            ) {
                Ok(true) => self.labels_at_last_training = labels.len(),
                Ok(false) => {}
                // A failed train keeps serving the previously published
                // model version (if any) — record the loss and move on.
                Err(err) => self.obs.record_degradation(Degradation::TrainingFailed {
                    iteration: err.iteration,
                    extractor: err.extractor,
                }),
            }
        }
        scores.len()
    }

    /// The videos the next eager-extraction round would process: up to
    /// `max_videos` corpus videos not yet covered by the primary extractor,
    /// in corpus order. Exposed separately from [`VocalExplore::eager_extract`]
    /// so the async engine can submit one background `T_f⁻` task per video to
    /// the executor while the synchronous path processes the identical set
    /// inline — keeping the two paths' feature pools (and therefore
    /// selections) bit-identical.
    pub fn eager_plan(&self, max_videos: usize) -> Vec<VideoId> {
        if max_videos == 0 {
            return Vec::new();
        }
        let primary = self.alm.current_extractor();
        let covered: std::collections::HashSet<VideoId> =
            self.fm.videos_with_features(primary).into_iter().collect();
        self.corpus
            .videos()
            .iter()
            .filter(|clip| !covered.contains(&clip.id))
            .take(max_videos)
            .map(|clip| clip.id)
            .collect()
    }

    /// Eagerly extracts features for up to `max_videos` unlabeled videos for
    /// every active candidate extractor (`T_f⁻` work). Returns the simulated
    /// GPU seconds spent. Used by the `VE-full` strategy during labeling time.
    pub fn eager_extract(&mut self, max_videos: usize) -> f64 {
        let extractors = self.alm.active_extractors();
        let mut spent = 0.0;
        for vid in self.eager_plan(max_videos) {
            let Some(clip) = self.corpus.get(vid) else {
                continue;
            };
            for &e in &extractors {
                // A permanently failed extraction leaves the video pending;
                // a later eager round (or lazy extension) may retry it under
                // its own fault schedule.
                match self.fm.ensure_clip(e, clip) {
                    Ok(cost) => spent += cost,
                    Err(err) => self.obs.record_degradation(Degradation::ExtractionGaveUp {
                        iteration: self.iteration,
                        extractor: err.extractor,
                        vid: err.vid,
                    }),
                }
            }
        }
        spent
    }

    /// Current acquisition function.
    pub fn current_acquisition(&self) -> AcquisitionKind {
        self.alm.current_acquisition()
    }

    /// The extractor currently used for predictions.
    pub fn current_extractor(&self) -> ExtractorId {
        self.alm.current_extractor()
    }

    /// Whether `Explore`/`Watch` will attach predictions right now (enough
    /// labels collected and a model trained for the current extractor).
    pub fn predictions_ready(&self) -> bool {
        self.label_count() >= self.config.min_labels_for_predictions
            && self.mm.has_model(self.alm.current_extractor())
    }

    fn attach_predictions(&mut self, segments: Vec<(VideoId, TimeRange)>) -> Vec<SegmentRef> {
        let predictions = if self.predictions_ready() {
            match self.mm.predict_batch(
                self.alm.current_extractor(),
                &self.corpus,
                &self.fm,
                &segments,
            ) {
                Ok(predictions) => predictions,
                // Degraded serving: the batch is returned without
                // predictions rather than failing the Explore/Watch call.
                Err(err) => {
                    if let InferenceError::Row { vid, .. } = err {
                        self.obs.record_degradation(Degradation::PredictionDropped {
                            iteration: self.iteration,
                            vid,
                        });
                    }
                    segments.iter().map(|_| Vec::new()).collect()
                }
            }
        } else {
            segments.iter().map(|_| Vec::new()).collect()
        };
        let predicted = predictions.iter().filter(|p| !p.is_empty()).count() as u32;
        self.obs.record(SessionEvent::PredictionsServed {
            segments: segments.len() as u32,
            predicted,
        });
        segments
            .into_iter()
            .zip(predictions)
            .map(|((vid, range), predictions)| SegmentRef {
                vid,
                range,
                predictions,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FeatureSelectionPolicy, SamplingPolicy};
    use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle, TaskKind};

    fn small_system(seed: u64) -> (Dataset, VocalExplore) {
        let dataset = Dataset::scaled(DatasetName::Deer, 0.08, seed);
        let config = VocalExploreConfig::for_dataset(&dataset, seed)
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
            .with_extra_candidates(5);
        let mut system = VocalExplore::new(config);
        for clip in dataset.train.videos() {
            system.add_video(clip.clone());
        }
        (dataset, system)
    }

    #[test]
    fn add_video_registers_metadata() {
        let (dataset, system) = small_system(1);
        assert_eq!(system.corpus().len(), dataset.train.len());
        assert_eq!(system.label_count(), 0);
    }

    #[test]
    fn explore_returns_requested_batch_without_predictions_initially() {
        let (_, mut system) = small_system(2);
        let batch = system.explore(5, 1.0, None);
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.acquisition, Some(AcquisitionKind::Random));
        assert!(batch.segments.iter().all(|s| s.predictions.is_empty()));
    }

    #[test]
    fn predictions_appear_after_min_labels() {
        let (dataset, mut system) = small_system(3);
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        // Label a couple of batches with ground truth.
        for _ in 0..4 {
            let batch = system.explore(5, 1.0, None);
            for seg in &batch.segments {
                let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
                system.add_label(seg.vid, seg.range, classes);
            }
        }
        let batch = system.explore(5, 1.0, None);
        assert!(
            batch.segments.iter().any(|s| !s.predictions.is_empty()),
            "after {} labels the system should return predictions",
            system.label_count()
        );
        // Predictions form a distribution over the vocabulary.
        let seg = batch
            .segments
            .iter()
            .find(|s| !s.predictions.is_empty())
            .unwrap();
        assert_eq!(seg.predictions.len(), 9);
    }

    #[test]
    fn watch_returns_consecutive_segments() {
        let (_, mut system) = small_system(4);
        let vid = system.corpus().ids()[0];
        let batch = system.watch(vid, 0.0, 4.0, 1.0);
        assert_eq!(batch.len(), 4);
        for (i, seg) in batch.segments.iter().enumerate() {
            assert_eq!(seg.range.start, i as f64);
        }
        // Watching an unknown video yields an empty batch.
        assert!(system.watch(VideoId(999_999), 0.0, 5.0, 1.0).is_empty());
    }

    #[test]
    fn labels_are_not_resampled_by_explore() {
        let (dataset, mut system) = small_system(5);
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        let mut labeled: std::collections::HashSet<(VideoId, i64)> =
            std::collections::HashSet::new();
        for _ in 0..6 {
            let batch = system.explore(5, 1.0, None);
            for seg in &batch.segments {
                let key = (seg.vid, (seg.range.start * 1000.0) as i64);
                assert!(
                    !labeled.contains(&key),
                    "segment {key:?} was offered for labeling twice"
                );
                labeled.insert(key);
                let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
                system.add_label(seg.vid, seg.range, classes);
            }
        }
    }

    #[test]
    fn eager_extraction_grows_the_feature_pool() {
        let (_, mut system) = small_system(6);
        let extractor = system.current_extractor();
        assert!(system
            .feature_manager()
            .videos_with_features(extractor)
            .is_empty());
        let spent = system.eager_extract(10);
        assert!(spent > 0.0);
        assert_eq!(
            system
                .feature_manager()
                .videos_with_features(extractor)
                .len(),
            10
        );
        // A second call skips the already-covered videos.
        system.eager_extract(10);
        assert_eq!(
            system
                .feature_manager()
                .videos_with_features(extractor)
                .len(),
            20
        );
    }

    #[test]
    fn skewed_labels_switch_the_acquisition_function() {
        let (dataset, _) = (Dataset::scaled(DatasetName::Deer, 0.08, 7), ());
        let config = VocalExploreConfig::for_dataset(&dataset, 7)
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
            .with_sampling(SamplingPolicy::default())
            .with_extra_candidates(5);
        let mut system = VocalExplore::new(config);
        for clip in dataset.train.videos() {
            system.add_video(clip.clone());
        }
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        for _ in 0..12 {
            let batch = system.explore(5, 1.0, None);
            for seg in &batch.segments {
                let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
                system.add_label(seg.vid, seg.range, classes);
            }
            if system.current_acquisition() != AcquisitionKind::Random {
                break;
            }
        }
        assert_eq!(
            system.current_acquisition(),
            AcquisitionKind::ClusterMargin,
            "the Deer label distribution is skewed enough to trigger the switch"
        );
    }

    #[test]
    #[should_panic(expected = "clip length must be positive")]
    fn explore_rejects_zero_clip_length() {
        let (_, mut system) = small_system(8);
        system.explore(5, 0.0, None);
    }

    #[test]
    fn training_faults_degrade_to_unpredicted_serving_and_are_recorded() {
        use crate::degradation::Degradation;
        use ve_sched::fault::{FaultPlan, FaultRule, FaultSite};
        let dataset = Dataset::scaled(DatasetName::Deer, 0.08, 9);
        let config = VocalExploreConfig::for_dataset(&dataset, 9)
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
            .with_extra_candidates(5)
            .with_fault_plan(
                FaultPlan::new(9).with_rule(FaultSite::Training, FaultRule::permanent(1.0)),
            );
        let mut system = VocalExplore::new(config);
        for clip in dataset.train.videos() {
            system.add_video(clip.clone());
        }
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        for _ in 0..4 {
            let batch = system.explore(5, 1.0, None);
            assert_eq!(batch.len(), 5, "selection proceeds under training faults");
            for seg in &batch.segments {
                let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
                system.add_label(seg.vid, seg.range, classes);
            }
        }
        let batch = system.explore(5, 1.0, None);
        assert!(
            batch.segments.iter().all(|s| s.predictions.is_empty()),
            "no model was ever published, so serving degrades to no predictions"
        );
        let degradations = system.drain_degradations();
        assert!(
            degradations
                .iter()
                .any(|d| matches!(d, Degradation::TrainingFailed { .. })),
            "failed trains must be recorded, got {degradations:?}"
        );
        assert!(
            system.drain_degradations().is_empty(),
            "drain empties the ledger"
        );
        assert!(system.fault_injector().unwrap().total_injected() > 0);
    }
}
