//! The feature store: per-extractor feature vectors keyed by video.
//!
//! The paper's prototype stores feature vectors in Parquet files, one row per
//! `(fid, vid, start, end, vector)`. This store keeps the same logical layout
//! in memory — a map from `(extractor, video)` to the ordered list of window
//! vectors — which is what the ALM scans when assembling candidate sets for
//! active learning and what `VE-full` grows in the background.

use std::collections::HashMap;
use ve_features::{ExtractorId, FeatureVector};
use ve_vidsim::VideoId;

/// In-memory feature-vector store.
#[derive(Debug, Clone, Default)]
pub struct FeatureStore {
    by_key: HashMap<(ExtractorId, VideoId), Vec<FeatureVector>>,
}

impl FeatureStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (replacing) the vectors of one video for one extractor.
    pub fn put(&mut self, extractor: ExtractorId, vid: VideoId, vectors: Vec<FeatureVector>) {
        self.by_key.insert((extractor, vid), vectors);
    }

    /// Returns the vectors of one video for one extractor, if extracted.
    pub fn get(&self, extractor: ExtractorId, vid: VideoId) -> Option<&[FeatureVector]> {
        self.by_key.get(&(extractor, vid)).map(|v| v.as_slice())
    }

    /// Whether features for `(extractor, vid)` are available.
    pub fn contains(&self, extractor: ExtractorId, vid: VideoId) -> bool {
        self.by_key.contains_key(&(extractor, vid))
    }

    /// Videos that have features extracted for the given extractor, sorted.
    pub fn videos_with_features(&self, extractor: ExtractorId) -> Vec<VideoId> {
        let mut ids: Vec<VideoId> = self
            .by_key
            .keys()
            .filter(|(e, _)| *e == extractor)
            .map(|(_, v)| *v)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of `(extractor, video)` entries.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Total number of stored vectors across all entries.
    pub fn total_vectors(&self) -> usize {
        self.by_key.values().map(|v| v.len()).sum()
    }

    /// Approximate resident bytes of the stored vectors (data payloads only),
    /// which the eager-extraction guardrail can use to cap background work.
    pub fn approx_bytes(&self) -> usize {
        self.by_key
            .values()
            .flat_map(|v| v.iter())
            .map(|f| f.data.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Iterates over all `(extractor, vid)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(ExtractorId, VideoId), &Vec<FeatureVector>)> {
        self.by_key.iter()
    }

    /// Drops every vector belonging to an extractor (used when the rising
    /// bandit eliminates a candidate feature and its storage can be
    /// reclaimed).
    pub fn drop_extractor(&mut self, extractor: ExtractorId) -> usize {
        let before = self.by_key.len();
        self.by_key.retain(|(e, _), _| *e != extractor);
        before - self.by_key.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_vidsim::TimeRange;

    fn fv(e: ExtractorId, vid: u64, start: f64, dim: usize) -> FeatureVector {
        FeatureVector {
            extractor: e,
            vid: VideoId(vid),
            range: TimeRange::new(start, start + 1.0),
            data: vec![start as f32; dim],
        }
    }

    #[test]
    fn put_get_and_contains() {
        let mut s = FeatureStore::new();
        s.put(ExtractorId::R3d, VideoId(1), vec![fv(ExtractorId::R3d, 1, 0.0, 4)]);
        assert!(s.contains(ExtractorId::R3d, VideoId(1)));
        assert!(!s.contains(ExtractorId::Mvit, VideoId(1)));
        assert_eq!(s.get(ExtractorId::R3d, VideoId(1)).unwrap().len(), 1);
        assert!(s.get(ExtractorId::R3d, VideoId(2)).is_none());
    }

    #[test]
    fn videos_with_features_is_sorted_per_extractor() {
        let mut s = FeatureStore::new();
        for vid in [5u64, 1, 3] {
            s.put(ExtractorId::Clip, VideoId(vid), vec![fv(ExtractorId::Clip, vid, 0.0, 4)]);
        }
        s.put(ExtractorId::R3d, VideoId(9), vec![fv(ExtractorId::R3d, 9, 0.0, 4)]);
        assert_eq!(
            s.videos_with_features(ExtractorId::Clip),
            vec![VideoId(1), VideoId(3), VideoId(5)]
        );
        assert_eq!(s.videos_with_features(ExtractorId::R3d), vec![VideoId(9)]);
    }

    #[test]
    fn aggregates_and_drop_extractor() {
        let mut s = FeatureStore::new();
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![fv(ExtractorId::R3d, 1, 0.0, 8), fv(ExtractorId::R3d, 1, 1.0, 8)],
        );
        s.put(ExtractorId::Mvit, VideoId(1), vec![fv(ExtractorId::Mvit, 1, 0.0, 8)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_vectors(), 3);
        assert_eq!(s.approx_bytes(), 3 * 8 * 4);
        assert_eq!(s.drop_extractor(ExtractorId::R3d), 1);
        assert_eq!(s.total_vectors(), 1);
        assert!(!s.contains(ExtractorId::R3d, VideoId(1)));
    }

    #[test]
    fn put_replaces_existing_entry() {
        let mut s = FeatureStore::new();
        s.put(ExtractorId::R3d, VideoId(1), vec![fv(ExtractorId::R3d, 1, 0.0, 4)]);
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![fv(ExtractorId::R3d, 1, 0.0, 4), fv(ExtractorId::R3d, 1, 1.0, 4)],
        );
        assert_eq!(s.get(ExtractorId::R3d, VideoId(1)).unwrap().len(), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_store() {
        let s = FeatureStore::new();
        assert!(s.is_empty());
        assert_eq!(s.total_vectors(), 0);
        assert_eq!(s.videos_with_features(ExtractorId::R3d), Vec::<VideoId>::new());
    }
}
