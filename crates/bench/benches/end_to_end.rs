//! End-to-end benchmark: the in-process cost of one full `Explore → label →
//! retrain` iteration under the default VOCALExplore configuration. This is
//! the "everything except the GPU" cost — the work the Task Scheduler hides
//! behind the user's labeling time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ve_features::ExtractorId;
use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle};
use vocalexplore::{FeatureSelectionPolicy, VocalExplore, VocalExploreConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    // Build a system that already has 50 labels and a trained model, so the
    // measured call covers sample selection, prediction, and the pending-work
    // check on a warm system (the work that is user-visible under VE-full).
    let dataset = Dataset::scaled(DatasetName::Deer, 0.2, 9);
    let config = VocalExploreConfig::for_dataset(&dataset, 9)
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
        .with_extra_candidates(10);
    let oracle = GroundTruthOracle::new(dataset.spec.task);
    let mut system = VocalExplore::new(config);
    for clip in dataset.train.videos() {
        system.add_video(clip.clone());
    }
    for _ in 0..10 {
        let batch = system.explore(5, 1.0, None);
        for seg in &batch.segments {
            let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
            system.add_label(seg.vid, seg.range, classes);
        }
    }

    group.bench_function("explore_call_warm_system", |b| {
        b.iter(|| black_box(system.explore(5, 1.0, None)))
    });

    group.bench_function("watch_call_with_predictions", |b| {
        let vid = dataset.train.videos()[0].id;
        b.iter(|| black_box(system.watch(vid, 0.0, 10.0, 1.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
