//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock measurement loop: warm-up, then a fixed number of
//! timed samples whose median per-iteration time is printed. No plots, no
//! statistics beyond median/min/max, but the output is stable enough to eyeball
//! regressions and is consumed by `ve-bench`'s JSON emitter.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
    }
}

/// Identifier combining a function name and a parameter, as in
/// `BenchmarkId::new("coreset", pool_size)`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `"{function}/{parameter}"`.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark without parameters.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.group);
        run_benchmark(&full, self.sample_size.unwrap_or(30), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.group, id);
        run_benchmark(&full, self.sample_size.unwrap_or(30), |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `iters` executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One timed sample: runs the closure with a chosen iteration count and
/// returns nanoseconds per iteration.
fn sample<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> f64 {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed.as_nanos() as f64 / iters as f64
}

/// Runs one benchmark: calibrates an iteration count targeting ~20 ms per
/// sample, takes `samples` timed samples, and prints median/min/max.
pub fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibration: start at 1 iteration and grow until a sample takes >= 5 ms
    // (or the per-iteration cost is clearly large).
    let mut iters = 1u64;
    let mut per_iter = sample(&mut f, iters);
    while per_iter * (iters as f64) < 5_000_000.0 && iters < (1 << 20) {
        iters *= 2;
        per_iter = sample(&mut f, iters);
    }
    let mut times: Vec<f64> = (0..samples.max(3)).map(|_| sample(&mut f, iters)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!(
        "{name:<50} median {:>12} min {:>12} max {:>12} ({} iters/sample)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        iters
    );
    record_result(name, median);
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

use std::sync::Mutex;

static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn record_result(name: &str, median_ns: f64) {
    RESULTS
        .lock()
        .expect("results lock")
        .push((name.to_string(), median_ns));
}

/// All `(benchmark id, median ns/iter)` pairs recorded so far in this
/// process. Used by machine-readable benchmark emitters.
pub fn recorded_results() -> Vec<(String, f64)> {
    RESULTS.lock().expect("results lock").clone()
}

/// Groups benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_produces_positive_median() {
        run_benchmark("self_test", 3, |b| b.iter(|| (0..100u64).sum::<u64>()));
        let results = recorded_results();
        let (name, ns) = results
            .iter()
            .find(|(n, _)| n == "self_test")
            .expect("recorded");
        assert_eq!(name, "self_test");
        assert!(*ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(
            BenchmarkId::new("coreset", 1000).to_string(),
            "coreset/1000"
        );
    }
}
