//! The Feature Manager (FM).
//!
//! "The FM returns feature representations of video segments. These feature
//! vectors are used by the ALM to decide which video segments the user should
//! label as well as by the Model Manager to perform training and inference"
//! (Section 2.3). The FM extracts features lazily — only for the videos a
//! caller asks about — caches everything in the storage manager, and keeps a
//! running total of the simulated GPU seconds it has spent, which the latency
//! accounting uses.

use crate::observability::{ObsHandle, SessionEvent};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ve_features::{ExtractorId, FeatureSimulator, FeatureVector};
use ve_sched::fault::{FaultInjector, FaultSite};
use ve_sched::RetryPolicy;
use ve_storage::StorageManager;
use ve_vidsim::{TimeRange, VideoClip, VideoCorpus, VideoId};

/// Typed extraction failure: the (simulated) GPU backend failed every attempt
/// the retry budget allowed for one `(extractor, vid)` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractionError {
    /// Extractor whose backend failed.
    pub extractor: ExtractorId,
    /// Video whose extraction gave up.
    pub vid: VideoId,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for ExtractionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GPU extraction of {:?} features for video {} failed after {} attempts",
            self.extractor, self.vid.0, self.attempts
        )
    }
}

impl std::error::Error for ExtractionError {}

/// Feature Manager: lazy, cached feature extraction with cost accounting.
pub struct FeatureManager {
    simulator: FeatureSimulator,
    storage: StorageManager,
    gpu_seconds: Mutex<f64>,
    /// When non-zero (stored as `f64` bits), every cache-missing extraction
    /// sleeps `cost * scale` wall-clock seconds on the calling thread, so
    /// the async session engine can *measure* the Table-3 GPU costs instead
    /// of modeling them. Zero (the default) disables the sleep entirely.
    latency_scale_bits: AtomicU64,
    /// Deterministic GPU-fault injection; `None` disables it.
    fault: Option<Arc<FaultInjector>>,
    /// Attempts and virtual-time backoff the extraction retry loop uses when
    /// a fault is injected. Backoff sleeps only when latency simulation is
    /// on, and never affects fault decisions.
    retry: RetryPolicy,
    /// Event/metrics recorder; `None` until the owning system installs one.
    obs: Option<ObsHandle>,
}

impl FeatureManager {
    /// Creates a feature manager backed by the given simulator and storage.
    pub fn new(simulator: FeatureSimulator, storage: StorageManager) -> Self {
        Self {
            simulator,
            storage,
            gpu_seconds: Mutex::new(0.0),
            latency_scale_bits: AtomicU64::new(0),
            fault: None,
            retry: RetryPolicy::none(),
            obs: None,
        }
    }

    /// Installs the observability recorder. `Extracted` events are recorded
    /// by the unique publish winner of each `(extractor, clip)` — exactly
    /// once per clip, on any path and at any thread count — so the event
    /// plane stays deterministic even though *call* counts are not.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
    }

    /// Installs a deterministic fault injector (and the retry budget its
    /// failures are retried under) for the `FeatureExtraction` site.
    pub fn set_fault_injector(&mut self, fault: Option<Arc<FaultInjector>>, retry: RetryPolicy) {
        self.fault = fault;
        self.retry = retry;
    }

    /// The simulator in use (exposes extractor specs and profiles).
    pub fn simulator(&self) -> &FeatureSimulator {
        &self.simulator
    }

    /// Enables (scale > 0) or disables (`None` / 0) wall-clock simulation of
    /// GPU extraction latency: each cache-missing extraction sleeps
    /// `extraction_cost * scale` real seconds on the thread performing it.
    /// The sleep lands wherever the extraction actually runs — on a
    /// background executor worker for eager `T_f⁻` tasks (hidden from the
    /// user), or on the API calling thread for lazy extraction (visible).
    pub fn set_latency_scale(&self, scale: Option<f64>) {
        let bits = scale.filter(|s| *s > 0.0).unwrap_or(0.0).to_bits();
        self.latency_scale_bits.store(bits, Ordering::Relaxed);
    }

    /// The configured wall-clock latency scale, if enabled.
    pub fn latency_scale(&self) -> Option<f64> {
        let scale = f64::from_bits(self.latency_scale_bits.load(Ordering::Relaxed));
        (scale > 0.0).then_some(scale)
    }

    /// Total simulated GPU seconds spent on extraction so far.
    pub fn gpu_seconds_spent(&self) -> f64 {
        *self.gpu_seconds.lock()
    }

    /// Whether features for `(extractor, vid)` are already cached.
    pub fn has_features(&self, extractor: ExtractorId, vid: VideoId) -> bool {
        self.storage.with_features(|f| f.contains(extractor, vid))
    }

    /// Atomic snapshot of the feature store's change log: the current
    /// generation plus every mutation applied since `gen`, read under one
    /// lock acquisition so a consumer can catch up without missing (or
    /// double-seeing) concurrent extractions. This is the ALM's
    /// `AcquisitionIndex` ingest feed.
    pub fn store_changes_since(&self, gen: u64) -> (u64, Vec<ve_storage::FeatureStoreChange>) {
        self.storage
            .with_features(|f| (f.generation(), f.changes_since(gen).to_vec()))
    }

    /// Atomic snapshot of one extractor's covered videos (sorted) together
    /// with the store generation the snapshot corresponds to — the
    /// from-scratch rebuild feed of the `AcquisitionIndex`.
    pub fn store_state_for(&self, extractor: ExtractorId) -> (u64, Vec<VideoId>) {
        self.storage
            .with_features(|f| (f.generation(), f.videos_with_features(extractor)))
    }

    /// Videos with cached features for the given extractor.
    pub fn videos_with_features(&self, extractor: ExtractorId) -> Vec<VideoId> {
        self.storage
            .with_features(|f| f.videos_with_features(extractor))
    }

    /// Stable fault-decision key for one `(extractor, vid)` operation.
    fn fault_key(extractor: ExtractorId, vid: VideoId) -> u64 {
        (vid.0 << 3) | extractor.index() as u64
    }

    /// Runs the deterministic GPU-fault retry loop for one extraction.
    /// Attempt numbering restarts at zero per call, so a given
    /// `(extractor, vid)` either always succeeds within the budget or always
    /// gives up — a pure constant of the fault plan, at any thread count.
    fn extraction_gate(&self, extractor: ExtractorId, vid: VideoId) -> Result<(), ExtractionError> {
        let Some(inj) = &self.fault else {
            return Ok(());
        };
        let key = Self::fault_key(extractor, vid);
        let max = self.retry.max_attempts.max(1);
        for attempt in 0..max {
            if !inj.should_fail(FaultSite::FeatureExtraction, key, attempt) {
                return Ok(());
            }
            if attempt + 1 < max {
                // Deterministic virtual-time backoff; sleeps only when the
                // latency simulation is on (decisions are unaffected).
                if let Some(scale) = self.latency_scale() {
                    let secs = self.retry.backoff_secs(attempt + 1) * scale;
                    if secs > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
                    }
                }
            }
        }
        Err(ExtractionError {
            extractor,
            vid,
            attempts: max,
        })
    }

    /// Ensures features for one whole clip are extracted (no-op if cached).
    /// Returns the GPU seconds this call actually spent (0 on a cache hit),
    /// or a typed error when the (injected) GPU fault outlasted the retry
    /// budget — in which case nothing is published or charged, and the video
    /// stays pending for future calls.
    ///
    /// Safe to call concurrently for the same `(extractor, clip)`: the
    /// simulator is deterministic, so racing extractions produce identical
    /// vectors, and only the thread that actually publishes the entry is
    /// charged for the GPU time.
    pub fn ensure_clip(
        &self,
        extractor: ExtractorId,
        clip: &VideoClip,
    ) -> Result<f64, ExtractionError> {
        if self.has_features(extractor, clip.id) {
            // Metrics only: hit multiplicity is path- and timing-dependent,
            // so hits never enter the deterministic event plane.
            if let Some(obs) = &self.obs {
                obs.inc("fm.clip_cache_hits", 1);
            }
            return Ok(0.0);
        }
        self.extraction_gate(extractor, clip.id)?;
        let vectors = self.simulator.extract_clip(extractor, clip);
        let cost = self.simulator.extraction_seconds(extractor, clip);
        if let Some(scale) = self.latency_scale() {
            // The simulated GPU is busy for `cost` seconds before the
            // features become available; scaled down to wall-clock so the
            // async engine can measure it.
            std::thread::sleep(std::time::Duration::from_secs_f64(cost * scale));
        }
        let inserted = self.storage.with_features_mut(|f| {
            if f.contains(extractor, clip.id) {
                false
            } else {
                f.put(extractor, clip.id, vectors);
                true
            }
        });
        if !inserted {
            if let Some(obs) = &self.obs {
                obs.inc("fm.clip_cache_hits", 1);
            }
            return Ok(0.0);
        }
        *self.gpu_seconds.lock() += cost;
        if let Some(obs) = &self.obs {
            obs.record(SessionEvent::Extracted {
                extractor,
                vid: clip.id,
            });
            obs.inc("fm.clips_extracted", 1);
        }
        Ok(cost)
    }

    /// Ensures features for a set of clips; returns total GPU seconds spent
    /// (cache hits are free). Stops at the first clip whose extraction gave
    /// up — earlier clips stay extracted and charged.
    pub fn ensure_clips(
        &self,
        extractor: ExtractorId,
        clips: &[&VideoClip],
    ) -> Result<f64, ExtractionError> {
        let mut total = 0.0;
        for c in clips {
            total += self.ensure_clip(extractor, c)?;
        }
        Ok(total)
    }

    /// Returns the cached feature vector covering `range` within `vid`,
    /// extracting the whole clip on demand if necessary. Returns `None` when
    /// the video is unknown to the corpus, or when its extraction permanently
    /// failed (graceful degradation: the caller proceeds without the
    /// feature, and the video stays pending).
    pub fn feature_for(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        vid: VideoId,
        range: &TimeRange,
    ) -> Option<FeatureVector> {
        self.with_video_features(extractor, corpus, vid, |entry| {
            entry.window_for(range).map(|i| FeatureVector {
                extractor,
                vid,
                range: *entry.range(i),
                data: entry.row(i).to_vec(),
            })
        })
        .flatten()
    }

    /// Runs `f` over the contiguous feature windows of a video (extracting on
    /// demand), without copying any embedding data out of the store. Returns
    /// `None` when the video is unknown to the corpus or its extraction
    /// permanently failed (the feature is simply absent — callers degrade).
    ///
    /// This is the hot-path accessor: the ALM's candidate assembly and batch
    /// prediction read rows as zero-copy views from inside the closure.
    pub fn with_video_features<R>(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        vid: VideoId,
        f: impl FnOnce(&ve_storage::VideoFeatures) -> R,
    ) -> Option<R> {
        let clip = corpus.get(vid)?;
        // A permanently failed extraction leaves the store entry absent, so
        // the closure never runs and the caller sees `None` — that absence
        // *is* the degradation contract.
        let _ = self.ensure_clip(extractor, clip);
        self.storage.with_features(|s| s.get(extractor, vid).map(f))
    }

    /// All cached vectors of a video for an extractor (extracting on demand).
    pub fn clip_features(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        vid: VideoId,
    ) -> Vec<FeatureVector> {
        let Some(clip) = corpus.get(vid) else {
            return Vec::new();
        };
        let _ = self.ensure_clip(extractor, clip);
        self.storage.with_features(|f| {
            f.get(extractor, vid)
                .map(|v| v.to_vectors())
                .unwrap_or_default()
        })
    }

    /// The per-clip extraction cost for an extractor (used by the scheduler's
    /// cost accounting even when the extraction itself is skipped).
    pub fn extraction_cost(&self, extractor: ExtractorId, clip: &VideoClip) -> f64 {
        self.simulator.extraction_seconds(extractor, clip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_vidsim::{Dataset, DatasetName};

    fn setup() -> (Dataset, FeatureManager) {
        let ds = Dataset::scaled(DatasetName::Deer, 0.05, 5);
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 5);
        let fm = FeatureManager::new(sim, StorageManager::new());
        (ds, fm)
    }

    #[test]
    fn extraction_is_cached_and_costed_once() {
        let (ds, fm) = setup();
        let clip = &ds.train.videos()[0];
        assert!(!fm.has_features(ExtractorId::R3d, clip.id));
        let c1 = fm.ensure_clip(ExtractorId::R3d, clip).unwrap();
        assert!(c1 > 0.0);
        let c2 = fm.ensure_clip(ExtractorId::R3d, clip).unwrap();
        assert_eq!(c2, 0.0, "second extraction must be a cache hit");
        assert!((fm.gpu_seconds_spent() - c1).abs() < 1e-12);
        assert!(fm.has_features(ExtractorId::R3d, clip.id));
    }

    #[test]
    fn feature_for_returns_window_overlapping_vector() {
        let (ds, fm) = setup();
        let clip = &ds.train.videos()[0];
        let fv = fm
            .feature_for(
                ExtractorId::Mvit,
                &ds.train,
                clip.id,
                &TimeRange::new(3.2, 4.2),
            )
            .unwrap();
        assert!(fv.range.overlaps(&TimeRange::new(3.2, 4.2)));
        assert_eq!(fv.vid, clip.id);
    }

    #[test]
    fn feature_for_unknown_video_is_none() {
        let (ds, fm) = setup();
        assert!(fm
            .feature_for(
                ExtractorId::Mvit,
                &ds.train,
                VideoId(999_999),
                &TimeRange::new(0.0, 1.0)
            )
            .is_none());
    }

    #[test]
    fn clip_features_extracts_all_windows() {
        let (ds, fm) = setup();
        let clip = &ds.train.videos()[1];
        let vectors = fm.clip_features(ExtractorId::Clip, &ds.train, clip.id);
        assert_eq!(vectors.len(), clip.segments.len());
        assert_eq!(fm.videos_with_features(ExtractorId::Clip), vec![clip.id]);
    }

    #[test]
    fn concurrent_extraction_of_one_clip_is_charged_once() {
        let (ds, fm) = setup();
        let fm = std::sync::Arc::new(fm);
        let clip = ds.train.videos()[0].clone();
        let expected = fm.extraction_cost(ExtractorId::R3d, &clip);
        let total: f64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let fm = std::sync::Arc::clone(&fm);
                    let clip = clip.clone();
                    scope.spawn(move || fm.ensure_clip(ExtractorId::R3d, &clip).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert!(
            (total - expected).abs() < 1e-12,
            "exactly one racer may be charged: total {total}, per-clip {expected}"
        );
        assert!((fm.gpu_seconds_spent() - expected).abs() < 1e-12);
    }

    #[test]
    fn latency_scale_round_trip_and_sleep() {
        let (ds, fm) = setup();
        assert_eq!(fm.latency_scale(), None);
        fm.set_latency_scale(Some(1e-3));
        assert_eq!(fm.latency_scale(), Some(1e-3));
        let clip = &ds.train.videos()[0];
        let cost = fm.extraction_cost(ExtractorId::R3d, clip);
        let start = std::time::Instant::now();
        fm.ensure_clip(ExtractorId::R3d, clip).unwrap();
        assert!(start.elapsed().as_secs_f64() >= cost * 1e-3 * 0.5);
        // Cache hits never sleep.
        let start = std::time::Instant::now();
        fm.ensure_clip(ExtractorId::R3d, clip).unwrap();
        assert!(start.elapsed().as_secs_f64() < 0.05);
        fm.set_latency_scale(None);
        assert_eq!(fm.latency_scale(), None);
    }

    #[test]
    fn transient_faults_succeed_within_the_retry_budget() {
        use ve_sched::fault::{FaultPlan, FaultRule};
        let (ds, mut fm) = setup();
        // Every attempt below index 2 fails; budget of 3 always succeeds.
        fm.set_fault_injector(
            Some(Arc::new(FaultInjector::new(FaultPlan::uniform(
                13,
                FaultRule::transient(1.0, 2),
            )))),
            RetryPolicy::new(3, 0.0, 1.0),
        );
        let clip = &ds.train.videos()[0];
        let cost = fm.ensure_clip(ExtractorId::R3d, clip).unwrap();
        assert!(cost > 0.0, "transient faults are invisible to the caller");
        assert!(fm.has_features(ExtractorId::R3d, clip.id));
    }

    #[test]
    fn permanent_fault_leaves_video_pending_and_uncharged() {
        use ve_sched::fault::{FaultPlan, FaultRule};
        let (ds, mut fm) = setup();
        fm.set_fault_injector(
            Some(Arc::new(FaultInjector::new(FaultPlan::uniform(
                13,
                FaultRule::permanent(1.0),
            )))),
            RetryPolicy::new(2, 0.0, 1.0),
        );
        let clip = &ds.train.videos()[0];
        let err = fm.ensure_clip(ExtractorId::R3d, clip).unwrap_err();
        assert_eq!(err.attempts, 2);
        assert_eq!(err.vid, clip.id);
        assert!(!fm.has_features(ExtractorId::R3d, clip.id));
        assert_eq!(fm.gpu_seconds_spent(), 0.0, "failed work is not charged");
        // The degraded accessors see an absent feature, not a panic.
        assert!(fm
            .feature_for(
                ExtractorId::R3d,
                &ds.train,
                clip.id,
                &TimeRange::new(0.0, 1.0)
            )
            .is_none());
        assert!(fm
            .clip_features(ExtractorId::R3d, &ds.train, clip.id)
            .is_empty());
        // Retrying replays the identical decision: still failing.
        assert!(fm.ensure_clip(ExtractorId::R3d, clip).is_err());
    }

    #[test]
    fn per_extractor_costs_differ() {
        let (ds, fm) = setup();
        let clip = &ds.train.videos()[0];
        assert!(
            fm.extraction_cost(ExtractorId::Mvit, clip)
                > fm.extraction_cost(ExtractorId::R3d, clip)
        );
    }
}
