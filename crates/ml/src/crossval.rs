//! Stratified k-fold cross-validation.
//!
//! Section 3.2.4: because the user has no labeled validation set at the start
//! of exploration, the ALM estimates the quality of each candidate feature by
//! building three train/test splits over the labels collected so far and
//! averaging macro F1 across them. The prototype "only evaluates k-fold
//! validation over classes with at least three labeled instances to ensure
//! each class is present in each training and test split" — that filter is
//! implemented here as `min_instances_per_class`.

use crate::linear::{Classifier, SoftmaxModel, TrainConfig};
use crate::metrics::macro_f1;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for cross-validated feature-quality estimation.
#[derive(Debug, Clone, Copy)]
pub struct CrossValConfig {
    /// Number of folds (paper default: 3).
    pub folds: usize,
    /// Classes with fewer labeled instances than this are excluded from the
    /// CV estimate (paper default: 3).
    pub min_instances_per_class: usize,
    /// Seed used for shuffling within each class.
    pub seed: u64,
    /// Training configuration for the per-fold models.
    pub train: TrainConfig,
}

impl Default for CrossValConfig {
    fn default() -> Self {
        Self {
            folds: 3,
            min_instances_per_class: 3,
            seed: 0,
            train: TrainConfig::default(),
        }
    }
}

/// The per-example fold assignment produced by [`stratified_k_fold`].
#[derive(Debug, Clone)]
pub struct FoldAssignment {
    /// `fold[i]` is the fold index of retained example `i`, or `None` if the
    /// example was excluded because its class had too few instances.
    pub fold: Vec<Option<usize>>,
    /// Classes that had enough instances to participate.
    pub kept_classes: Vec<usize>,
}

/// Assigns examples to `folds` stratified folds, excluding classes with fewer
/// than `min_instances` examples.
pub fn stratified_k_fold(
    labels: &[usize],
    num_classes: usize,
    folds: usize,
    min_instances: usize,
    seed: u64,
) -> FoldAssignment {
    assert!(folds >= 2, "need at least two folds");
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < num_classes, "label out of range");
        per_class[l].push(i);
    }
    let kept_classes: Vec<usize> = (0..num_classes)
        .filter(|&c| per_class[c].len() >= min_instances.max(folds))
        .collect();

    let mut fold = vec![None; labels.len()];
    let mut rng = StdRng::seed_from_u64(seed);
    for &c in &kept_classes {
        let mut idxs = per_class[c].clone();
        idxs.shuffle(&mut rng);
        for (j, &i) in idxs.iter().enumerate() {
            fold[i] = Some(j % folds);
        }
    }
    FoldAssignment { fold, kept_classes }
}

/// Cross-validated macro-F1 estimate of model quality on the given features
/// and single-label targets.
///
/// Returns `None` when fewer than two classes have enough instances to
/// stratify — the signal the bandit uses to skip evaluation at very early
/// iterations.
pub fn cross_validate(
    features: &[Vec<f32>],
    labels: &[usize],
    num_classes: usize,
    cfg: &CrossValConfig,
) -> Option<f64> {
    assert_eq!(features.len(), labels.len());
    if features.is_empty() {
        return None;
    }
    let assignment = stratified_k_fold(
        labels,
        num_classes,
        cfg.folds,
        cfg.min_instances_per_class,
        cfg.seed,
    );
    if assignment.kept_classes.len() < 2 {
        return None;
    }

    // Remap kept classes to a dense range so the per-fold models do not carry
    // unused heads for excluded classes.
    let mut class_map = vec![usize::MAX; num_classes];
    for (dense, &c) in assignment.kept_classes.iter().enumerate() {
        class_map[c] = dense;
    }
    let dense_classes = assignment.kept_classes.len();

    // Each fold trains an independent model, so the folds fan out across
    // `ve-sched`'s coarse task helper; results are collected in fold order
    // (and every per-fold model seeds its own RNG from the config), so the
    // score is identical at any thread count.
    let fold_scores = ve_sched::parallel::par_map_tasks(cfg.folds, |f| {
        let mut train_x: Vec<Vec<f32>> = Vec::new();
        let mut train_y: Vec<usize> = Vec::new();
        let mut test_x: Vec<Vec<f32>> = Vec::new();
        let mut test_y: Vec<usize> = Vec::new();
        for (i, assigned) in assignment.fold.iter().enumerate() {
            let Some(fold) = assigned else { continue };
            let dense = class_map[labels[i]];
            if *fold == f {
                test_x.push(features[i].clone());
                test_y.push(dense);
            } else {
                train_x.push(features[i].clone());
                train_y.push(dense);
            }
        }
        if test_x.is_empty() || train_x.is_empty() {
            return None;
        }
        let distinct_train: std::collections::HashSet<usize> = train_y.iter().copied().collect();
        if distinct_train.len() < 2 {
            return None;
        }
        let model = SoftmaxModel::fit(&train_x, &train_y, dense_classes, &cfg.train);
        let preds: Vec<usize> = test_x.iter().map(|x| model.predict(x)).collect();
        Some(macro_f1(&test_y, &preds, dense_classes))
    });
    let scores: Vec<f64> = fold_scores.into_iter().flatten().collect();
    if scores.is_empty() {
        None
    } else {
        // ve-lint: allow(float-reduction-order) -- scores keep fixed fold order (Vec iteration)
        Some(scores.iter().sum::<f64>() / scores.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blob_dataset(
        n_per_class: usize,
        centers: &[[f32; 2]],
        noise: f32,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                let dx: f32 = rng.gen::<f32>() * 2.0 - 1.0;
                let dy: f32 = rng.gen::<f32>() * 2.0 - 1.0;
                xs.push(vec![center[0] + noise * dx, center[1] + noise * dy]);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let labels = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let a = stratified_k_fold(&labels, 2, 3, 3, 7);
        assert_eq!(a.kept_classes, vec![0, 1]);
        // Every fold must contain both classes.
        for f in 0..3 {
            for c in 0..2 {
                let count = labels
                    .iter()
                    .enumerate()
                    .filter(|(i, &l)| l == c && a.fold[*i] == Some(f))
                    .count();
                assert!(count >= 1, "fold {f} missing class {c}");
            }
        }
    }

    #[test]
    fn classes_below_threshold_are_excluded() {
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1, 2];
        let a = stratified_k_fold(&labels, 3, 3, 3, 0);
        assert_eq!(a.kept_classes, vec![0, 1]);
        assert!(a.fold[8].is_none(), "lone class-2 example must be excluded");
    }

    #[test]
    fn cross_validate_separable_data_scores_high() {
        let (xs, ys) = blob_dataset(30, &[[0.0, 0.0], [6.0, 6.0]], 0.5, 11);
        let score = cross_validate(&xs, &ys, 2, &CrossValConfig::default()).unwrap();
        assert!(score > 0.9, "score={score}");
    }

    #[test]
    fn cross_validate_random_features_scores_low() {
        // Labels are independent of the features: CV F1 should hover near
        // chance level for 2 classes (≈0.5) or below.
        let mut rng = StdRng::seed_from_u64(13);
        let xs: Vec<Vec<f32>> = (0..120)
            .map(|_| vec![rng.gen::<f32>(), rng.gen::<f32>()])
            .collect();
        let ys: Vec<usize> = (0..120).map(|i| i % 2).collect();
        let score = cross_validate(&xs, &ys, 2, &CrossValConfig::default()).unwrap();
        assert!(score < 0.75, "score={score}");
    }

    #[test]
    fn cross_validate_informative_beats_random_features() {
        let (xs_good, ys) = blob_dataset(40, &[[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]], 0.8, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let xs_bad: Vec<Vec<f32>> = (0..xs_good.len())
            .map(|_| vec![rng.gen::<f32>(), rng.gen::<f32>()])
            .collect();
        let cfg = CrossValConfig::default();
        let good = cross_validate(&xs_good, &ys, 3, &cfg).unwrap();
        let bad = cross_validate(&xs_bad, &ys, 3, &cfg).unwrap();
        assert!(
            good > bad + 0.2,
            "informative features should clearly win: {good} vs {bad}"
        );
    }

    #[test]
    fn cross_validate_returns_none_with_single_class() {
        let xs = vec![vec![0.0, 1.0]; 10];
        let ys = vec![0usize; 10];
        assert!(cross_validate(&xs, &ys, 3, &CrossValConfig::default()).is_none());
    }

    #[test]
    fn cross_validate_returns_none_with_too_few_labels() {
        let xs = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let ys = vec![0usize, 1];
        assert!(cross_validate(&xs, &ys, 3, &CrossValConfig::default()).is_none());
    }

    #[test]
    fn cross_validate_empty_returns_none() {
        assert!(cross_validate(&[], &[], 3, &CrossValConfig::default()).is_none());
    }

    #[test]
    fn parallel_folds_match_single_threaded_score() {
        let (xs, ys) = blob_dataset(25, &[[0.0, 0.0], [4.0, 4.0], [-4.0, 4.0]], 0.9, 23);
        let cfg = CrossValConfig::default();
        let _guard = ve_sched::parallel::test_parallelism_guard();
        ve_sched::parallel::set_parallelism(1);
        let single = cross_validate(&xs, &ys, 3, &cfg).unwrap();
        ve_sched::parallel::set_parallelism(4);
        let multi = cross_validate(&xs, &ys, 3, &cfg).unwrap();
        ve_sched::parallel::set_parallelism(0);
        assert_eq!(single.to_bits(), multi.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn stratified_k_fold_rejects_one_fold() {
        stratified_k_fold(&[0, 1], 2, 1, 1, 0);
    }
}
