//! Cross-crate integration tests: the full VOCALExplore pipeline from
//! synthetic corpus generation through exploration, labeling, model training,
//! and prediction — exercised through the public API only.

use vocalexplore::prelude::*;
use vocalexplore::{FeatureSelectionPolicy, SamplingPolicy};

fn build_system(dataset: &Dataset, seed: u64) -> VocalExplore {
    let config = VocalExploreConfig::for_dataset(dataset, seed)
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
        .with_extra_candidates(5);
    let mut system = VocalExplore::new(config);
    for clip in dataset.train.videos() {
        system.add_video(clip.clone());
    }
    system
}

#[test]
fn explore_label_predict_loop_improves_over_iterations() {
    let dataset = Dataset::scaled(DatasetName::Deer, 0.1, 11);
    let mut system = build_system(&dataset, 11);
    let oracle = GroundTruthOracle::new(dataset.spec.task);

    let mut first_batch_had_predictions = false;
    for iteration in 0..8 {
        let batch = system.explore(5, 1.0, None);
        assert_eq!(
            batch.len(),
            5,
            "iteration {iteration} returned a short batch"
        );
        if iteration == 0 {
            first_batch_had_predictions = batch.segments.iter().any(|s| !s.predictions.is_empty());
        }
        for seg in &batch.segments {
            let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
            system.add_label(seg.vid, seg.range, classes);
        }
    }
    assert!(
        !first_batch_had_predictions,
        "no predictions should exist before any labels are collected"
    );
    assert_eq!(system.label_count(), 40);

    // After 40 labels the system must return full probability distributions.
    let batch = system.explore(5, 1.0, None);
    let with_preds = batch
        .segments
        .iter()
        .filter(|s| !s.predictions.is_empty())
        .count();
    assert!(
        with_preds > 0,
        "predictions must be attached after labeling"
    );
    for seg in batch.segments.iter().filter(|s| !s.predictions.is_empty()) {
        assert_eq!(seg.predictions.len(), dataset.vocabulary.len());
        let total: f32 = seg.predictions.iter().map(|p| p.probability).sum();
        assert!(
            (total - 1.0).abs() < 1e-3,
            "single-label predictions must sum to 1"
        );
    }
}

#[test]
fn watch_and_targeted_explore_work_through_the_public_api() {
    let dataset = Dataset::scaled(DatasetName::Deer, 0.1, 13);
    let mut system = build_system(&dataset, 13);
    let oracle = GroundTruthOracle::new(dataset.spec.task);

    // Label a few batches first so a model exists.
    for _ in 0..5 {
        let batch = system.explore(5, 1.0, None);
        for seg in &batch.segments {
            let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
            system.add_label(seg.vid, seg.range, classes);
        }
    }

    // Watch a specific window of a specific video.
    let vid = dataset.train.videos()[0].id;
    let stream = system.watch(vid, 2.0, 6.0, 1.0);
    assert_eq!(stream.len(), 4);
    assert!(stream.segments.iter().all(|s| s.vid == vid));

    // Targeted exploration for one class uses the rare-class sampler.
    let batch = system.explore(5, 1.0, Some(1));
    assert_eq!(batch.acquisition, Some(AcquisitionKind::Uncertainty));
    assert_eq!(batch.len(), 5);
}

#[test]
fn multilabel_dataset_end_to_end() {
    let dataset = Dataset::scaled(DatasetName::Bdd, 0.3, 17);
    let config = VocalExploreConfig::for_dataset(&dataset, 17)
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::Clip))
        .with_extra_candidates(5);
    let mut system = VocalExplore::new(config);
    for clip in dataset.train.videos() {
        system.add_video(clip.clone());
    }
    let oracle = GroundTruthOracle::new(dataset.spec.task);
    for _ in 0..6 {
        let batch = system.explore(5, 1.5, None);
        for seg in &batch.segments {
            let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
            system.add_label(seg.vid, seg.range, classes);
        }
    }
    let batch = system.explore(5, 1.5, None);
    let seg = batch
        .segments
        .iter()
        .find(|s| !s.predictions.is_empty())
        .expect("multi-label predictions should be available");
    // Multi-label probabilities are independent sigmoids, not a distribution.
    assert_eq!(seg.predictions.len(), 6);
    assert!(seg
        .predictions
        .iter()
        .all(|p| (0.0..=1.0).contains(&p.probability)));
}

#[test]
fn ve_sample_switches_only_on_skewed_datasets() {
    // Uniform K20: should stay on Random sampling. Skewed Deer: should switch.
    let run = |name: DatasetName, seed: u64| {
        let dataset = Dataset::scaled(name, 0.1, seed);
        let config = VocalExploreConfig::for_dataset(&dataset, seed)
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::Mvit))
            .with_sampling(SamplingPolicy::default())
            .with_extra_candidates(5);
        let mut system = VocalExplore::new(config);
        for clip in dataset.train.videos() {
            system.add_video(clip.clone());
        }
        let oracle = GroundTruthOracle::new(dataset.spec.task);
        for _ in 0..10 {
            let batch = system.explore(5, 1.0, None);
            for seg in &batch.segments {
                let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
                system.add_label(seg.vid, seg.range, classes);
            }
        }
        system.current_acquisition()
    };
    assert_eq!(
        run(DatasetName::Deer, 3),
        AcquisitionKind::ClusterMargin,
        "Deer labels are skewed; VE-sample must switch"
    );
    assert_eq!(
        run(DatasetName::K20, 3),
        AcquisitionKind::Random,
        "uniform K20 labels must not trigger the switch"
    );
}

#[test]
fn storage_snapshot_round_trips_session_state() {
    use ve_storage::{LabelRecord, StorageManager};
    use ve_vidsim::TimeRange;

    // Simulate a small session's worth of storage state and round-trip it.
    let dataset = Dataset::scaled(DatasetName::Bears, 0.05, 23);
    let sm = StorageManager::new();
    sm.with_metadata_mut(|m| {
        for clip in dataset.train.videos() {
            m.insert(ve_storage::VideoRecord {
                vid: clip.id,
                path: clip.path.clone(),
                duration: clip.duration,
                start_timestamp: clip.start_timestamp,
            });
        }
    });
    sm.with_labels_mut(|l| {
        for (i, clip) in dataset.train.videos().iter().take(20).enumerate() {
            l.add(LabelRecord {
                vid: clip.id,
                range: TimeRange::new(0.0, 1.0),
                classes: clip.classes_in(&TimeRange::new(0.0, 1.0)),
                iteration: i as u32 / 5,
            });
        }
    });
    let bytes = sm.snapshot();
    let restored = StorageManager::from_snapshot(&bytes).expect("valid snapshot");
    assert_eq!(restored.with_metadata(|m| m.len()), dataset.train.len());
    assert_eq!(restored.with_labels(|l| l.len()), 20);
    assert_eq!(
        restored.with_labels(|l| l.class_counts(2)),
        sm.with_labels(|l| l.class_counts(2))
    );
}
