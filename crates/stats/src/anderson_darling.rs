//! The k-sample Anderson–Darling test (Scholz & Stephens, 1987).
//!
//! `VE-sample` compares the label distribution observed so far against a
//! baseline uniform distribution and switches from random sampling to active
//! learning once the test reports `p <= 0.001` (Section 3.1.2 of the paper).
//!
//! The implementation follows the discrete (midrank) version of the test,
//! which is the variant appropriate for label counts where many observations
//! are tied. The p-value is obtained from the standardized statistic using the
//! interpolation formula of Scholz & Stephens as implemented by
//! `scipy.stats.anderson_ksamp`.

/// Result of the k-sample Anderson–Darling test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndersonDarlingResult {
    /// The (midrank) A2akN statistic.
    pub statistic: f64,
    /// The statistic standardized by its mean and variance under H0.
    pub standardized: f64,
    /// Approximate significance level (p-value), capped to `[0.001, 0.25]`
    /// as in `scipy.stats.anderson_ksamp`.
    pub p_value: f64,
}

/// Runs the k-sample Anderson–Darling test on `samples`, where each inner
/// slice holds the observations of one sample.
///
/// For VOCALExplore the first sample is the observed label histogram expanded
/// to per-observation class indices and the second sample is a uniform
/// baseline over the same classes (see [`crate::skew::SkewDetector`]).
///
/// # Panics
/// Panics if fewer than two samples are provided or any sample is empty.
pub fn k_sample_anderson_darling(samples: &[Vec<f64>]) -> AndersonDarlingResult {
    assert!(samples.len() >= 2, "need at least two samples");
    assert!(
        samples.iter().all(|s| !s.is_empty()),
        "all samples must be non-empty"
    );

    let k = samples.len();
    let n: Vec<usize> = samples.iter().map(|s| s.len()).collect();
    let big_n: usize = n.iter().sum();

    // Pooled, sorted sample and the distinct values z_1 < ... < z_l.
    let mut pooled: Vec<f64> = samples.iter().flatten().copied().collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let mut z: Vec<f64> = Vec::with_capacity(pooled.len());
    for &v in &pooled {
        if z.last().is_none_or(|&last| v > last) {
            z.push(v);
        }
    }
    let l = z.len();
    assert!(
        l >= 2,
        "pooled sample must contain at least two distinct values"
    );

    // l_j: number of pooled observations equal to z_j.
    // f_ij: number of observations in sample i equal to z_j.
    let mut lj = vec![0.0f64; l];
    for &v in &pooled {
        let j = z.partition_point(|&x| x < v);
        lj[j] += 1.0;
    }
    let mut f = vec![vec![0.0f64; l]; k];
    for (i, sample) in samples.iter().enumerate() {
        for &v in sample {
            let j = z.partition_point(|&x| x < v);
            f[i][j] += 1.0;
        }
    }

    // Midrank version of the statistic (eq. 7 of Scholz & Stephens).
    let big_n_f = big_n as f64;
    let mut a2akn = 0.0;
    for i in 0..k {
        let n_i = n[i] as f64;
        let mut m_ij = 0.0; // cumulative count of sample i strictly before z_j
        let mut b_j = 0.0; // cumulative pooled count strictly before z_j
        let mut inner = 0.0;
        for j in 0..l {
            let lj_j = lj[j];
            let ma_ij = m_ij + f[i][j] / 2.0; // midrank cumulative count
            let ba_j = b_j + lj_j / 2.0;
            let denom = ba_j * (big_n_f - ba_j) - big_n_f * lj_j / 4.0;
            if denom > 0.0 {
                let num = big_n_f * ma_ij - n_i * ba_j;
                inner += lj_j / big_n_f * num * num / denom;
            }
            m_ij += f[i][j];
            b_j += lj_j;
        }
        a2akn += inner / n_i;
    }
    a2akn *= (big_n_f - 1.0) / big_n_f;

    // Mean and variance of the statistic under H0 (Scholz & Stephens, eq. 4-6).
    let h: f64 = n.iter().map(|&ni| 1.0 / ni as f64).sum();
    // Harmonic numbers H(1..N-1); hh = H(N-1).
    let harmonic: Vec<f64> = std::iter::once(0.0)
        .chain((1..big_n).scan(0.0, |acc, i| {
            *acc += 1.0 / i as f64;
            Some(*acc)
        }))
        .collect();
    let hh = harmonic[big_n - 1];
    // g = Σ_{i=1}^{N-2} Σ_{j=i+1}^{N-1} 1 / ((N - i) · j)
    //   = Σ_{i=1}^{N-2} (H(N-1) - H(i)) / (N - i), computed in O(N).
    let mut g = 0.0;
    for (i, &h_i) in harmonic.iter().enumerate().take(big_n - 1).skip(1) {
        g += (hh - h_i) / (big_n - i) as f64;
    }
    let k_f = k as f64;
    let a = (4.0 * g - 6.0) * (k_f - 1.0) + (10.0 - 6.0 * g) * h;
    let b = (2.0 * g - 4.0) * k_f * k_f + 8.0 * hh * k_f + (2.0 * g - 14.0 * hh - 4.0) * h
        - 8.0 * hh
        + 4.0 * g
        - 6.0;
    let c = (6.0 * hh + 2.0 * g - 2.0) * k_f * k_f
        + (4.0 * hh - 4.0 * g + 6.0) * k_f
        + (2.0 * hh - 6.0) * h
        + 4.0 * hh;
    let d = (2.0 * hh + 6.0) * k_f * k_f - 4.0 * hh * k_f;
    let sigmasq = (a * big_n_f.powi(3) + b * big_n_f.powi(2) + c * big_n_f + d)
        / ((big_n_f - 1.0) * (big_n_f - 2.0) * (big_n_f - 3.0));
    let mean = k_f - 1.0;
    let sigma = sigmasq.max(1e-12).sqrt();

    let standardized = (a2akn - mean) / sigma;
    let p_value = p_value_from_standardized(standardized, k_f - 1.0);

    AndersonDarlingResult {
        statistic: a2akn,
        standardized,
        p_value,
    }
}

/// Interpolated p-value from the standardized statistic, following
/// Scholz & Stephens Table 2 / `scipy.stats.anderson_ksamp`.
///
/// Critical values are tabulated at significance levels
/// 25%, 10%, 5%, 2.5%, 1%, 0.5%, 0.1%; a quadratic fit of
/// `log(significance)` against the critical values is used to interpolate.
/// Outside the tabulated range the value is capped to `[0.001, 0.25]`, the
/// same behaviour as `scipy.stats.anderson_ksamp`.
fn p_value_from_standardized(tkn: f64, m: f64) -> f64 {
    // Coefficients b0, b1, b2 from Scholz & Stephens (1987), Table 2.
    let b0 = [0.675, 1.281, 1.645, 1.960, 2.326, 2.573, 3.085];
    let b1 = [-0.245, 0.250, 0.678, 1.149, 1.822, 2.364, 3.615];
    let b2 = [-0.105, -0.305, -0.362, -0.391, -0.396, -0.345, -0.154];
    let sig = [0.25, 0.10, 0.05, 0.025, 0.01, 0.005, 0.001];

    let sqrt_m = m.sqrt();
    let critical: Vec<f64> = (0..7).map(|i| b0[i] + b1[i] / sqrt_m + b2[i] / m).collect();
    let log_sig: Vec<f64> = sig.iter().map(|s: &f64| s.ln()).collect();

    // Outside the tabulated range the quadratic extrapolation is unreliable,
    // so cap the p-value at the table endpoints exactly as scipy does
    // ("p-value capped / floored" behaviour).
    if tkn <= critical[0] {
        return sig[0];
    }
    if tkn >= critical[6] {
        return sig[6];
    }

    // Fit log(sig) = c0 + c1*t + c2*t^2 by least squares over the 7 points,
    // then evaluate at tkn. This mirrors scipy's polyfit-based interpolation.
    let (c0, c1, c2) = quadratic_fit(&critical, &log_sig);
    let p = (c0 + c1 * tkn + c2 * tkn * tkn).exp();
    p.clamp(sig[6], sig[0])
}

/// Least-squares quadratic fit returning coefficients (c0, c1, c2).
fn quadratic_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len() as f64;
    let (mut sx, mut sx2, mut sx3, mut sx4) = (0.0, 0.0, 0.0, 0.0);
    let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        let x2 = x * x;
        sx += x;
        sx2 += x2;
        sx3 += x2 * x;
        sx4 += x2 * x2;
        sy += y;
        sxy += x * y;
        sx2y += x2 * y;
    }
    // Solve the 3x3 normal equations with Cramer's rule.
    let a = [[n, sx, sx2], [sx, sx2, sx3], [sx2, sx3, sx4]];
    let b = [sy, sxy, sx2y];
    let det = det3(&a);
    let mut a0 = a;
    for i in 0..3 {
        a0[i][0] = b[i];
    }
    let mut a1 = a;
    for i in 0..3 {
        a1[i][1] = b[i];
    }
    let mut a2 = a;
    for i in 0..3 {
        a2[i][2] = b[i];
    }
    (det3(&a0) / det, det3(&a1) / det, det3(&a2) / det)
}

fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expand a class histogram into per-observation class indices (as f64),
    /// matching how the skew detector feeds label counts into the test.
    fn expand(hist: &[usize]) -> Vec<f64> {
        hist.iter()
            .enumerate()
            .flat_map(|(class, &count)| std::iter::repeat_n(class as f64, count))
            .collect()
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = expand(&[10, 10, 10, 10]);
        let b = expand(&[10, 10, 10, 10]);
        let r = k_sample_anderson_darling(&[a, b]);
        assert!(
            r.p_value > 0.05,
            "identical distributions should not be flagged: p={}",
            r.p_value
        );
    }

    #[test]
    fn strongly_skewed_sample_is_significant() {
        // 90 labels of class 0, 2 of class 1, 2 of class 2 vs uniform baseline.
        let observed = expand(&[90, 2, 2, 2]);
        let uniform = expand(&[24, 24, 24, 24]);
        let r = k_sample_anderson_darling(&[observed, uniform]);
        assert!(
            r.p_value <= 0.001,
            "heavy skew must be detected: p={}",
            r.p_value
        );
    }

    #[test]
    fn slight_imbalance_with_few_labels_not_significant() {
        // 6 vs 4 labels over two classes: far too little evidence.
        let observed = expand(&[6, 4]);
        let uniform = expand(&[5, 5]);
        let r = k_sample_anderson_darling(&[observed, uniform]);
        assert!(r.p_value > 0.001, "p={}", r.p_value);
    }

    #[test]
    fn slight_imbalance_with_many_labels_becomes_significant() {
        // The paper notes the AD test eventually flags 51/49-style imbalance
        // given enough labels (Section 3.1); verify the trend with 60/40.
        let observed = expand(&[1200, 800]);
        let uniform = expand(&[1000, 1000]);
        let r = k_sample_anderson_darling(&[observed, uniform]);
        assert!(
            r.p_value <= 0.001,
            "large-sample moderate imbalance should be flagged: p={}",
            r.p_value
        );
    }

    #[test]
    fn statistic_is_finite_and_positive_under_h1() {
        let observed = expand(&[50, 5, 5]);
        let uniform = expand(&[20, 20, 20]);
        let r = k_sample_anderson_darling(&[observed, uniform]);
        assert!(r.statistic.is_finite());
        assert!(r.standardized.is_finite());
        assert!(r.statistic > 0.0);
    }

    #[test]
    fn p_value_monotone_in_skew() {
        let uniform = expand(&[30, 30, 30]);
        let mild = expand(&[40, 30, 20]);
        let heavy = expand(&[80, 8, 2]);
        let p_mild = k_sample_anderson_darling(&[mild, uniform.clone()]).p_value;
        let p_heavy = k_sample_anderson_darling(&[heavy, uniform]).p_value;
        assert!(
            p_heavy <= p_mild,
            "heavier skew must not have larger p-value: {p_heavy} vs {p_mild}"
        );
    }

    #[test]
    #[should_panic(expected = "need at least two samples")]
    fn rejects_single_sample() {
        k_sample_anderson_darling(&[vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_sample() {
        k_sample_anderson_darling(&[vec![1.0, 2.0], vec![]]);
    }

    #[test]
    fn three_sample_variant_runs() {
        let a = expand(&[10, 20, 30]);
        let b = expand(&[20, 20, 20]);
        let c = expand(&[30, 20, 10]);
        let r = k_sample_anderson_darling(&[a, b, c]);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }
}
