//! Low-level numerical routines: log-gamma, beta functions, and the binomial
//! distribution CDF used by the frequency-based skew test (Appendix A).

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~15 significant digits for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued-fraction
/// expansion (Numerical Recipes `betacf`), used to evaluate binomial CDFs
/// without summing potentially millions of terms.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be within [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Use the symmetry relation to keep the continued fraction convergent;
    // compute the mirrored branch directly rather than recursing so that the
    // boundary case x == (a+1)/(a+b+2) cannot ping-pong between branches.
    if x < (a + 1.0) / (a + b + 2.0) {
        let ln_front = x.ln() * a + (1.0 - x).ln() * b - ln_beta(a, b);
        (ln_front.exp() * beta_continued_fraction(a, b, x)) / a
    } else {
        let ln_front = (1.0 - x).ln() * b + x.ln() * a - ln_beta(b, a);
        1.0 - (ln_front.exp() * beta_continued_fraction(b, a, 1.0 - x)) / b
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Probability mass function of `Binomial(n, p)` evaluated at `k`.
pub fn binomial_pmf(k: u64, n: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    if k > n {
        return 0.0;
    }
    let (k, n) = (k as f64, n as f64);
    let ln_choose = ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0);
    (ln_choose + k * p.ln() + (n - k) * (1.0 - p).ln()).exp()
}

/// Cumulative distribution function `P[Binomial(n, p) <= k]`.
///
/// Implemented via the regularized incomplete beta function
/// `P[X <= k] = I_{1-p}(n - k, k + 1)`, which is what
/// `scipy.stats.binom.cdf` (used by the paper's prototype, Appendix A)
/// computes internally.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return if k >= n { 1.0 } else { 0.0 };
    }
    if k >= n {
        return 1.0;
    }
    regularized_incomplete_beta((n - k) as f64, (k + 1) as f64, 1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-10);
        assert_close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_beta_symmetry() {
        assert_close(ln_beta(2.5, 3.5), ln_beta(3.5, 2.5), 1e-12);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_close(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0, 1e-15);
        assert_close(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0, 1e-15);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert_close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 25;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(k, n, p)).sum();
        assert_close(total, 1.0, 1e-10);
    }

    #[test]
    fn binomial_cdf_matches_direct_sum() {
        let n = 40;
        let p = 0.17;
        for k in [0u64, 1, 5, 10, 20, 39, 40] {
            let direct: f64 = (0..=k.min(n)).map(|i| binomial_pmf(i, n, p)).sum();
            assert_close(binomial_cdf(k, n, p), direct, 1e-9);
        }
    }

    #[test]
    fn binomial_cdf_known_value() {
        // P[Binomial(10, 0.5) <= 5] = 0.623046875
        assert_close(binomial_cdf(5, 10, 0.5), 0.623_046_875, 1e-9);
        // P[Binomial(100, 0.05) <= 2] ≈ 0.11826
        assert_close(binomial_cdf(2, 100, 0.05), 0.118_263, 2e-5);
    }

    #[test]
    fn binomial_cdf_degenerate_probabilities() {
        assert_close(binomial_cdf(0, 10, 0.0), 1.0, 1e-15);
        assert_close(binomial_cdf(3, 10, 1.0), 0.0, 1e-15);
        assert_close(binomial_cdf(10, 10, 1.0), 1.0, 1e-15);
    }

    #[test]
    fn binomial_cdf_monotone_in_k() {
        let n = 30;
        let p = 0.4;
        let mut prev = 0.0;
        for k in 0..=n {
            let c = binomial_cdf(k, n, p);
            assert!(c + 1e-12 >= prev, "CDF must be non-decreasing");
            prev = c;
        }
        assert_close(prev, 1.0, 1e-9);
    }
}
