//! The label store: every `AddLabel(vid, start, end, label)` call appends a
//! record here. The Active Learning Manager reads the per-class counts to
//! decide whether the label distribution is skewed, and the Model Manager
//! reads the full records to assemble training sets.

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use std::collections::HashMap;
use ve_vidsim::{ClassId, TimeRange, VideoId};

/// One user-provided label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelRecord {
    /// Labeled video.
    pub vid: VideoId,
    /// Labeled time span.
    pub range: TimeRange,
    /// Activity classes the user assigned (one for single-label tasks,
    /// possibly several for multi-label tasks, empty meaning "nothing here").
    pub classes: Vec<ClassId>,
    /// Exploration iteration at which the label was collected.
    pub iteration: u32,
}

/// Append-only store of user labels.
#[derive(Debug, Clone, Default)]
pub struct LabelStore {
    records: Vec<LabelRecord>,
    by_video: HashMap<VideoId, Vec<usize>>,
}

impl LabelStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a label record.
    pub fn add(&mut self, record: LabelRecord) {
        self.by_video
            .entry(record.vid)
            .or_default()
            .push(self.records.len());
        self.records.push(record);
    }

    /// Number of label records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no labels have been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[LabelRecord] {
        &self.records
    }

    /// Records for a specific video.
    pub fn for_video(&self, vid: VideoId) -> Vec<&LabelRecord> {
        self.by_video
            .get(&vid)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Whether the given video has any label overlapping `range`.
    pub fn is_labeled(&self, vid: VideoId, range: &TimeRange) -> bool {
        self.for_video(vid).iter().any(|r| r.range.overlaps(range))
    }

    /// Set of videos with at least one label.
    pub fn labeled_videos(&self) -> Vec<VideoId> {
        let mut ids: Vec<VideoId> = self.by_video.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Per-class label counts over a vocabulary of `num_classes` classes.
    /// Multi-label records contribute one count per class they mention.
    pub fn class_counts(&self, num_classes: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_classes];
        for r in &self.records {
            for &c in &r.classes {
                if c < num_classes {
                    counts[c] += 1;
                }
            }
        }
        counts
    }

    /// Count of labels mentioning `class` and count of labels mentioning any
    /// other class — the `(n_a, n_o)` pair used by rare-class uncertainty
    /// sampling (Section 3.1.2).
    pub fn positive_negative_counts(&self, class: ClassId) -> (u64, u64) {
        let mut pos = 0;
        let mut neg = 0;
        for r in &self.records {
            if r.classes.contains(&class) {
                pos += 1;
            } else if !r.classes.is_empty() {
                neg += 1;
            }
        }
        (pos, neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab(vid: u64, start: f64, classes: Vec<usize>, iter: u32) -> LabelRecord {
        LabelRecord {
            vid: VideoId(vid),
            range: TimeRange::new(start, start + 1.0),
            classes,
            iteration: iter,
        }
    }

    #[test]
    fn add_and_query_by_video() {
        let mut s = LabelStore::new();
        s.add(lab(1, 0.0, vec![0], 0));
        s.add(lab(1, 5.0, vec![1], 0));
        s.add(lab(2, 0.0, vec![0], 1));
        assert_eq!(s.len(), 3);
        assert_eq!(s.for_video(VideoId(1)).len(), 2);
        assert_eq!(s.for_video(VideoId(3)).len(), 0);
        assert_eq!(s.labeled_videos(), vec![VideoId(1), VideoId(2)]);
    }

    #[test]
    fn is_labeled_respects_overlap() {
        let mut s = LabelStore::new();
        s.add(lab(1, 2.0, vec![0], 0));
        assert!(s.is_labeled(VideoId(1), &TimeRange::new(2.5, 3.5)));
        assert!(!s.is_labeled(VideoId(1), &TimeRange::new(3.0, 4.0)));
        assert!(!s.is_labeled(VideoId(2), &TimeRange::new(2.0, 3.0)));
    }

    #[test]
    fn class_counts_handle_multilabel_and_out_of_range() {
        let mut s = LabelStore::new();
        s.add(lab(1, 0.0, vec![0, 2], 0));
        s.add(lab(1, 1.0, vec![2], 0));
        s.add(lab(2, 0.0, vec![9], 0)); // out of vocabulary -> ignored
        assert_eq!(s.class_counts(3), vec![1, 0, 2]);
    }

    #[test]
    fn positive_negative_counts_for_rare_class_sampling() {
        let mut s = LabelStore::new();
        s.add(lab(1, 0.0, vec![0], 0));
        s.add(lab(1, 1.0, vec![0], 0));
        s.add(lab(2, 0.0, vec![1], 0));
        s.add(lab(2, 1.0, vec![], 0)); // "nothing here" counts as neither
        let (pos, neg) = s.positive_negative_counts(1);
        assert_eq!((pos, neg), (1, 2));
        let (pos0, neg0) = s.positive_negative_counts(0);
        assert_eq!((pos0, neg0), (2, 1));
    }

    #[test]
    fn empty_store_properties() {
        let s = LabelStore::new();
        assert!(s.is_empty());
        assert_eq!(s.class_counts(4), vec![0, 0, 0, 0]);
        assert!(s.labeled_videos().is_empty());
    }
}
