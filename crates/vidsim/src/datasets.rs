//! Generators for the six evaluation datasets of Table 2.
//!
//! | Dataset     | classes | skew    | train | eval | task         |
//! |-------------|---------|---------|-------|------|--------------|
//! | Deer        | 9       | skewed  | 896   | 225  | single-label |
//! | K20         | 20      | uniform | 13326 | 976  | single-label |
//! | K20 (skew)  | 20      | skewed  | 1050  | 976  | single-label |
//! | Charades    | 33      | skewed  | 7985  | 1863 | multi-label  |
//! | Bears       | 2       | uniform | 2410  | 722  | single-label |
//! | BDD         | 6       | skewed  | 800   | 200  | multi-label  |
//!
//! Each generated video carries ground-truth segments plus a latent content
//! seed; the class-count *shape* (skew) matches the paper, while a `scale`
//! knob lets the benchmark harness shrink the larger corpora so experiments
//! complete quickly without changing the skew.

use crate::corpus::VideoCorpus;
use crate::types::{Segment, TaskKind, TimeRange, VideoClip, VideoId, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ve_stats::zipf_frequencies;

/// The six datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    /// Deer activity classification from collar cameras (skewed, 9 classes).
    Deer,
    /// 20-class Kinetics subset (uniform).
    K20,
    /// 20-class Kinetics subset with Zipf(s=2) class skew.
    K20Skew,
    /// Charades verb classes (multi-label, 33 classes, skewed).
    Charades,
    /// Bear / no-bear camera traps (uniform, binary).
    Bears,
    /// BDD driving-object detection windows (multi-label, 6 classes, skewed).
    Bdd,
}

impl DatasetName {
    /// All datasets in the order the paper lists them.
    pub fn all() -> [DatasetName; 6] {
        [
            DatasetName::Deer,
            DatasetName::K20,
            DatasetName::K20Skew,
            DatasetName::Charades,
            DatasetName::Bears,
            DatasetName::Bdd,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            DatasetName::Deer => "Deer",
            DatasetName::K20 => "K20",
            DatasetName::K20Skew => "K20 (skew)",
            DatasetName::Charades => "Charades",
            DatasetName::Bears => "Bears",
            DatasetName::Bdd => "BDD",
        }
    }
}

impl std::fmt::Display for DatasetName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Static description of a dataset: vocabulary size, skew, corpus sizes, and
/// clip geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which dataset this spec describes.
    pub name: DatasetName,
    /// Number of activity classes.
    pub num_classes: usize,
    /// Whether the training class distribution is skewed.
    pub skewed: bool,
    /// Single- or multi-label task.
    pub task: TaskKind,
    /// Number of training videos to generate.
    pub train_videos: usize,
    /// Number of held-out evaluation videos to generate.
    pub eval_videos: usize,
    /// Clip duration in seconds.
    pub clip_duration: f64,
    /// Ground-truth segment granularity in seconds.
    pub segment_duration: f64,
}

impl DatasetSpec {
    /// The spec with the paper's exact Table 2 corpus sizes.
    pub fn paper(name: DatasetName) -> Self {
        match name {
            DatasetName::Deer => Self {
                name,
                num_classes: 9,
                skewed: true,
                task: TaskKind::SingleLabel,
                train_videos: 896,
                eval_videos: 225,
                clip_duration: 10.0,
                segment_duration: 1.0,
            },
            DatasetName::K20 => Self {
                name,
                num_classes: 20,
                skewed: false,
                task: TaskKind::SingleLabel,
                train_videos: 13_326,
                eval_videos: 976,
                clip_duration: 10.0,
                segment_duration: 1.0,
            },
            DatasetName::K20Skew => Self {
                name,
                num_classes: 20,
                skewed: true,
                task: TaskKind::SingleLabel,
                train_videos: 1_050,
                eval_videos: 976,
                clip_duration: 10.0,
                segment_duration: 1.0,
            },
            DatasetName::Charades => Self {
                name,
                num_classes: 33,
                skewed: true,
                task: TaskKind::MultiLabel,
                train_videos: 7_985,
                eval_videos: 1_863,
                clip_duration: 30.0,
                segment_duration: 1.0,
            },
            DatasetName::Bears => Self {
                name,
                num_classes: 2,
                skewed: false,
                task: TaskKind::SingleLabel,
                train_videos: 2_410,
                eval_videos: 722,
                clip_duration: 5.0,
                segment_duration: 1.0,
            },
            DatasetName::Bdd => Self {
                name,
                num_classes: 6,
                skewed: true,
                task: TaskKind::MultiLabel,
                train_videos: 800,
                eval_videos: 200,
                clip_duration: 40.0,
                segment_duration: 1.5,
            },
        }
    }

    /// A spec scaled down to `fraction` of the paper's corpus sizes (skew and
    /// vocabulary are unchanged); used by the benchmark harness so that sweeps
    /// over 100 labeling iterations × many configurations finish quickly.
    ///
    /// At least 60 training and 30 evaluation videos are always kept so the
    /// smaller datasets remain usable.
    pub fn scaled(name: DatasetName, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0, 1]");
        let mut spec = Self::paper(name);
        spec.train_videos = ((spec.train_videos as f64 * fraction).round() as usize).max(60);
        spec.eval_videos = ((spec.eval_videos as f64 * fraction).round() as usize).max(30);
        spec
    }

    /// The vocabulary for this dataset (named classes where the paper names
    /// them; generated names otherwise).
    pub fn vocabulary(&self) -> Vocabulary {
        match self.name {
            DatasetName::Deer => Vocabulary::new(vec![
                "bedded",
                "chewing",
                "foraging",
                "looking around",
                "traveling",
                "grooming",
                "standing",
                "running",
                "drinking",
            ]),
            DatasetName::K20 => Vocabulary::generated("k20_action", 20),
            DatasetName::K20Skew => Vocabulary::generated("k20s_action", 20),
            DatasetName::Charades => Vocabulary::generated("verb", 33),
            DatasetName::Bears => Vocabulary::new(vec!["no_bear", "bear"]),
            DatasetName::Bdd => Vocabulary::new(vec![
                "car",
                "truck",
                "person",
                "bus",
                "bicycle",
                "motorcycle",
            ]),
        }
    }

    /// Training-set class weights (probability that a video's primary
    /// activity is each class for single-label datasets; per-class presence
    /// probability for multi-label datasets).
    pub fn train_class_weights(&self) -> Vec<f64> {
        match self.name {
            // Dominated by "bedded", as reported for the Deer dataset.
            DatasetName::Deer => {
                normalize(&[0.52, 0.14, 0.11, 0.08, 0.06, 0.04, 0.025, 0.015, 0.01])
            }
            DatasetName::K20 => vec![1.0 / 20.0; 20],
            // Zipf s=2 scaled to 650 max / 3 min videos (Section 5, Datasets).
            DatasetName::K20Skew => {
                let counts = zipf_frequencies(20, 2.0, 650, 3);
                let total: usize = counts.iter().sum();
                counts.iter().map(|&c| c as f64 / total as f64).collect()
            }
            // Verb frequencies follow a moderate power law; presence
            // probabilities (multi-label) rather than a distribution.
            DatasetName::Charades => (0..33).map(|r| 0.45 / (r as f64 + 1.0).powf(0.8)).collect(),
            DatasetName::Bears => vec![0.5, 0.5],
            // Cars are near-ubiquitous in driving footage; motorcycles rare.
            DatasetName::Bdd => vec![0.90, 0.35, 0.30, 0.12, 0.08, 0.04],
        }
    }

    /// Evaluation-set class weights. For K20 (skew) the paper evaluates on
    /// the (uniform) Kinetics validation split; other datasets evaluate on a
    /// split with the same distribution as training.
    pub fn eval_class_weights(&self) -> Vec<f64> {
        match self.name {
            DatasetName::K20Skew => vec![1.0 / 20.0; 20],
            _ => self.train_class_weights(),
        }
    }
}

fn normalize(w: &[f64]) -> Vec<f64> {
    let s: f64 = w.iter().sum();
    w.iter().map(|x| x / s).collect()
}

/// A fully generated dataset: spec, vocabulary, training corpus, and held-out
/// evaluation corpus.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The spec the dataset was generated from.
    pub spec: DatasetSpec,
    /// Class vocabulary.
    pub vocabulary: Vocabulary,
    /// Training corpus (the videos the user explores and labels).
    pub train: VideoCorpus,
    /// Held-out evaluation corpus used only to measure macro F1.
    pub eval: VideoCorpus,
}

impl Dataset {
    /// Generates a dataset from its spec with the given seed.
    pub fn generate(spec: DatasetSpec, seed: u64) -> Self {
        let vocabulary = spec.vocabulary();
        let mut rng = StdRng::seed_from_u64(seed);
        let train = generate_corpus(
            &spec,
            &spec.train_class_weights(),
            spec.train_videos,
            0,
            seed,
            &mut rng,
        );
        let eval = generate_corpus(
            &spec,
            &spec.eval_class_weights(),
            spec.eval_videos,
            spec.train_videos as u64,
            seed ^ 0x9e37_79b9_7f4a_7c15,
            &mut rng,
        );
        Self {
            spec,
            vocabulary,
            train,
            eval,
        }
    }

    /// Convenience: generate with the paper's corpus sizes.
    pub fn paper(name: DatasetName, seed: u64) -> Self {
        Self::generate(DatasetSpec::paper(name), seed)
    }

    /// Convenience: generate a scaled-down corpus (same skew).
    pub fn scaled(name: DatasetName, fraction: f64, seed: u64) -> Self {
        Self::generate(DatasetSpec::scaled(name, fraction), seed)
    }

    /// Per-class count of training videos containing each class.
    pub fn train_class_counts(&self) -> Vec<usize> {
        self.train.class_video_counts(self.vocabulary.len())
    }
}

fn generate_corpus(
    spec: &DatasetSpec,
    class_weights: &[f64],
    num_videos: usize,
    id_offset: u64,
    latent_base: u64,
    rng: &mut StdRng,
) -> VideoCorpus {
    assert_eq!(class_weights.len(), spec.num_classes);
    let mut corpus = VideoCorpus::new();
    // Cumulative distribution for single-label primary-class sampling.
    let total: f64 = class_weights.iter().sum();
    let mut cdf = Vec::with_capacity(class_weights.len());
    let mut acc = 0.0;
    for &w in class_weights {
        acc += w / total;
        cdf.push(acc);
    }

    for v in 0..num_videos {
        let id = VideoId(id_offset + v as u64);
        let num_segments = (spec.clip_duration / spec.segment_duration).round() as usize;
        let mut segments = Vec::with_capacity(num_segments);

        // Single-label: one primary class per video; a small fraction of
        // segments switch to a co-occurring secondary class so not every
        // window of a video carries the same label (Deer activities
        // "occasionally co-occur").
        let primary = sample_from_cdf(&cdf, rng);
        let secondary = if spec.num_classes > 1 {
            sample_from_cdf(&cdf, rng)
        } else {
            primary
        };

        for s in 0..num_segments {
            let start = s as f64 * spec.segment_duration;
            let end = (start + spec.segment_duration).min(spec.clip_duration);
            let classes = match spec.task {
                TaskKind::SingleLabel => {
                    let c = if spec.num_classes > 1 && rng.gen::<f64>() < 0.10 {
                        secondary
                    } else {
                        primary
                    };
                    vec![c]
                }
                TaskKind::MultiLabel => {
                    // Per-class Bernoulli presence using the weights as
                    // per-class probabilities; correlated within a video by
                    // biasing toward the video's primary class.
                    let mut present = Vec::new();
                    for (c, &p) in class_weights.iter().enumerate() {
                        let boosted = if c == primary { (p * 3.0).min(0.95) } else { p };
                        if rng.gen::<f64>() < boosted {
                            present.push(c);
                        }
                    }
                    present
                }
            };
            segments.push(Segment {
                range: TimeRange::new(start, end),
                classes,
                latent_seed: mix_seed(latent_base, id.0, s as u64),
            });
        }

        let clip = VideoClip {
            id,
            path: format!("{}/video_{:06}.mp4", spec.name.as_str(), id.0),
            duration: spec.clip_duration,
            start_timestamp: v as f64 * spec.clip_duration,
            segments,
        };
        corpus.add_with_id(clip);
    }
    corpus
}

fn sample_from_cdf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Deterministic seed mixer (splitmix-style) tying a segment's latent content
/// to (dataset seed, video id, segment index).
fn mix_seed(base: u64, vid: u64, seg: u64) -> u64 {
    let mut z = base
        .wrapping_add(vid.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(seg.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_stats::s_max;

    #[test]
    fn paper_specs_match_table2() {
        let deer = DatasetSpec::paper(DatasetName::Deer);
        assert_eq!(
            (deer.num_classes, deer.train_videos, deer.eval_videos),
            (9, 896, 225)
        );
        assert!(deer.skewed);
        let k20 = DatasetSpec::paper(DatasetName::K20);
        assert_eq!(
            (k20.num_classes, k20.train_videos, k20.eval_videos),
            (20, 13_326, 976)
        );
        assert!(!k20.skewed);
        let k20s = DatasetSpec::paper(DatasetName::K20Skew);
        assert_eq!(
            (k20s.num_classes, k20s.train_videos, k20s.eval_videos),
            (20, 1_050, 976)
        );
        let charades = DatasetSpec::paper(DatasetName::Charades);
        assert_eq!(
            (
                charades.num_classes,
                charades.train_videos,
                charades.eval_videos
            ),
            (33, 7_985, 1_863)
        );
        assert_eq!(charades.task, TaskKind::MultiLabel);
        let bears = DatasetSpec::paper(DatasetName::Bears);
        assert_eq!(
            (bears.num_classes, bears.train_videos, bears.eval_videos),
            (2, 2_410, 722)
        );
        let bdd = DatasetSpec::paper(DatasetName::Bdd);
        assert_eq!(
            (bdd.num_classes, bdd.train_videos, bdd.eval_videos),
            (6, 800, 200)
        );
        assert_eq!(bdd.task, TaskKind::MultiLabel);
    }

    #[test]
    fn scaled_spec_preserves_shape() {
        let s = DatasetSpec::scaled(DatasetName::K20, 0.1);
        assert_eq!(s.num_classes, 20);
        assert_eq!(s.train_videos, 1333);
        assert_eq!(s.eval_videos, 98);
        // Minimum sizes enforced.
        let tiny = DatasetSpec::scaled(DatasetName::Bdd, 0.01);
        assert!(tiny.train_videos >= 60 && tiny.eval_videos >= 30);
    }

    #[test]
    fn class_weights_are_valid_distributions_for_single_label() {
        for name in [
            DatasetName::Deer,
            DatasetName::K20,
            DatasetName::K20Skew,
            DatasetName::Bears,
        ] {
            let spec = DatasetSpec::paper(name);
            let w = spec.train_class_weights();
            assert_eq!(w.len(), spec.num_classes);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{name}");
            assert!(w.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn deer_corpus_is_skewed_toward_bedded() {
        let ds = Dataset::scaled(DatasetName::Deer, 0.5, 7);
        let counts = ds.train_class_counts();
        let bedded = ds.vocabulary.index_of("bedded").unwrap();
        let max_class = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(max_class, bedded);
        let counts_u64: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        assert!(s_max(&counts_u64) > 0.4, "Deer should be heavily skewed");
    }

    #[test]
    fn k20_corpus_is_roughly_uniform() {
        let ds = Dataset::scaled(DatasetName::K20, 0.1, 3);
        let counts = ds.train_class_counts();
        let counts_u64: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        assert!(
            s_max(&counts_u64) < 0.12,
            "uniform K20 should have no dominant class: {counts:?}"
        );
    }

    #[test]
    fn k20_skew_train_is_zipfian_but_eval_is_uniform() {
        let ds = Dataset::generate(DatasetSpec::paper(DatasetName::K20Skew), 11);
        let train_counts = ds.train_class_counts();
        let eval_counts = ds.eval.class_video_counts(20);
        let max_train = *train_counts.iter().max().unwrap();
        let min_train = *train_counts.iter().min().unwrap();
        assert!(
            max_train > 40 * min_train.max(1),
            "train imbalance ratio should be large: {train_counts:?}"
        );
        let max_eval = *eval_counts.iter().max().unwrap() as f64;
        let min_eval = *eval_counts.iter().min().unwrap() as f64;
        assert!(
            max_eval / min_eval.max(1.0) < 3.0,
            "eval split should be roughly uniform: {eval_counts:?}"
        );
    }

    #[test]
    fn multi_label_dataset_has_videos_with_multiple_classes() {
        let ds = Dataset::scaled(DatasetName::Bdd, 1.0, 5);
        let multi = ds
            .train
            .videos()
            .iter()
            .filter(|v| v.classes_in(&TimeRange::new(0.0, v.duration)).len() > 1)
            .count();
        assert!(
            multi > ds.train.len() / 4,
            "BDD should frequently contain multiple objects: {multi}/{}",
            ds.train.len()
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Dataset::scaled(DatasetName::Bears, 0.1, 42);
        let b = Dataset::scaled(DatasetName::Bears, 0.1, 42);
        assert_eq!(a.train.videos(), b.train.videos());
        let c = Dataset::scaled(DatasetName::Bears, 0.1, 43);
        assert_ne!(a.train.videos(), c.train.videos());
    }

    #[test]
    fn clip_geometry_matches_spec() {
        let ds = Dataset::scaled(DatasetName::Charades, 0.01, 2);
        for v in ds.train.videos() {
            assert_eq!(v.duration, 30.0);
            assert_eq!(v.segments.len(), 30);
        }
        let bdd = Dataset::scaled(DatasetName::Bdd, 0.1, 2);
        for v in bdd.train.videos() {
            assert_eq!(v.duration, 40.0);
            // 40 s / 1.5 s windows ≈ 27 segments (the paper's BDD feature
            // vectors each cover 1.5 seconds).
            assert_eq!(v.segments.len(), 27);
        }
    }

    #[test]
    fn latent_seeds_are_unique_within_a_video() {
        let ds = Dataset::scaled(DatasetName::Deer, 0.1, 9);
        let v = &ds.train.videos()[0];
        let mut seeds: Vec<u64> = v.segments.iter().map(|s| s.latent_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), v.segments.len());
    }

    #[test]
    fn all_datasets_generate_without_panicking() {
        for name in DatasetName::all() {
            let ds = Dataset::scaled(name, 0.02, 1);
            assert!(!ds.train.is_empty());
            assert!(!ds.eval.is_empty());
            assert_eq!(ds.vocabulary.len(), ds.spec.num_classes);
        }
    }
}
