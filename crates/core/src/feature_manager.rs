//! The Feature Manager (FM).
//!
//! "The FM returns feature representations of video segments. These feature
//! vectors are used by the ALM to decide which video segments the user should
//! label as well as by the Model Manager to perform training and inference"
//! (Section 2.3). The FM extracts features lazily — only for the videos a
//! caller asks about — caches everything in the storage manager, and keeps a
//! running total of the simulated GPU seconds it has spent, which the latency
//! accounting uses.

use parking_lot::Mutex;
use ve_features::{ExtractorId, FeatureSimulator, FeatureVector};
use ve_storage::StorageManager;
use ve_vidsim::{TimeRange, VideoClip, VideoCorpus, VideoId};

/// Feature Manager: lazy, cached feature extraction with cost accounting.
pub struct FeatureManager {
    simulator: FeatureSimulator,
    storage: StorageManager,
    gpu_seconds: Mutex<f64>,
}

impl FeatureManager {
    /// Creates a feature manager backed by the given simulator and storage.
    pub fn new(simulator: FeatureSimulator, storage: StorageManager) -> Self {
        Self {
            simulator,
            storage,
            gpu_seconds: Mutex::new(0.0),
        }
    }

    /// The simulator in use (exposes extractor specs and profiles).
    pub fn simulator(&self) -> &FeatureSimulator {
        &self.simulator
    }

    /// Total simulated GPU seconds spent on extraction so far.
    pub fn gpu_seconds_spent(&self) -> f64 {
        *self.gpu_seconds.lock()
    }

    /// Whether features for `(extractor, vid)` are already cached.
    pub fn has_features(&self, extractor: ExtractorId, vid: VideoId) -> bool {
        self.storage.with_features(|f| f.contains(extractor, vid))
    }

    /// Videos with cached features for the given extractor.
    pub fn videos_with_features(&self, extractor: ExtractorId) -> Vec<VideoId> {
        self.storage
            .with_features(|f| f.videos_with_features(extractor))
    }

    /// Ensures features for one whole clip are extracted (no-op if cached).
    /// Returns the GPU seconds this call actually spent (0 on a cache hit).
    pub fn ensure_clip(&self, extractor: ExtractorId, clip: &VideoClip) -> f64 {
        if self.has_features(extractor, clip.id) {
            return 0.0;
        }
        let vectors = self.simulator.extract_clip(extractor, clip);
        let cost = self.simulator.extraction_seconds(extractor, clip);
        self.storage
            .with_features_mut(|f| f.put(extractor, clip.id, vectors));
        *self.gpu_seconds.lock() += cost;
        cost
    }

    /// Ensures features for a set of clips; returns total GPU seconds spent
    /// (cache hits are free).
    pub fn ensure_clips(&self, extractor: ExtractorId, clips: &[&VideoClip]) -> f64 {
        clips.iter().map(|c| self.ensure_clip(extractor, c)).sum()
    }

    /// Returns the cached feature vector covering `range` within `vid`,
    /// extracting the whole clip on demand if necessary. Returns `None` only
    /// when the video is unknown to the corpus.
    pub fn feature_for(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        vid: VideoId,
        range: &TimeRange,
    ) -> Option<FeatureVector> {
        self.with_video_features(extractor, corpus, vid, |entry| {
            entry.window_for(range).map(|i| FeatureVector {
                extractor,
                vid,
                range: *entry.range(i),
                data: entry.row(i).to_vec(),
            })
        })
        .flatten()
    }

    /// Runs `f` over the contiguous feature windows of a video (extracting on
    /// demand), without copying any embedding data out of the store. Returns
    /// `None` only when the video is unknown to the corpus.
    ///
    /// This is the hot-path accessor: the ALM's candidate assembly and batch
    /// prediction read rows as zero-copy views from inside the closure.
    pub fn with_video_features<R>(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        vid: VideoId,
        f: impl FnOnce(&ve_storage::VideoFeatures) -> R,
    ) -> Option<R> {
        let clip = corpus.get(vid)?;
        self.ensure_clip(extractor, clip);
        self.storage.with_features(|s| s.get(extractor, vid).map(f))
    }

    /// All cached vectors of a video for an extractor (extracting on demand).
    pub fn clip_features(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        vid: VideoId,
    ) -> Vec<FeatureVector> {
        let Some(clip) = corpus.get(vid) else {
            return Vec::new();
        };
        self.ensure_clip(extractor, clip);
        self.storage.with_features(|f| {
            f.get(extractor, vid)
                .map(|v| v.to_vectors())
                .unwrap_or_default()
        })
    }

    /// The per-clip extraction cost for an extractor (used by the scheduler's
    /// cost accounting even when the extraction itself is skipped).
    pub fn extraction_cost(&self, extractor: ExtractorId, clip: &VideoClip) -> f64 {
        self.simulator.extraction_seconds(extractor, clip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_vidsim::{Dataset, DatasetName};

    fn setup() -> (Dataset, FeatureManager) {
        let ds = Dataset::scaled(DatasetName::Deer, 0.05, 5);
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 5);
        let fm = FeatureManager::new(sim, StorageManager::new());
        (ds, fm)
    }

    #[test]
    fn extraction_is_cached_and_costed_once() {
        let (ds, fm) = setup();
        let clip = &ds.train.videos()[0];
        assert!(!fm.has_features(ExtractorId::R3d, clip.id));
        let c1 = fm.ensure_clip(ExtractorId::R3d, clip);
        assert!(c1 > 0.0);
        let c2 = fm.ensure_clip(ExtractorId::R3d, clip);
        assert_eq!(c2, 0.0, "second extraction must be a cache hit");
        assert!((fm.gpu_seconds_spent() - c1).abs() < 1e-12);
        assert!(fm.has_features(ExtractorId::R3d, clip.id));
    }

    #[test]
    fn feature_for_returns_window_overlapping_vector() {
        let (ds, fm) = setup();
        let clip = &ds.train.videos()[0];
        let fv = fm
            .feature_for(
                ExtractorId::Mvit,
                &ds.train,
                clip.id,
                &TimeRange::new(3.2, 4.2),
            )
            .unwrap();
        assert!(fv.range.overlaps(&TimeRange::new(3.2, 4.2)));
        assert_eq!(fv.vid, clip.id);
    }

    #[test]
    fn feature_for_unknown_video_is_none() {
        let (ds, fm) = setup();
        assert!(fm
            .feature_for(
                ExtractorId::Mvit,
                &ds.train,
                VideoId(999_999),
                &TimeRange::new(0.0, 1.0)
            )
            .is_none());
    }

    #[test]
    fn clip_features_extracts_all_windows() {
        let (ds, fm) = setup();
        let clip = &ds.train.videos()[1];
        let vectors = fm.clip_features(ExtractorId::Clip, &ds.train, clip.id);
        assert_eq!(vectors.len(), clip.segments.len());
        assert_eq!(fm.videos_with_features(ExtractorId::Clip), vec![clip.id]);
    }

    #[test]
    fn per_extractor_costs_differ() {
        let (ds, fm) = setup();
        let clip = &ds.train.videos()[0];
        assert!(
            fm.extraction_cost(ExtractorId::Mvit, clip)
                > fm.extraction_cost(ExtractorId::R3d, clip)
        );
    }
}
