//! A small priority-aware worker pool for running real (in-process) tasks.
//!
//! The paper's prototype runs feature extraction, training, and evaluation on
//! a limited pool of compute resources ("only a subset of submitted tasks can
//! execute at once"). This executor reproduces that constraint with a fixed
//! number of worker threads pulling closures from a shared priority queue:
//! critical work always runs before normal work, which runs before
//! background (eager) work.

use crate::task::Priority;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct SharedQueue {
    critical: VecDeque<Job>,
    normal: VecDeque<Job>,
    background: VecDeque<Job>,
    shutdown: bool,
}

impl SharedQueue {
    fn push(&mut self, priority: Priority, job: Job) {
        match priority {
            Priority::Critical => self.critical.push_back(job),
            Priority::Normal => self.normal.push_back(job),
            Priority::Background => self.background.push_back(job),
        }
    }

    fn pop(&mut self) -> Option<Job> {
        self.critical
            .pop_front()
            .or_else(|| self.normal.pop_front())
            .or_else(|| self.background.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.critical.is_empty() && self.normal.is_empty() && self.background.is_empty()
    }
}

struct Inner {
    queue: Mutex<SharedQueue>,
    available: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    running: AtomicBool,
}

/// Counters describing executor activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Jobs submitted since creation.
    pub submitted: u64,
    /// Jobs that have finished running.
    pub completed: u64,
}

/// Priority-aware thread-pool executor.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// Kept so tests can assert results flow back; not used internally.
    _result_tx: Sender<()>,
}

impl Executor {
    /// Starts an executor with `workers` threads.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let inner = Arc::new(Inner {
            queue: Mutex::new(SharedQueue::default()),
            available: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            running: AtomicBool::new(true),
        });
        let (tx, _rx) = unbounded();
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ve-sched-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn worker"),
            );
        }
        Self {
            inner,
            workers: handles,
            _result_tx: tx,
        }
    }

    /// Submits a closure at the given priority.
    pub fn submit<F>(&self, priority: Priority, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.inner.submitted.fetch_add(1, Ordering::SeqCst);
        {
            let mut q = self.inner.queue.lock();
            q.push(priority, Box::new(job));
        }
        self.inner.available.notify_one();
    }

    /// Blocks until every submitted job has completed.
    pub fn wait_idle(&self) {
        loop {
            let pending = {
                let q = self.inner.queue.lock();
                !q.is_empty()
            };
            let submitted = self.inner.submitted.load(Ordering::SeqCst);
            let completed = self.inner.completed.load(Ordering::SeqCst);
            if !pending && submitted == completed {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            submitted: self.inner.submitted.load(Ordering::SeqCst),
            completed: self.inner.completed.load(Ordering::SeqCst),
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.inner.running.store(false, Ordering::SeqCst);
        {
            let mut q = self.inner.queue.lock();
            q.shutdown = true;
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(job) = q.pop() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                inner.available.wait(&mut q);
            }
        };
        match job {
            Some(job) => {
                job();
                inner.completed.fetch_add(1, Ordering::SeqCst);
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn runs_all_submitted_jobs() {
        let ex = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            ex.submit(Priority::Normal, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        ex.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        let stats = ex.stats();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.completed, 100);
    }

    #[test]
    fn critical_jobs_run_before_background_jobs() {
        // Single worker so execution order equals queue order.
        let ex = Executor::new(1);
        let order = Arc::new(StdMutex::new(Vec::new()));
        // Block the worker briefly so all submissions are queued before any
        // execution starts.
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            ex.submit(Priority::Critical, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        for i in 0..3 {
            let order = Arc::clone(&order);
            ex.submit(Priority::Background, move || {
                order.lock().unwrap().push(format!("bg-{i}"));
            });
        }
        for i in 0..3 {
            let order = Arc::clone(&order);
            ex.submit(Priority::Critical, move || {
                order.lock().unwrap().push(format!("crit-{i}"));
            });
        }
        gate.store(true, Ordering::SeqCst);
        ex.wait_idle();
        let order = order.lock().unwrap().clone();
        assert_eq!(
            order,
            vec!["crit-0", "crit-1", "crit-2", "bg-0", "bg-1", "bg-2"],
            "critical work must preempt queued background work"
        );
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let ex = Executor::new(2);
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                ex.submit(Priority::Normal, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            ex.wait_idle();
        } // drop here
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        Executor::new(0);
    }
}
