//! Closing the loop on the paper's Figure 6 with real concurrency.
//!
//! The analytic model (`ve_sched::iteration_latency`) predicts that visible
//! per-iteration latency strictly decreases from Serial to `VE-partial` to
//! `VE-full`. The async session engine executes the same schedule on real
//! `ve_sched::Executor` threads — training, feature evaluation, and eager
//! extraction as prioritized tasks overlapping simulated think time — and
//! *measures* visible latency from wall-clock task completion times. This
//! test asserts the measured ordering matches the model's prediction and
//! that per-strategy measured medians agree with the analytic medians within
//! tolerance.

use vocalexplore::prelude::*;

fn run_strategy(strategy: SchedulerStrategy) -> AsyncSessionOutcome {
    let mut cfg = SessionConfig::new(DatasetName::Deer, 0.08, 42)
        .with_iterations(6)
        .with_eval_every(1000);
    cfg.system = cfg
        .system
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
        .with_extra_candidates(5)
        .with_strategy(strategy)
        // Coarse enough that scaled task costs dominate the real in-process
        // compute; think time shortened to keep the test's wall-clock down.
        .with_time_scale(2e-2);
    cfg.system.t_user = 4.0;
    cfg.system.train.epochs = 40;
    AsyncSessionRunner::new(cfg).run()
}

#[test]
fn measured_visible_latency_reproduces_figure6_ordering_within_model_tolerance() {
    let serial = run_strategy(SchedulerStrategy::Serial);
    let partial = run_strategy(SchedulerStrategy::VePartial);
    let full = run_strategy(SchedulerStrategy::VeFull);

    // The engine really ran tasks on executor threads, and none were lost.
    for outcome in [&serial, &partial, &full] {
        assert!(
            outcome.executor.submitted > 0,
            "no tasks ran — engine inert"
        );
        assert_eq!(outcome.executor.pending(), 0, "executor failed to drain");
        assert_eq!(outcome.executor.failed, 0, "tasks panicked during session");
    }

    // Measured ordering: Serial > VE-partial > VE-full (Figure 6).
    let (s, p, f) = (
        serial.median_measured_visible(),
        partial.median_measured_visible(),
        full.median_measured_visible(),
    );
    assert!(
        s > p && p > f,
        "measured medians must order Serial > VE-partial > VE-full, got \
         Serial {s:.2}s, VE-partial {p:.2}s, VE-full {f:.2}s"
    );

    // The analytic model predicts the same ordering on the same sessions.
    let (sm, pm, fm) = (
        serial.median_modeled_visible(),
        partial.median_modeled_visible(),
        full.median_modeled_visible(),
    );
    assert!(
        sm > pm && pm > fm,
        "modeled medians disagree on ordering: {sm:.2} / {pm:.2} / {fm:.2}"
    );

    // Measured agrees with the model within tolerance. The slack absorbs the
    // real (unscaled) in-process compute — selection and inference run for
    // real on this machine, and a loaded CI runner stretches them — plus the
    // headroom parallel inference gains over the model's serialized `B·T_i`
    // term.
    for (name, outcome) in [
        ("Serial", &serial),
        ("VE-partial", &partial),
        ("VE-full", &full),
    ] {
        let measured = outcome.median_measured_visible();
        let modeled = outcome.median_modeled_visible();
        assert!(
            measured <= 3.0 * modeled + 5.0,
            "{name}: measured {measured:.2}s far above model {modeled:.2}s"
        );
        assert!(
            measured >= 0.3 * modeled - 0.5,
            "{name}: measured {measured:.2}s far below model {modeled:.2}s"
        );
    }
}
