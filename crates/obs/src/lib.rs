//! `ve-obs` — two-plane observability.
//!
//! The repository's central invariant is determinism: every selection and
//! label sequence must be bit-identical at any `executor_workers ×
//! compute_threads` setting. Observability must not be the thing that breaks
//! that, so this crate splits instrumentation into two planes with opposite
//! contracts:
//!
//! * the **event plane** ([`event`]) — structured events whose *content and
//!   order* are a pure function of the session's inputs. No wall-clock
//!   reads, no thread ids, no allocation addresses. Because per-iteration
//!   event multisets are parallelism-invariant, the canonicalized ledger of
//!   a synchronous session and an asynchronous one can be asserted *equal*.
//! * the **timing plane** ([`timing`]) — wall-clock enrichment (queue wait,
//!   run duration, worker id) captured at task boundaries inside `ve-sched`
//!   and joined to events by span id. This is the only module in the crate
//!   allowed to read the clock (`ve-lint` enforces the split per file).
//!
//! On top of the planes sit a deterministic metrics registry ([`metrics`]:
//! counters, gauges, fixed-bucket histograms with integer quantile math), a
//! Chrome `trace_event` exporter ([`trace`]) loadable in Perfetto, and an
//! anomaly annotator ([`anomaly`]) that flags phase outliers and queue-wait
//! spikes against session medians (integer math only) as trace `instant`
//! events.

pub mod anomaly;
pub mod event;
pub mod metrics;
pub mod timing;
pub mod trace;

pub use anomaly::{annotate_trace, detect_timing_anomalies, Anomaly, AnomalyConfig, AnomalyKind};
pub use event::{EventKind, EventLedger};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use timing::{PhaseTiming, QueueClass, TaskLabel, TaskTiming, TimingPlane};
pub use trace::{ChromeTrace, TraceStats};
