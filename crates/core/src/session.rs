//! The async session engine: labeling sessions on real executor threads with
//! *measured* visible latency.
//!
//! [`crate::harness::SessionRunner`] accounts latency analytically — it runs
//! every task synchronously and attributes costs to the visible or background
//! column according to the strategy's formula. [`AsyncSessionRunner`] instead
//! *executes* the schedule: model training, feature evaluation, and eager
//! `T_f⁻` extraction are submitted to a [`ve_sched::Executor`] at the
//! priorities the Task Scheduler defines (`Critical` for the inference that
//! blocks the API response, `Normal` for training/evaluation, `Background`
//! for eager extraction), overlapped with the user's simulated labeling time.
//! Per-iteration visible latency is then **measured** from wall-clock task
//! completion times, with the analytic prediction recorded side by side —
//! closing the loop on the paper's Figure 6 claim with real concurrency.
//!
//! Simulated costs become real time through `VocalExploreConfig::time_scale`:
//! each task sleeps `modeled_cost * time_scale` wall-clock seconds on the
//! thread that executes it (GPU extraction sleeps inside the Feature Manager,
//! so the cost lands wherever the extraction actually runs), and the user's
//! think time is a scaled sleep on the session thread. Dividing measured
//! wall-clock by `time_scale` yields virtual seconds comparable to both the
//! analytic model and the paper's latency axes.
//!
//! # Determinism
//!
//! The engine performs exactly the state transitions of the synchronous path,
//! re-ordered in time but synchronized at iteration boundaries (every window
//! ends with `wait_idle`; work that overflows a window is recorded as
//! *spill*, mirroring Section 4's "background tasks never block the API").
//! Labels are produced by the oracle the moment the batch is selected, so
//! training over the full batch can overlap its own labeling window — the
//! role the paper's just-in-time policy plays for a human labeler. As a
//! result the label/selection sequence is bit-identical to
//! [`crate::harness::SessionRunner`] at any `executor_workers` /
//! `compute_threads` setting, which the determinism tests assert.

use crate::config::PreprocessPolicy;
use crate::degradation::Degradation;
use crate::harness::{eager_video_budget, iteration_costs_for_call, SessionConfig};
use crate::model_manager::InferenceError;
use crate::observability::SessionEvent;
use crate::system::VocalExplore;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ve_al::AcquisitionKind;
use ve_features::ExtractorId;
use ve_obs::{PhaseTiming, TaskLabel, TaskTiming};
use ve_sched::{
    iteration_latency, Executor, ExecutorStats, Priority, RetryPolicy, SchedulerStrategy,
};
use ve_storage::LabelRecord;
use ve_vidsim::{Dataset, GroundTruthOracle, NoisyOracle, Oracle, VideoId};

/// One iteration of a measured session: wall-clock observations next to the
/// analytic prediction for the same iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredIteration {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Total labels collected after this iteration.
    pub labels_total: usize,
    /// Acquisition function that produced this iteration's batch.
    pub acquisition: AcquisitionKind,
    /// Measured visible latency in *virtual* seconds (wall-clock divided by
    /// `time_scale`) — from the start of the `Explore` call to the batch
    /// (with predictions) being ready.
    pub measured_visible_secs: f64,
    /// The same measurement in raw wall-clock seconds.
    pub measured_visible_wall_secs: f64,
    /// The analytic model's prediction for this iteration
    /// (`ve_sched::iteration_latency` over the observed task counts).
    pub modeled_visible_secs: f64,
    /// Wall-clock seconds of the labeling window (think time plus the
    /// deferred-work bookkeeping that overlaps it).
    pub think_wall_secs: f64,
    /// Wall-clock seconds the iteration-boundary barrier waited *beyond* the
    /// labeling window for background work to drain (0 when the window
    /// absorbed everything, the common case).
    pub spill_wall_secs: f64,
}

/// The outcome of a measured session.
#[derive(Debug, Clone)]
pub struct AsyncSessionOutcome {
    /// The strategy the session executed.
    pub strategy: SchedulerStrategy,
    /// Per-iteration measurements.
    pub iterations: Vec<MeasuredIteration>,
    /// Every label collected, in order (for determinism comparisons against
    /// the synchronous path).
    pub labels: Vec<LabelRecord>,
    /// Executor counters at the end of the session.
    pub executor: ExecutorStats,
    /// The extractor used for predictions at the end.
    pub final_extractor: ExtractorId,
    /// Hit/miss counters of the ALM's probability cache over the session
    /// (all zero when `prob_cache` is disabled or no active selection ran).
    pub prob_cache: crate::prob_cache::ProbCacheStats,
    /// The `time_scale` the session ran at.
    pub time_scale: f64,
    /// Every fault the session absorbed instead of aborting, in
    /// deterministic per-iteration order (system-ledger events first, then
    /// the engine's own task-level events).
    pub degradations: Vec<Degradation>,
    /// The deterministic event ledger in canonical order — byte-for-byte
    /// equal to the synchronous path's (and to any other worker/thread
    /// configuration's) for the same inputs, up to the async engine's extra
    /// final-window training (see `crate::observability` module docs).
    pub events: Vec<(u32, SessionEvent)>,
    /// Exact per-kind counts of events the flight recorder evicted (empty
    /// unless `VocalExploreConfig::recorder_capacity` bounded the ledger
    /// and the session outgrew it). For any run, `events` per-kind counts
    /// plus these equal the unbounded ledger's counts.
    pub dropped_events: Vec<(&'static str, u64)>,
    /// Timing plane: one span per executor task (queue wait, run time,
    /// worker), joined to the event plane by label/iteration. Wall-clock
    /// facts only — never part of determinism assertions. Empty when
    /// `VocalExploreConfig::observability` is off.
    pub timings: Vec<TaskTiming>,
    /// Timing plane: per-iteration session-thread phases (`select`,
    /// `visible`, `think`, `spill`).
    pub phases: Vec<PhaseTiming>,
}

fn median(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    values[values.len() / 2]
}

impl AsyncSessionOutcome {
    /// Median measured visible latency per iteration (virtual seconds).
    pub fn median_measured_visible(&self) -> f64 {
        median(
            self.iterations
                .iter()
                .map(|r| r.measured_visible_secs)
                .collect(),
        )
    }

    /// Median modeled visible latency per iteration (virtual seconds).
    pub fn median_modeled_visible(&self) -> f64 {
        median(
            self.iterations
                .iter()
                .map(|r| r.modeled_visible_secs)
                .collect(),
        )
    }

    /// Total measured visible latency over the session (virtual seconds).
    pub fn total_measured_visible(&self) -> f64 {
        self.iterations
            .iter()
            .map(|r| r.measured_visible_secs)
            // ve-lint: allow(float-reduction-order) -- Vec iteration order is fixed
            .sum::<f64>()
    }

    /// Total modeled visible latency over the session (virtual seconds).
    pub fn total_modeled_visible(&self) -> f64 {
        self.iterations
            .iter()
            .map(|r| r.modeled_visible_secs)
            // ve-lint: allow(float-reduction-order) -- Vec iteration order is fixed
            .sum::<f64>()
    }

    /// Total wall-clock the boundary barriers waited beyond the labeling
    /// windows (background work that did not fit).
    pub fn total_spill_wall(&self) -> f64 {
        self.iterations
            .iter()
            .map(|r| r.spill_wall_secs)
            // ve-lint: allow(float-reduction-order) -- Vec iteration order is fixed
            .sum::<f64>()
    }
}

/// Drives oracle-labeled sessions on real executor threads.
pub struct AsyncSessionRunner {
    config: SessionConfig,
    dataset: Dataset,
}

impl AsyncSessionRunner {
    /// Generates the dataset and prepares a runner.
    pub fn new(config: SessionConfig) -> Self {
        let dataset = Dataset::scaled(config.dataset, config.scale, config.seed);
        Self { config, dataset }
    }

    /// Creates a runner over an already-generated dataset (so strategy sweeps
    /// share one corpus).
    pub fn with_dataset(config: SessionConfig, dataset: Dataset) -> Self {
        Self { config, dataset }
    }

    /// The generated dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Runs the session and returns the measured trace.
    ///
    /// # Panics
    /// Panics when the session config requests preprocessing (the `*-PP`
    /// baselines are an analytic-harness-only feature).
    pub fn run(&self) -> AsyncSessionOutcome {
        let cfg = &self.config;
        assert_eq!(
            cfg.system.preprocess,
            PreprocessPolicy::None,
            "the async engine does not support the preprocessing baselines"
        );
        let strategy = cfg.system.strategy;
        // The speculative extension changes only what the model claims, not
        // what the engine executes: it runs VE-full's schedule.
        let eager = matches!(
            strategy,
            SchedulerStrategy::VeFull | SchedulerStrategy::VeFullSpeculative
        );
        let serial = strategy == SchedulerStrategy::Serial;
        let scale = cfg.system.time_scale;

        let mut system = VocalExplore::new(cfg.system.clone());
        for clip in self.dataset.train.videos() {
            system.add_video(clip.clone());
        }
        let corpus = Arc::new(system.corpus().clone());
        let fm = system.feature_manager_arc();
        let mm = system.model_manager_arc();
        fm.set_latency_scale(Some(scale));
        let executor = Executor::new(cfg.system.executor_workers.max(1));
        executor.set_timing_enabled(cfg.system.observability);

        let oracle: Box<dyn Oracle> = if cfg.label_noise > 0.0 {
            Box::new(NoisyOracle::new(
                GroundTruthOracle::new(cfg.system.task),
                cfg.label_noise,
                cfg.system.num_classes,
                cfg.seed ^ 0xBAD_5EED,
            ))
        } else {
            Box::new(GroundTruthOracle::new(cfg.system.task))
        };

        let window_wall = cfg.batch_size as f64 * cfg.system.t_user * scale;

        let mut labels_at_last_training = 0usize;
        let mut iterations = Vec::with_capacity(cfg.iterations);
        let mut degradations: Vec<Degradation> = Vec::new();
        // Accounting snapshot for each iteration, carried from the previous
        // labeling window: the synchronous path snapshots the pool (for the
        // then-current extractor) at `Explore` time, *before* the call's
        // deferred CV/training work extracts anything. The engine's
        // equivalent moment is the window start, before the deferred tasks
        // are submitted — planned eager videos join the snapshot by name and
        // their background tasks complete before the next selection.
        let mut pool_before: std::collections::HashSet<VideoId> = fm
            .videos_with_features(system.current_extractor())
            .into_iter()
            .collect();

        for iteration in 1..=cfg.iterations {
            // The engine's own task-level degradations for this iteration,
            // appended after the system ledger's at the boundary so the
            // combined ledger has one deterministic order.
            let mut local_degradations: Vec<Degradation> = Vec::new();
            // ---- Visible phase: the Explore call. ----
            // ve-lint: allow(wall-clock-in-logic) -- measurement is the product: this timer *is* the reported visible latency
            let visible_timer = Instant::now();
            if serial {
                // Serial runs the deferred work synchronously inside the API
                // call, where the user waits for it.
                self.run_pending_inline(&mut system, &mut labels_at_last_training, scale);
            }
            // Sample selection on the calling thread (`T_s` per segment; lazy
            // candidate extraction inside sleeps its scaled GPU cost, so it
            // lands in the visible window for the lazy strategies).
            sleep_scaled(cfg.batch_size as f64 * cfg.system.costs.select_secs, scale);
            let (picks, stats) =
                system.sample_segments(cfg.batch_size, cfg.clip_len, cfg.target_label);
            executor.timing().record_phase(
                "select",
                iteration as u32,
                (visible_timer.elapsed().as_secs_f64() * 1e6) as u64,
            );
            // Model inference fans out as critical tasks — the one task class
            // the API response genuinely blocks on.
            let infer_secs = cfg.system.costs.infer_secs;
            let predictions = if system.predictions_ready() {
                let extractor = system.current_extractor();
                let handles: Vec<_> = picks
                    .iter()
                    .map(|&(vid, range)| {
                        let (mm, fm, corpus) =
                            (Arc::clone(&mm), Arc::clone(&fm), Arc::clone(&corpus));
                        executor.submit_with_handle_labeled(
                            Priority::Critical,
                            TaskLabel::new("infer", iteration as u32),
                            move || {
                                sleep_scaled(infer_secs, scale);
                                mm.predict(extractor, &corpus, &fm, vid, &range)
                            },
                        )
                    })
                    .collect();
                let joined: Vec<Result<Vec<crate::api::Prediction>, InferenceError>> = handles
                    .into_iter()
                    .map(|h| h.join().expect("inference task must not panic"))
                    .collect();
                // Degraded serving, mirroring the synchronous facade: the
                // first failed segment (by submission order) drops the whole
                // batch's predictions and is recorded once.
                if let Some(err) = joined.iter().find_map(|r| r.as_ref().err()) {
                    if let InferenceError::Row { vid, .. } = *err {
                        local_degradations.push(Degradation::PredictionDropped {
                            iteration: iteration as u32,
                            vid,
                        });
                    }
                    picks.iter().map(|_| Vec::new()).collect()
                } else {
                    joined.into_iter().map(|r| r.unwrap_or_default()).collect()
                }
            } else {
                picks.iter().map(|_| Vec::new()).collect::<Vec<_>>()
            };
            // Mirror of the synchronous facade's `attach_predictions` event:
            // same model version (window barriers), same fault fates, so the
            // served/predicted counts match bit for bit.
            system.obs().record(SessionEvent::PredictionsServed {
                segments: picks.len() as u32,
                predicted: predictions.iter().filter(|p| !p.is_empty()).count() as u32,
            });
            drop(predictions); // delivered to the (simulated) user
            let measured_visible_wall = visible_timer.elapsed().as_secs_f64();
            executor.timing().record_phase(
                "visible",
                iteration as u32,
                (measured_visible_wall * 1e6) as u64,
            );

            // ---- The user labels the batch (oracle). ----
            for &(vid, range) in &picks {
                let classes = oracle.label(&self.dataset.train, vid, &range);
                system.add_label(vid, range, classes);
            }

            // ---- Labeling window: deferred work overlaps think time. ----
            // ve-lint: allow(wall-clock-in-logic) -- measurement is the product: times the labeling window budget
            let window_timer = Instant::now();
            let active = system.alm().active_extractors();
            let batch_videos: std::collections::HashSet<VideoId> =
                picks.iter().map(|(vid, _)| *vid).collect();
            let costs = iteration_costs_for_call(
                &system,
                &self.dataset,
                cfg.batch_size,
                &pool_before,
                &batch_videos,
                &stats,
            );
            let modeled = iteration_latency(strategy, &costs);

            // Eager extraction is planned from the same covered-set snapshot
            // the synchronous path uses (before any deferred task of this
            // window has run), then executed as background `T_f⁻` tasks.
            let eager_videos = if eager {
                system.eager_plan(eager_video_budget(&modeled, costs.t_extract, active.len()))
            } else {
                Vec::new()
            };

            // Next iteration's accounting snapshot — taken before any
            // deferred task of this window is submitted, with the planned
            // eager coverage joined by name (see the declaration above).
            pool_before = fm
                .videos_with_features(system.current_extractor())
                .into_iter()
                .collect();
            pool_before.extend(eager_videos.iter().copied());

            let eager_handles: Vec<_> = eager_videos
                .into_iter()
                .map(|vid| {
                    let extractors = active.clone();
                    let (fm, corpus) = (Arc::clone(&fm), Arc::clone(&corpus));
                    executor.submit_with_handle_labeled(
                        Priority::Background,
                        TaskLabel::new("eager", iteration as u32),
                        move || {
                            // Per-video give-up list: a permanently failed
                            // extraction leaves the video pending, the rest of
                            // the round proceeds.
                            let mut gave_up: Vec<ExtractorId> = Vec::new();
                            if let Some(clip) = corpus.get(vid) {
                                for &e in &extractors {
                                    if fm.ensure_clip(e, clip).is_err() {
                                        gave_up.push(e);
                                    }
                                }
                            }
                            (vid, gave_up)
                        },
                    )
                })
                .collect();

            if !serial {
                self.run_pending_async(
                    &mut system,
                    &executor,
                    &mm,
                    &fm,
                    &corpus,
                    &mut labels_at_last_training,
                    iteration,
                    scale,
                    &mut local_degradations,
                );
            }

            // Whatever window time the bookkeeping above did not consume is
            // pure think time; the executor keeps chewing through it.
            let spent = window_timer.elapsed().as_secs_f64();
            if spent < window_wall {
                std::thread::sleep(Duration::from_secs_f64(window_wall - spent));
            }
            let think_wall = window_timer.elapsed().as_secs_f64();
            // Iteration boundary: background work that did not fit in the
            // window is *spill* — it delays later background work, never the
            // API response, but we must drain it so the next selection sees a
            // deterministic state.
            // ve-lint: allow(wall-clock-in-logic) -- measurement is the product: times barrier spill beyond the window
            let barrier_timer = Instant::now();
            executor.wait_idle();
            let spill_wall = barrier_timer.elapsed().as_secs_f64();
            let timing = executor.timing();
            timing.record_phase("think", iteration as u32, (think_wall * 1e6) as u64);
            timing.record_phase("spill", iteration as u32, (spill_wall * 1e6) as u64);

            // Drain give-ups in submission order (deterministic regardless of
            // which worker ran which task), then merge: system-ledger events
            // of this iteration first, the engine's task-level events after.
            for handle in eager_handles {
                let (vid, gave_up) = handle.join().expect("eager task must not panic");
                for extractor in gave_up {
                    local_degradations.push(Degradation::ExtractionGaveUp {
                        iteration: iteration as u32,
                        extractor,
                        vid,
                    });
                }
            }
            // The engine's task-level events are recorded into the system's
            // event plane at the merge point, preserving the legacy combined
            // order (window's system events first, then the engine's own);
            // the drained view then covers both.
            for d in local_degradations.drain(..) {
                system.record_degradation(d);
            }
            degradations.extend(system.drain_degradations());

            iterations.push(MeasuredIteration {
                iteration,
                labels_total: system.label_count(),
                acquisition: stats.acquisition,
                measured_visible_secs: measured_visible_wall / scale,
                measured_visible_wall_secs: measured_visible_wall,
                modeled_visible_secs: modeled.visible_secs,
                think_wall_secs: think_wall,
                spill_wall_secs: spill_wall,
            });
        }

        fm.set_latency_scale(None);
        degradations.extend(system.drain_degradations());
        AsyncSessionOutcome {
            strategy,
            iterations,
            labels: system.label_records(),
            executor: executor.stats(),
            final_extractor: system.current_extractor(),
            prob_cache: system.alm().prob_cache_stats(),
            time_scale: scale,
            degradations,
            events: system.obs().canonical_events(),
            dropped_events: system.obs().dropped_events(),
            timings: executor.timing().tasks(),
            phases: executor.timing().phases(),
        }
    }

    /// Serial path: the deferred work of the synchronous facade, executed
    /// inline (inside the visible window) with its modeled costs slept at
    /// scale. Delegates to the facade itself so the state transition is
    /// the synchronous one by construction.
    fn run_pending_inline(
        &self,
        system: &mut VocalExplore,
        labels_at_last_training: &mut usize,
        scale: f64,
    ) {
        let mm = system.model_manager_arc();
        let models_before = mm.models_trained();
        let evaluations = system.process_pending_work();
        let trained = mm.models_trained() > models_before;
        let cfg = &self.config.system;
        let mut modeled = evaluations as f64 * cfg.costs.eval_secs;
        if trained {
            *labels_at_last_training = system.label_count();
            modeled += cfg.costs.train_secs(system.label_count());
        }
        sleep_scaled(modeled, scale);
    }

    /// Async path: the same deferred work as `process_pending_work`, but as
    /// `Normal`-priority executor tasks overlapping the labeling window — one
    /// `T_e` per surviving candidate extractor, then one `T_m` training task
    /// whose CV score and extractor choice depend on the fresh evaluations
    /// (exactly the synchronous ordering).
    ///
    /// Training runs as a *retryable* task: the executor re-runs the attempt
    /// closure under the configured [`RetryPolicy`] and each attempt consults
    /// the fault injector exactly once — the same `(iteration, extractor)`
    /// decision key and attempt numbering as the synchronous path's internal
    /// retry loop, so both paths give up (or recover) identically.
    #[allow(clippy::too_many_arguments)]
    fn run_pending_async(
        &self,
        system: &mut VocalExplore,
        executor: &Executor,
        mm: &Arc<crate::model_manager::ModelManager>,
        fm: &Arc<crate::feature_manager::FeatureManager>,
        corpus: &Arc<ve_vidsim::VideoCorpus>,
        labels_at_last_training: &mut usize,
        iteration: usize,
        scale: f64,
        degradations: &mut Vec<Degradation>,
    ) {
        let cfg = &self.config.system;
        let labels = system.label_records();
        if labels.len() < cfg.min_labels_for_predictions {
            return;
        }
        let labels = Arc::new(labels);
        let eval_secs = cfg.costs.eval_secs;
        let score_handles: Vec<_> = system
            .alm()
            .evaluation_candidates()
            .into_iter()
            .map(|extractor| {
                let (mm, fm, corpus, labels) = (
                    Arc::clone(mm),
                    Arc::clone(fm),
                    Arc::clone(corpus),
                    Arc::clone(&labels),
                );
                executor.submit_with_handle_labeled(
                    Priority::Normal,
                    TaskLabel::new("eval", iteration as u32),
                    move || {
                        sleep_scaled(eval_secs, scale);
                        mm.evaluate_cv(extractor, &corpus, &fm, &labels)
                            .map(|score| (extractor, score))
                    },
                )
            })
            .collect();
        let scores: Vec<(ExtractorId, f64)> = score_handles
            .into_iter()
            .filter_map(|h| h.join().expect("evaluation task must not panic"))
            .collect();
        system.alm_mut().observe_feature_scores(&scores);

        if labels.len() > *labels_at_last_training {
            let extractor = system.current_extractor();
            let cv = scores
                .iter()
                .find(|(e, _)| *e == extractor)
                .map(|(_, s)| *s);
            let train_secs = cfg.costs.train_secs(labels.len());
            let (mm, fm, corpus, labels_arc) = (
                Arc::clone(mm),
                Arc::clone(fm),
                Arc::clone(corpus),
                Arc::clone(&labels),
            );
            // Backoff between attempts is virtual time scaled by the same
            // `time_scale` as every other modeled cost.
            let policy = RetryPolicy {
                time_scale: scale,
                ..self.config.system.retry
            };
            let handle = executor.submit_retryable_labeled(
                Priority::Normal,
                TaskLabel::new("train", iteration as u32),
                policy,
                move |attempt| {
                    sleep_scaled(train_secs, scale);
                    mm.train_attempt(
                        extractor,
                        &corpus,
                        &fm,
                        &labels_arc,
                        iteration as u32,
                        cv,
                        attempt,
                    )
                },
            );
            // The join blocks the session thread, but all of this happens
            // inside the labeling window — the executor trains while the
            // simulated user labels, and any excess is absorbed by the
            // boundary barrier, never by the next API call.
            match handle.join_task() {
                Ok(true) => *labels_at_last_training = labels.len(),
                Ok(false) => {}
                // A failed train keeps serving the previous model version —
                // record the loss, exactly like the synchronous facade.
                Err(_) => degradations.push(Degradation::TrainingFailed {
                    iteration: iteration as u32,
                    extractor,
                }),
            }
        }
    }
}

fn sleep_scaled(modeled_secs: f64, scale: f64) {
    let wall = modeled_secs * scale;
    if wall > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(wall));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FeatureSelectionPolicy;
    use crate::harness::SessionRunner;
    use ve_vidsim::DatasetName;

    fn quick_config(strategy: SchedulerStrategy, seed: u64, time_scale: f64) -> SessionConfig {
        let mut cfg = SessionConfig::new(DatasetName::Deer, 0.08, seed)
            .with_iterations(8)
            .with_eval_every(1000); // evaluate F1 only at the final iteration
        cfg.system = cfg
            .system
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
            .with_extra_candidates(5)
            .with_strategy(strategy)
            .with_compute_threads(1)
            .with_time_scale(time_scale);
        cfg.system.train.epochs = 40;
        cfg
    }

    #[test]
    fn async_engine_matches_synchronous_path_label_sequence() {
        // The acceptance bar for the whole engine: at compute_threads = 1 the
        // async path must produce the exact label/selection sequence of the
        // synchronous harness, for every strategy.
        for strategy in SchedulerStrategy::all() {
            let cfg = quick_config(strategy, 11, 1e-4);
            let sync = SessionRunner::new(cfg.clone()).run();
            let measured = AsyncSessionRunner::new(cfg).run();
            assert_eq!(
                measured.labels, sync.labels,
                "label sequences diverged under {strategy}"
            );
            assert_eq!(measured.final_extractor, sync.final_extractor);
            assert_eq!(measured.iterations.len(), sync.records.len());
            for (m, s) in measured.iterations.iter().zip(&sync.records) {
                assert_eq!(m.acquisition, s.acquisition, "{strategy}");
                assert_eq!(m.labels_total, s.labels_total, "{strategy}");
            }
        }
    }

    #[test]
    fn async_engine_matches_synchronous_path_with_bandit_feature_selection() {
        // The bandit flips `current_extractor` as CV scores arrive; the
        // engine's accounting snapshot must be taken at the same point
        // relative to score application as the synchronous harness's, or the
        // two paths' eager budgets (and then their selections) drift.
        let mut cfg = SessionConfig::new(DatasetName::Deer, 0.06, 21)
            .with_iterations(6)
            .with_eval_every(1000);
        cfg.system = cfg
            .system
            .with_strategy(SchedulerStrategy::VeFull)
            .with_extra_candidates(5)
            .with_compute_threads(1)
            .with_time_scale(1e-4);
        cfg.system.train.epochs = 30;
        let sync = SessionRunner::new(cfg.clone()).run();
        let measured = AsyncSessionRunner::new(cfg).run();
        assert_eq!(
            measured.labels, sync.labels,
            "bandit-policy label sequences diverged"
        );
        assert_eq!(measured.final_extractor, sync.final_extractor);
    }

    #[test]
    fn async_engine_is_deterministic_across_executor_workers() {
        let mk = |workers: usize| {
            let mut cfg = quick_config(SchedulerStrategy::VeFull, 12, 1e-4);
            cfg.system = cfg.system.with_executor_workers(workers);
            AsyncSessionRunner::new(cfg).run()
        };
        let one = mk(1);
        let four = mk(4);
        assert_eq!(one.labels, four.labels, "worker count changed selections");
        let acq = |o: &AsyncSessionOutcome| {
            o.iterations
                .iter()
                .map(|r| r.acquisition)
                .collect::<Vec<_>>()
        };
        assert_eq!(acq(&one), acq(&four));
    }

    #[test]
    fn executor_counters_converge_and_tasks_actually_ran() {
        let cfg = quick_config(SchedulerStrategy::VeFull, 13, 1e-4);
        let out = AsyncSessionRunner::new(cfg).run();
        assert_eq!(
            out.executor.pending(),
            0,
            "every submitted task must have completed by the end"
        );
        assert_eq!(out.executor.failed, 0);
        assert!(
            out.executor.submitted > 0,
            "VE-full must have submitted real tasks (training + eager T_f⁻)"
        );
        assert_eq!(out.iterations.len(), 8);
        assert!(out.median_measured_visible() >= 0.0);
        assert!(out.median_modeled_visible() >= 0.0);
    }

    #[test]
    fn measured_visible_latency_orders_strategies_like_the_model() {
        // Smoke-level ordering check; the root integration test asserts the
        // tolerance against the analytic model. The time scale must be coarse
        // enough that scaled task costs dominate the real in-process compute:
        // measured virtual seconds are wall-clock divided by the scale, so a
        // coarser scale leaves the (cost-derived) signal unchanged while
        // dividing debug-mode compute noise — at 1e-2 the partial-vs-full gap
        // (a few batch-extraction sleeps) was within noise reach of a slow
        // run. A shortened think time keeps the wall-clock of the test in
        // check.
        let run = |strategy| {
            let mut cfg = quick_config(strategy, 14, 3e-2).with_iterations(6);
            cfg.system.t_user = 4.0;
            AsyncSessionRunner::new(cfg).run()
        };
        let serial = run(SchedulerStrategy::Serial);
        let partial = run(SchedulerStrategy::VePartial);
        let full = run(SchedulerStrategy::VeFull);
        let (s, p, f) = (
            serial.total_measured_visible(),
            partial.total_measured_visible(),
            full.total_measured_visible(),
        );
        assert!(s > p, "Serial ({s:.1}s) must exceed VE-partial ({p:.1}s)");
        assert!(p > f, "VE-partial ({p:.1}s) must exceed VE-full ({f:.1}s)");
        // The model agrees on the ordering.
        assert!(serial.total_modeled_visible() > partial.total_modeled_visible());
        assert!(partial.total_modeled_visible() > full.total_modeled_visible());
    }
}
