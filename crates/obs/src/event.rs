//! The deterministic event plane: an append-only ledger of
//! `(iteration, event)` pairs.
//!
//! **Contract.** Event *content* must be a pure function of the session's
//! inputs — no wall-clock readings, thread ids, or pointer-derived values.
//! Recording *order* within an iteration is allowed to vary with scheduling
//! (a training task and an eager extraction may finish in either order), so
//! equality claims are made over the [`EventLedger::canonical`] form:
//! iteration-major, then the event type's total order. Because the
//! per-iteration event *multiset* is parallelism-invariant, the canonical
//! sequence is bit-comparable across worker/thread counts and across the
//! synchronous and asynchronous session paths.
//!
//! The raw recording order is still meaningful on a single path: the
//! degradation ledger exposed by `vocalexplore` is a cursor-based *view*
//! over this plane ([`EventLedger::drain_filter_map`]), preserving the exact
//! `Vec<Degradation>` ordering older code promised.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

struct LedgerState<E> {
    items: Vec<(u32, E)>,
    /// Index of the first item not yet returned by `drain_filter_map`.
    drain_cursor: usize,
}

/// Append-only, thread-safe event ledger. `E` is the concrete event enum of
/// the instrumented system; its `Ord` defines the canonical intra-iteration
/// order (derive it with the variants listed in phase order).
pub struct EventLedger<E> {
    ledger: Mutex<LedgerState<E>>,
    enabled: AtomicBool,
}

impl<E: Clone + Ord> EventLedger<E> {
    pub fn new() -> Self {
        Self {
            ledger: Mutex::new(LedgerState {
                items: Vec::new(),
                drain_cursor: 0,
            }),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turns recording on or off. `record_always` ignores this — events that
    /// double as program state (degradations) must survive a disabled sink.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event under the given iteration tag (no-op when disabled).
    pub fn record(&self, iteration: u32, event: E) {
        if !self.is_enabled() {
            return;
        }
        self.record_always(iteration, event);
    }

    /// Records regardless of the enabled flag — for events that are also
    /// program state (the degradation view is built on these).
    pub fn record_always(&self, iteration: u32, event: E) {
        let mut state = self.ledger.lock().expect("obs.ledger poisoned");
        state.items.push((iteration, event));
    }

    pub fn len(&self) -> usize {
        self.ledger.lock().expect("obs.ledger poisoned").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ledger in raw recording order.
    pub fn snapshot(&self) -> Vec<(u32, E)> {
        self.ledger
            .lock()
            .expect("obs.ledger poisoned")
            .items
            .clone()
    }

    /// The canonical form: stable-sorted by `(iteration, event)`. Two runs
    /// with identical per-iteration event multisets have identical canonical
    /// sequences — this is the form equality is asserted on.
    pub fn canonical(&self) -> Vec<(u32, E)> {
        let mut items = self.snapshot();
        items.sort();
        items
    }

    /// Returns `f(event)` for every not-yet-drained event where `f` is
    /// `Some`, in recording order, and advances the drain cursor past
    /// everything recorded so far. This is how a legacy "drain the ledger"
    /// API becomes a view over the event plane.
    pub fn drain_filter_map<T>(&self, f: impl Fn(&E) -> Option<T>) -> Vec<T> {
        let mut state = self.ledger.lock().expect("obs.ledger poisoned");
        let from = state.drain_cursor;
        state.drain_cursor = state.items.len();
        state.items[from..]
            .iter()
            .filter_map(|(_, e)| f(e))
            .collect()
    }
}

impl<E: Clone + Ord> Default for EventLedger<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_iteration_major_then_event_order() {
        let ledger: EventLedger<(u8, &'static str)> = EventLedger::new();
        ledger.record(2, (1, "train"));
        ledger.record(1, (0, "select"));
        ledger.record(2, (0, "select"));
        ledger.record(1, (1, "train"));
        assert_eq!(
            ledger.canonical(),
            vec![
                (1, (0, "select")),
                (1, (1, "train")),
                (2, (0, "select")),
                (2, (1, "train")),
            ]
        );
        // Raw order is untouched.
        assert_eq!(ledger.snapshot()[0], (2, (1, "train")));
    }

    #[test]
    fn drain_view_preserves_recording_order_and_cursor() {
        let ledger: EventLedger<i32> = EventLedger::new();
        ledger.record(0, 3);
        ledger.record(0, -1);
        ledger.record(0, 2);
        let firsts = ledger.drain_filter_map(|e| if *e > 0 { Some(*e) } else { None });
        assert_eq!(firsts, vec![3, 2]);
        ledger.record(1, 5);
        assert_eq!(ledger.drain_filter_map(|e| Some(*e)), vec![5]);
        assert_eq!(ledger.drain_filter_map(|e| Some(*e)), Vec::<i32>::new());
        // The full ledger is still intact for export.
        assert_eq!(ledger.len(), 4);
    }

    #[test]
    fn disabled_ledger_drops_events_but_keeps_record_always() {
        let ledger: EventLedger<i32> = EventLedger::new();
        ledger.set_enabled(false);
        ledger.record(0, 1);
        ledger.record_always(0, 2);
        assert_eq!(ledger.snapshot(), vec![(0, 2)]);
    }
}
