//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot 0.12` API subset this workspace uses — `Mutex`,
//! `RwLock`, and `Condvar` with guard-returning (never `Result`-returning)
//! lock methods. Poisoning is deliberately ignored, matching parking_lot's
//! semantics: a panic while holding a lock does not poison it for other
//! threads.

use std::sync::{self, PoisonError};

/// Mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader–writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed rather than a
    /// notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// reacquiring the lock before returning (spurious wakeups possible).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout` (spurious wakeups
    /// possible; callers must re-check their predicate either way).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
// Raw threads on purpose: the lock primitives need real cross-thread
// contention, and this compat shim sits below the executor.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_one();
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        let res = cvar.wait_for(&mut ready, std::time::Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(!*ready, "guard is reacquired and usable after the timeout");
    }

    #[test]
    fn wait_for_returns_on_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            std::thread::sleep(std::time::Duration::from_millis(10));
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            let res = cvar.wait_for(&mut ready, std::time::Duration::from_secs(5));
            if res.timed_out() {
                panic!("notification should arrive well before 5 s");
            }
        }
        drop(ready);
        handle.join().unwrap();
    }

    #[test]
    fn lock_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }
}
