//! The greedy Coreset (k-center) acquisition function of Sener & Savarese
//! (ICLR 2018).
//!
//! At each of `budget` steps the candidate farthest (in feature space) from
//! the already-covered set — labeled points plus previously selected
//! candidates — is picked. This is the density-based, diversity-seeking
//! baseline the paper's `VE-sample` can switch to, and the ALM executes
//! exactly `B` max-distance computations per `Explore` call (Section 4,
//! Baseline cost model).
//!
//! The distance scans run on [`FeatureBlock`]'s contiguous kernels: the
//! initial coverage pass is one blocked `candidates × labeled` sweep and each
//! selection step is one parallel `‖x_i − pick‖²` pass using cached squared
//! norms, so a 20k-window pool stays well under the interactivity budget.

use ve_ml::{argmax_chunked_filtered, FeatureBlock};

/// Selects `budget` candidate indices with the greedy k-center rule.
///
/// * `candidates` — feature block of the unlabeled pool (one row per
///   window).
/// * `labeled` — feature block of already-labeled segments (may be empty;
///   the first pick is then the candidate farthest from the pool centroid,
///   which avoids an arbitrary dependence on input order).
///
/// # Determinism and tie-breaking
///
/// Selection is fully deterministic: each step scans candidates in ascending
/// index order and takes the first candidate attaining the maximum coverage
/// distance (**first index wins** on exact ties). Zero-length candidate sets
/// (no rows, or a `budget` of 0) are skipped cleanly and return an empty
/// selection; degenerate zero-dimensional feature blocks select the first
/// `budget` indices in order (every distance ties at 0 and first-index-wins
/// applies).
///
/// # Panics
/// Panics if `labeled` is non-empty and its dimensionality differs from
/// `candidates`.
pub fn coreset_selection(
    candidates: &FeatureBlock,
    labeled: &FeatureBlock,
    budget: usize,
) -> Vec<usize> {
    if candidates.is_empty() || budget == 0 {
        return Vec::new();
    }
    if !labeled.is_empty() {
        assert_eq!(
            labeled.dim(),
            candidates.dim(),
            "labeled dimensions do not match candidates"
        );
    }

    // min_dist[i] = squared distance from candidate i to the covered set.
    let mut min_dist: Vec<f32> = if labeled.is_empty() {
        // Seed with distance to the candidate centroid so the first pick is
        // the most "extreme" point rather than whatever appears first.
        // `centroid()` is only `None` for an empty block, which was handled
        // above.
        let centroid = candidates.centroid().expect("non-empty candidate block");
        let mut out = vec![0.0f32; candidates.rows()];
        candidates.sq_distances_to(&centroid, &mut out);
        out
    } else {
        candidates.min_sq_distances_to_block(labeled)
    };

    let eligible: Vec<usize> = (0..candidates.rows()).collect();
    greedy_k_center(candidates, &mut min_dist, &eligible, budget)
}

/// The greedy k-center loop over an externally maintained coverage vector —
/// the incremental entry point used by the ALM's persistent
/// `AcquisitionIndex`.
///
/// * `coverage` — `coverage[i]` is the squared distance from candidate `i` to
///   the covered set (labeled anchors accumulated across iterations, or the
///   centroid seeding when no anchor exists yet). The caller owns this state:
///   maintaining it across `Explore` calls and updating it only for the Δ new
///   anchors (via [`FeatureBlock::min_sq_distances_update`]) is what turns
///   the per-call O(n·L) anchor scan into O(n·Δ). The vector is mutated in
///   place by the selection's own picks, so pass a scratch copy when the
///   persistent state must not absorb them.
/// * `eligible` — ascending candidate indices the selection may pick from
///   (the cluster-sketch reduction, with labeled windows masked out).
///   Coverage updates still run over *all* rows, so the greedy geometry is
///   unchanged by the reduction.
///
/// Equivalence: with `eligible = 0..rows` and `coverage` equal to what
/// [`coreset_selection`] computes from its `labeled` block, the selections
/// are bit-identical (each step is the same first-index-wins argmax over the
/// same values followed by the same parallel coverage update) — property
/// tests pin this.
///
/// # Panics
/// Panics if `coverage.len() != candidates.rows()` or an eligible index is
/// out of range.
pub fn greedy_k_center(
    candidates: &FeatureBlock,
    coverage: &mut [f32],
    eligible: &[usize],
    budget: usize,
) -> Vec<usize> {
    assert_eq!(
        coverage.len(),
        candidates.rows(),
        "coverage length must match candidates"
    );
    let take = budget.min(eligible.len());
    let mut selected = Vec::with_capacity(take);
    let mut picked = vec![false; candidates.rows()];
    for _ in 0..take {
        // Pick the first eligible candidate with the largest distance to the
        // covered set (chunk-parallel ascending scan, first index wins ties).
        let Some(best) = argmax_chunked_filtered(coverage, eligible, &picked) else {
            break;
        };
        selected.push(best);
        picked[best] = true;
        // Update coverage distances with one parallel pass.
        candidates.min_sq_distances_update(candidates.row(best), coverage);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight clusters far apart; coreset should cover all three before
    /// revisiting any cluster.
    fn clustered_candidates() -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for i in 0..5 {
                out.push(vec![cx + i as f32 * 0.01, cy - i as f32 * 0.01]);
            }
        }
        out
    }

    fn block(rows: &[Vec<f32>]) -> FeatureBlock {
        FeatureBlock::from_nested(rows)
    }

    fn cluster_of(idx: usize) -> usize {
        idx / 5
    }

    #[test]
    fn covers_distinct_clusters_first() {
        let candidates = block(&clustered_candidates());
        let picks = coreset_selection(&candidates, &FeatureBlock::empty(2), 3);
        assert_eq!(picks.len(), 3);
        let clusters: std::collections::HashSet<usize> =
            picks.iter().map(|&i| cluster_of(i)).collect();
        assert_eq!(
            clusters.len(),
            3,
            "each pick should come from a different cluster"
        );
    }

    #[test]
    fn respects_already_labeled_points() {
        let candidates = block(&clustered_candidates());
        // Cluster 0 is already labeled; the first two picks must come from
        // clusters 1 and 2.
        let labeled = block(&[vec![0.0, 0.0]]);
        let picks = coreset_selection(&candidates, &labeled, 2);
        let clusters: std::collections::HashSet<usize> =
            picks.iter().map(|&i| cluster_of(i)).collect();
        assert!(
            !clusters.contains(&0),
            "cluster 0 is already covered: {picks:?}"
        );
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn no_duplicate_selections() {
        let candidates = block(&clustered_candidates());
        let picks = coreset_selection(&candidates, &FeatureBlock::empty(2), 15);
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), picks.len());
        assert_eq!(picks.len(), 15);
    }

    #[test]
    fn budget_capped_by_pool_size() {
        let candidates = block(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        assert_eq!(
            coreset_selection(&candidates, &FeatureBlock::empty(2), 10).len(),
            2
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(coreset_selection(&FeatureBlock::empty(3), &FeatureBlock::empty(3), 5).is_empty());
        assert!(coreset_selection(&block(&[vec![1.0]]), &FeatureBlock::empty(1), 0).is_empty());
    }

    #[test]
    fn deterministic() {
        let candidates = block(&clustered_candidates());
        assert_eq!(
            coreset_selection(&candidates, &FeatureBlock::empty(2), 4),
            coreset_selection(&candidates, &FeatureBlock::empty(2), 4)
        );
    }

    #[test]
    fn exact_ties_pick_the_first_index() {
        // Four identical points: every coverage distance ties, so the
        // documented first-index-wins rule must pick 0, 1, 2 in order.
        let candidates = block(&vec![vec![1.0, 1.0]; 4]);
        let picks = coreset_selection(&candidates, &FeatureBlock::empty(2), 3);
        assert_eq!(picks, vec![0, 1, 2]);
    }

    #[test]
    fn zero_dimensional_features_select_in_index_order() {
        // A regression test for centroid seeding on degenerate blocks: no
        // dimensions means every distance is 0; selection must not panic and
        // must fall back to index order.
        let candidates = FeatureBlock::from_vec(5, 0, Vec::new());
        let picks = coreset_selection(&candidates, &FeatureBlock::empty(0), 3);
        assert_eq!(picks, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "labeled dimensions")]
    fn rejects_mismatched_labeled_dims() {
        coreset_selection(&block(&[vec![1.0, 2.0]]), &block(&[vec![1.0]]), 1);
    }

    #[test]
    fn greedy_k_center_with_full_eligibility_matches_coreset_selection() {
        let candidates = block(&clustered_candidates());
        let labeled = block(&[vec![0.0, 0.0], vec![10.0, 0.0]]);
        let reference = coreset_selection(&candidates, &labeled, 4);
        let mut coverage = candidates.min_sq_distances_to_block(&labeled);
        let eligible: Vec<usize> = (0..candidates.rows()).collect();
        let incremental = greedy_k_center(&candidates, &mut coverage, &eligible, 4);
        assert_eq!(incremental, reference);
    }

    #[test]
    fn greedy_k_center_restricts_picks_to_eligible_set() {
        let candidates = block(&clustered_candidates());
        let mut coverage = {
            let centroid = candidates.centroid().unwrap();
            let mut out = vec![0.0f32; candidates.rows()];
            candidates.sq_distances_to(&centroid, &mut out);
            out
        };
        // Only cluster 1 (indices 5..10) is eligible.
        let eligible: Vec<usize> = (5..10).collect();
        let picks = greedy_k_center(&candidates, &mut coverage, &eligible, 3);
        assert_eq!(picks.len(), 3);
        assert!(picks.iter().all(|&i| (5..10).contains(&i)), "{picks:?}");
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), picks.len());
        // Budget larger than the eligible set is capped by it.
        let mut coverage2 = vec![1.0f32; candidates.rows()];
        assert_eq!(
            greedy_k_center(&candidates, &mut coverage2, &[2, 7], 10).len(),
            2
        );
        assert!(greedy_k_center(&candidates, &mut coverage2, &[], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "coverage length")]
    fn greedy_k_center_rejects_short_coverage() {
        let candidates = block(&clustered_candidates());
        greedy_k_center(&candidates, &mut [0.0; 3], &[0], 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use ve_ml::tensor::squared_distance;

        /// Reference implementation: the seed repository's scalar
        /// `Vec<Vec<f32>>` loops, kept verbatim as the behavioural oracle for
        /// the blocked kernels.
        fn naive_coreset(
            candidates: &[Vec<f32>],
            labeled: &[Vec<f32>],
            budget: usize,
        ) -> Vec<usize> {
            if candidates.is_empty() || budget == 0 {
                return Vec::new();
            }
            let dim = candidates[0].len();
            let mut min_dist: Vec<f32> = if labeled.is_empty() {
                let mut centroid = vec![0.0f32; dim];
                for c in candidates {
                    for (s, &v) in centroid.iter_mut().zip(c) {
                        *s += v;
                    }
                }
                let inv = 1.0 / candidates.len() as f32;
                for s in &mut centroid {
                    *s *= inv;
                }
                candidates
                    .iter()
                    .map(|c| squared_distance(c, &centroid))
                    .collect()
            } else {
                candidates
                    .iter()
                    .map(|c| {
                        labeled
                            .iter()
                            .map(|l| squared_distance(c, l))
                            .fold(f32::INFINITY, f32::min)
                    })
                    .collect()
            };
            let mut selected = Vec::new();
            for _ in 0..budget.min(candidates.len()) {
                let mut best = usize::MAX;
                let mut best_dist = f32::NEG_INFINITY;
                for (i, &d) in min_dist.iter().enumerate() {
                    if selected.contains(&i) {
                        continue;
                    }
                    if d > best_dist {
                        best_dist = d;
                        best = i;
                    }
                }
                if best == usize::MAX {
                    break;
                }
                selected.push(best);
                for (i, d) in min_dist.iter_mut().enumerate() {
                    let nd = squared_distance(&candidates[i], &candidates[best]);
                    if nd < *d {
                        *d = nd;
                    }
                }
            }
            selected
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn selections_are_valid_indices_and_unique(
                points in proptest::collection::vec(
                    proptest::collection::vec(-10.0f32..10.0, 3), 1..40),
                budget in 0usize..10,
            ) {
                let picks = coreset_selection(&FeatureBlock::from_nested(&points), &FeatureBlock::empty(3), budget);
                prop_assert!(picks.len() <= budget.min(points.len()));
                let unique: std::collections::HashSet<_> = picks.iter().collect();
                prop_assert_eq!(unique.len(), picks.len());
                prop_assert!(picks.iter().all(|&i| i < points.len()));
            }

            #[test]
            fn blocked_kernels_select_exactly_like_the_naive_reference(
                grid_points in proptest::collection::vec(
                    proptest::collection::vec(-32i32..33, 5), 1..64),
                grid_labeled in proptest::collection::vec(
                    proptest::collection::vec(-32i32..33, 5), 1..6),
                budget in 1usize..12,
            ) {
                // Coordinates are quarter-integer grid points, so every
                // squared distance is exactly representable in f32 along
                // *both* computation paths (the naive subtract-square loop
                // and the blocked ‖a‖²+‖b‖²−2a·b identity) — the equality
                // below tests the selection algorithm, not accumulation
                // rounding. `labeled` is non-empty so the (f64-accumulated)
                // centroid seeding path, which is deliberately not
                // bit-comparable to the f32 reference, stays out of scope;
                // it has its own deterministic unit tests above.
                let to_f32 = |g: &Vec<Vec<i32>>| -> Vec<Vec<f32>> {
                    g.iter()
                        .map(|row| row.iter().map(|&v| v as f32 * 0.25).collect())
                        .collect()
                };
                let points = to_f32(&grid_points);
                let labeled = to_f32(&grid_labeled);
                let fast = coreset_selection(
                    &FeatureBlock::from_nested(&points),
                    &FeatureBlock::from_nested(&labeled),
                    budget,
                );
                let slow = naive_coreset(&points, &labeled, budget);
                prop_assert_eq!(fast, slow);
            }
        }
    }
}
