//! Trace equivalence: the deterministic event plane (`ve-obs`) is a pure
//! function of the session's inputs.
//!
//! Three contracts:
//!
//! 1. **Sync/async equivalence** — a synchronous `SessionRunner` session and
//!    an `AsyncSessionRunner` session with the same config produce identical
//!    canonical event ledgers, for every scheduling strategy and at every
//!    tested `executor_workers × compute_threads`, modulo the async engine's
//!    final-window training (the same boundary allowance `chaos_faults`
//!    makes for the degradation ledger).
//! 2. **Parallelism invariance** — the async ledger is bit-identical across
//!    worker/thread counts, with no trimming at all.
//! 3. **Chaos reconciliation** — under injected training faults, the event
//!    plane and the scheduler's counters tell the same story: re-run
//!    `TrainAttempt`s equal `ExecutorStats::retried`, `TrainingFailed`
//!    degradation events equal `gave_up`, and the `Degraded` events are
//!    exactly the outcome's degradation ledger.

use vocalexplore::prelude::*;
use vocalexplore::Degradation;

use ve_sched::fault::{FaultPlan, FaultRule, FaultSite};

fn base_config(seed: u64, iterations: usize) -> SessionConfig {
    let mut cfg = SessionConfig::new(DatasetName::Deer, 0.08, seed)
        .with_iterations(iterations)
        .with_eval_every(1000);
    cfg.system = cfg
        .system
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
        .with_extra_candidates(5)
        .with_compute_threads(1)
        .with_time_scale(1e-4);
    cfg.system.train.epochs = 40;
    cfg
}

/// Drops the async engine's final-window training events: its window-N
/// training corresponds to the synchronous path's explore-(N+1) deferred
/// work, which a session of N iterations never issues.
fn trim_final_window(events: &[(u32, SessionEvent)], last: u32) -> Vec<(u32, SessionEvent)> {
    events
        .iter()
        .filter(|(bucket, event)| {
            *bucket != last
                || !matches!(
                    event,
                    SessionEvent::TrainAttempt { .. }
                        | SessionEvent::TrainCompleted { .. }
                        | SessionEvent::EvaluationCompleted { .. }
                        | SessionEvent::Degraded(Degradation::TrainingFailed { .. })
                )
        })
        .cloned()
        .collect()
}

#[test]
fn sync_and_async_ledgers_are_identical_for_every_strategy() {
    for strategy in SchedulerStrategy::all() {
        let mut cfg = base_config(29, 6);
        cfg.system = cfg.system.with_strategy(strategy);
        let sync = SessionRunner::new(cfg.clone()).run();
        assert!(
            !sync.events.is_empty(),
            "instrumentation must actually record events under {strategy}"
        );
        let last = cfg.iterations as u32;
        for (workers, threads) in [(1, 1), (1, 4), (4, 1), (4, 4)] {
            let mut async_cfg = cfg.clone();
            async_cfg.system = async_cfg
                .system
                .with_executor_workers(workers)
                .with_compute_threads(threads);
            let measured = AsyncSessionRunner::new(async_cfg).run();
            assert_eq!(
                trim_final_window(&measured.events, last),
                sync.events,
                "event ledgers diverged under {strategy} at workers={workers} threads={threads}"
            );
        }
    }
}

#[test]
fn async_ledger_is_invariant_across_parallelism() {
    // Async vs async needs no boundary trim: every run issues the same
    // windows, so the ledgers must be bit-identical, faults included.
    let plan = FaultPlan::new(7)
        .with_rule(FaultSite::FeatureExtraction, FaultRule::permanent(0.2))
        .with_rule(FaultSite::Training, FaultRule::permanent(0.3))
        .with_rule(FaultSite::BatchInference, FaultRule::permanent(0.3))
        .with_rule(FaultSite::RowInference, FaultRule::permanent(0.1));
    let run = |workers: usize, threads: usize| {
        let mut cfg = base_config(17, 6);
        cfg.system = cfg
            .system
            .with_strategy(SchedulerStrategy::VeFull)
            .with_fault_plan(plan.clone())
            .with_executor_workers(workers)
            .with_compute_threads(threads);
        AsyncSessionRunner::new(cfg).run()
    };
    let reference = run(1, 1);
    assert!(!reference.events.is_empty());
    for (workers, threads) in [(1, 4), (4, 1), (4, 4)] {
        let other = run(workers, threads);
        assert_eq!(
            other.events, reference.events,
            "canonical ledger diverged at workers={workers} threads={threads}"
        );
    }
}

/// Shared fault-storm run for the flight-recorder contracts: same config as
/// `async_ledger_is_invariant_across_parallelism`, with an optional
/// recorder capacity.
fn storm_run(workers: usize, threads: usize, capacity: Option<usize>) -> AsyncSessionOutcome {
    let plan = FaultPlan::new(7)
        .with_rule(FaultSite::FeatureExtraction, FaultRule::permanent(0.2))
        .with_rule(FaultSite::Training, FaultRule::permanent(0.3))
        .with_rule(FaultSite::BatchInference, FaultRule::permanent(0.3))
        .with_rule(FaultSite::RowInference, FaultRule::permanent(0.1));
    let mut cfg = base_config(17, 6);
    cfg.system = cfg
        .system
        .with_strategy(SchedulerStrategy::VeFull)
        .with_fault_plan(plan)
        .with_executor_workers(workers)
        .with_compute_threads(threads)
        .with_recorder_capacity(capacity);
    AsyncSessionRunner::new(cfg).run()
}

fn kind_counts(events: &[(u32, SessionEvent)]) -> std::collections::BTreeMap<&'static str, u64> {
    use ve_obs::EventKind;
    let mut counts = std::collections::BTreeMap::new();
    for (_, e) in events {
        *counts.entry(e.kind()).or_insert(0u64) += 1;
    }
    counts
}

#[test]
fn ring_buffer_ledger_is_bit_identical_to_unbounded_within_capacity() {
    // A capacity the session never reaches: the bounded ledger must be
    // byte-for-byte the unbounded one, with zero drops, at every
    // parallelism setting.
    let reference = storm_run(1, 1, None);
    assert!(!reference.events.is_empty());
    assert!(
        reference.events.len() <= 4096,
        "capacity must cover the run"
    );
    for (workers, threads) in [(1, 1), (1, 4), (4, 1), (4, 4)] {
        let bounded = storm_run(workers, threads, Some(4096));
        assert_eq!(
            bounded.events, reference.events,
            "bounded-within-capacity ledger diverged at workers={workers} threads={threads}"
        );
        assert!(
            bounded.dropped_events.is_empty(),
            "no drops within capacity at workers={workers} threads={threads}"
        );
    }
}

#[test]
fn ring_buffer_drop_accounting_is_exact_under_pressure() {
    // Capacity far below the session's event volume: which events survive
    // depends on recording order (scheduling), but the *accounting* must be
    // exact against the unbounded truth — retained + dropped equals the
    // unbounded per-kind counts — and degradations are pinned, never lost.
    const CAPACITY: usize = 32;
    let truth = kind_counts(&storm_run(1, 1, None).events);
    let degraded_truth = truth.get("degraded").copied().unwrap_or(0);
    assert!(degraded_truth > 0, "the storm must degrade something");
    for (workers, threads) in [(1, 1), (1, 4), (4, 1), (4, 4)] {
        let out = storm_run(workers, threads, Some(CAPACITY));
        let retained = kind_counts(&out.events);
        assert!(
            !out.dropped_events.is_empty(),
            "capacity {CAPACITY} must be under pressure at workers={workers} threads={threads}"
        );
        // Memory bound: retained droppable events never exceed capacity.
        let retained_droppable: u64 = retained
            .iter()
            .filter(|(k, _)| **k != "degraded")
            .map(|(_, v)| v)
            .sum();
        assert!(
            retained_droppable <= CAPACITY as u64,
            "retained {retained_droppable} > capacity at workers={workers} threads={threads}"
        );
        // Exactness: per kind, retained + dropped == unbounded truth.
        let mut reconstructed = retained.clone();
        for (kind, dropped) in &out.dropped_events {
            *reconstructed.entry(kind).or_insert(0) += dropped;
        }
        assert_eq!(
            reconstructed, truth,
            "retained + dropped must equal the unbounded ledger's per-kind \
             counts at workers={workers} threads={threads}"
        );
        // Pinned: every degradation event retained, none ever dropped.
        assert_eq!(
            retained.get("degraded").copied().unwrap_or(0),
            degraded_truth
        );
        assert!(out.dropped_events.iter().all(|(k, _)| *k != "degraded"));
    }
}

#[test]
fn chaos_fault_events_reconcile_with_executor_counters() {
    // Training always fails: every retryable training task burns its full
    // attempt budget and gives up. The event plane must agree with the
    // executor's counters exactly.
    let plan = FaultPlan::new(3).with_rule(FaultSite::Training, FaultRule::permanent(1.0));
    let mut cfg = base_config(11, 6);
    cfg.system = cfg
        .system
        .with_strategy(SchedulerStrategy::VePartial)
        .with_fault_plan(plan);
    let out = AsyncSessionRunner::new(cfg).run();

    let reruns = out
        .events
        .iter()
        .filter(|(_, e)| matches!(e, SessionEvent::TrainAttempt { attempt, .. } if *attempt >= 1))
        .count() as u64;
    assert!(reruns > 0, "the storm must force retries");
    assert_eq!(
        reruns, out.executor.retried,
        "re-run TrainAttempt events must equal the executor's retried counter"
    );

    let gave_up_events = out
        .events
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                SessionEvent::Degraded(Degradation::TrainingFailed { .. })
            )
        })
        .count() as u64;
    assert_eq!(
        gave_up_events, out.executor.gave_up,
        "TrainingFailed events must equal the executor's gave_up counter"
    );

    // The legacy degradation ledger is a view over the event plane: the
    // Degraded events are exactly the outcome's degradations (as multisets;
    // the canonical ledger reorders within an iteration).
    let mut from_events: Vec<String> = out
        .events
        .iter()
        .filter_map(|(_, e)| match e {
            SessionEvent::Degraded(d) => Some(format!("{d:?}")),
            _ => None,
        })
        .collect();
    from_events.sort();
    let mut from_ledger: Vec<String> = out.degradations.iter().map(|d| format!("{d:?}")).collect();
    from_ledger.sort();
    assert_eq!(from_events, from_ledger);
}
