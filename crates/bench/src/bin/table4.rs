//! Table 4 — feature-selection correctness.
//!
//! For each dataset and each bandit horizon (`T = 20`, `T = 50`), runs the
//! rising-bandit feature selection across several seeds and reports the
//! fraction of runs that converged on a "correct" extractor (the per-dataset
//! sets defined in Section 5.3: {R3D, MViT} for Deer, {MViT, CLIP,
//! CLIP (Pooled)} for K20 and Bears, {MViT} for K20 (skew) and Charades,
//! {CLIP, CLIP (Pooled)} for BDD).
//!
//! Expected shape: correctness ≥ ~0.9 everywhere except BDD, where the
//! candidates are too close early on (the paper reports 0.50–0.69).
//!
//! ```text
//! cargo run --release -p ve-bench --bin table4 [-- --full]
//! ```

use ve_bench::{correct_extractors, print_header, print_row, Profile};
use vocalexplore::prelude::*;
use vocalexplore::FeatureSelectionPolicy;

fn main() {
    let profile = Profile::from_args();
    // Correctness needs more repetitions than the latency experiments.
    let trials: u64 = if std::env::args().any(|a| a == "--full") {
        20
    } else {
        8
    };
    println!(
        "Table 4: feature-selection correctness ({} trials per cell, C = 5, w = 5)\n",
        trials
    );

    let widths = [8, 10, 10, 10, 10, 10, 10];
    let names: Vec<String> = DatasetName::all().iter().map(|d| d.to_string()).collect();
    let mut header = vec!["T"];
    header.extend(names.iter().map(|s| s.as_str()));
    print_header(&header, &widths);

    for (label, horizon) in [("T = 20", 20usize), ("T = 50", 50usize)] {
        let mut cells = vec![label.to_string()];
        for dataset in DatasetName::all() {
            let correct_set = correct_extractors(dataset);
            let mut correct = 0usize;
            for trial in 0..trials {
                let mut cfg = profile.session(dataset, trial * 131 + 3);
                cfg.system = cfg
                    .system
                    .with_feature_selection(FeatureSelectionPolicy::Bandit(RisingBanditConfig {
                        horizon,
                        ..RisingBanditConfig::default()
                    }));
                let outcome = ve_bench::run_session(cfg);
                if correct_set.contains(&outcome.final_extractor) {
                    correct += 1;
                }
            }
            cells.push(format!("{:.2}", correct as f64 / trials as f64));
        }
        print_row(&cells, &widths);
    }
    println!(
        "\nCorrect sets: Deer {{R3D, MViT}}, K20 {{MViT, CLIP, CLIP (Pooled)}}, K20 (skew) {{MViT}},\n\
         Charades {{MViT}}, Bears {{MViT, CLIP, CLIP (Pooled)}}, BDD {{CLIP, CLIP (Pooled)}}."
    );
}
