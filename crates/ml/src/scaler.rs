//! Feature standardization.
//!
//! Linear probes on pretrained embeddings are sensitive to per-dimension
//! scale. The Model Manager standardizes features (zero mean, unit variance
//! per dimension, computed on the training split only) before fitting, which
//! also keeps the SGD learning-rate defaults stable across the very different
//! embedding geometries produced by different feature extractors.

/// Per-dimension standardizer (z-score).
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Fits the scaler on the given rows.
    ///
    /// Dimensions with zero variance are left unscaled (std treated as 1) so
    /// constant features do not blow up to NaN.
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler on empty data");
        let dim = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == dim), "ragged rows");
        let n = rows.len() as f64;
        let mut mean = vec![0.0f64; dim];
        for row in rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; dim];
        for row in rows {
            for ((v, &x), m) in var.iter_mut().zip(row).zip(&mean) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-8 {
                    1.0
                } else {
                    s as f32
                }
            })
            .collect();
        Self {
            mean: mean.iter().map(|&m| m as f32).collect(),
            std,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Transforms a single vector.
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }

    /// Transforms a batch of vectors.
    pub fn transform_batch(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Convenience: fit on `rows` and return the transformed rows plus the
    /// fitted scaler.
    pub fn fit_transform(rows: &[Vec<f32>]) -> (Vec<Vec<f32>>, Self) {
        let scaler = Self::fit(rows);
        (scaler.transform_batch(rows), scaler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_zero_mean_unit_variance() {
        let rows = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let (out, _scaler) = StandardScaler::fit_transform(&rows);
        let n = out.len() as f32;
        for d in 0..2 {
            let mean: f32 = out.iter().map(|r| r[d]).sum::<f32>() / n;
            let var: f32 = out.iter().map(|r| (r[d] - mean).powi(2)).sum::<f32>() / n;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "var {var}");
        }
    }

    #[test]
    fn constant_dimension_is_left_alone() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let (out, _) = StandardScaler::fit_transform(&rows);
        assert!(out.iter().all(|r| r[0].is_finite()));
        assert!((out[0][0] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn transform_uses_training_statistics() {
        let rows = vec![vec![0.0], vec![10.0]];
        let scaler = StandardScaler::fit(&rows);
        // mean 5, std 5 -> 20 maps to 3.
        assert!((scaler.transform(&[20.0])[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_input() {
        StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension_on_transform() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        scaler.transform(&[1.0]);
    }
}
