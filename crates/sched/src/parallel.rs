//! Data-parallel helpers for the compute hot paths.
//!
//! The acquisition kernels, batch inference, and cross-validation folds are
//! embarrassingly parallel scans. This module provides a small
//! `par_chunks`-style API that fans such scans out across scoped worker
//! threads — the same worker-count knob the Task Scheduler's executor uses —
//! while guaranteeing **bit-identical results regardless of thread count**:
//! every helper computes per-item outputs independently (no reduction ever
//! crosses a chunk edge) and collects them in item order on the calling
//! thread.
//!
//! Setting the parallelism to 1 (`set_parallelism(1)`) therefore changes
//! scheduling, not output, and is the supported configuration for
//! single-threaded determinism audits.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Configured worker count; 0 means "use the host's available parallelism".
static PARALLELISM: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads data-parallel helpers may use.
/// `0` restores the default (host parallelism). Thread count never affects
/// results, only wall-clock time.
pub fn set_parallelism(threads: usize) {
    PARALLELISM.store(threads, Ordering::Relaxed);
}

/// Serializes test code that mutates the process-global parallelism setting.
/// Tests (in this crate or downstream crates sharing a test binary) that call
/// [`set_parallelism`] must hold this guard for their whole body, otherwise
/// concurrently running tests race on the global and assert flakily.
#[doc(hidden)]
pub fn test_parallelism_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The effective worker count data-parallel helpers will use.
pub fn parallelism() -> usize {
    match PARALLELISM.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Minimum number of items per chunk before fan-out is worthwhile; scans
/// smaller than `2 * MIN_CHUNK` run inline on the caller.
const MIN_CHUNK: usize = 256;

/// Chunk size for helpers whose per-element outputs are independent of chunk
/// boundaries ([`par_chunks_mut`], [`par_map`]): one chunk per worker, so a
/// scan costs at most `threads` thread spawns. Unlike [`chunk_size`] this may
/// vary with the configured parallelism — that is safe here because no
/// reduction crosses chunk edges, so results are identical regardless.
fn spread_chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(MIN_CHUNK)
}

/// Runs `f` over disjoint consecutive chunks of `out`, passing each chunk its
/// starting index. Chunks run in parallel when the scan is large enough and
/// more than one worker is configured; output is deterministic either way
/// because every invocation writes only its own chunk.
pub fn par_chunks_mut<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    let threads = parallelism();
    if threads <= 1 || n < 2 * MIN_CHUNK {
        f(0, out);
        return;
    }
    let chunk = spread_chunk_size(n, threads);
    std::thread::scope(|scope| {
        let mut offset = 0;
        for piece in out.chunks_mut(chunk) {
            let start = offset;
            offset += piece.len();
            let f = &f;
            scope.spawn(move || f(start, piece));
        }
    });
}

/// Maps `f` over `0..n`, collecting results in index order. Parallel for
/// large `n`, inline otherwise; the result vector is identical in both cases.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = parallelism();
    if threads <= 1 || n < 2 * MIN_CHUNK {
        return (0..n).map(f).collect();
    }
    let chunk = spread_chunk_size(n, threads);
    let bounds: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(n)))
        .collect();
    let mut pieces: Vec<Vec<R>> = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(s, e)| {
                let f = &f;
                scope.spawn(move || (s..e).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            // ve-lint: allow(panic-in-task-path) -- join only fails if a pool worker already panicked; re-raising preserves the original panic
            pieces.push(h.join().expect("parallel map worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in pieces {
        out.extend(p);
    }
    out
}

/// Maps `f` over `0..n` with **one task per index**, collecting results in
/// index order. Unlike [`par_map`] this fans out even for tiny `n` — it is
/// meant for a handful of coarse-grained tasks (cross-validation folds,
/// per-extractor evaluations) where each item is worth a thread by itself.
/// Results are position-ordered, so output is independent of scheduling.
pub fn par_map_tasks<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = parallelism();
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Respect the configured worker cap: at most `threads` workers, each
    // handling a contiguous run of indices sequentially. Results are
    // reassembled in index order, so output is independent of scheduling.
    let per_worker = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(per_worker)
            .map(|s| {
                let e = (s + per_worker).min(n);
                let f = &f;
                scope.spawn(move || (s..e).map(f).collect::<Vec<R>>())
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            // ve-lint: allow(panic-in-task-path) -- join only fails if a pool worker already panicked; re-raising preserves the original panic
            out.extend(h.join().expect("parallel task worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let n = 10_000;
        let expected: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(31)).collect();
        let got = par_map(n, |i| (i as u64).wrapping_mul(31));
        assert_eq!(got, expected);
    }

    #[test]
    fn par_chunks_mut_writes_every_slot() {
        let mut out = vec![0usize; 5_000];
        par_chunks_mut(&mut out, |start, piece| {
            for (k, v) in piece.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Per-element outputs are computed independently, so the collected
        // vector must be bit-identical for 1 vs many threads even for
        // floating-point work.
        let n = 40_000;
        let run = || par_map(n, |i| (i as f32).sin());
        let _guard = test_parallelism_guard();
        set_parallelism(1);
        let single = run();
        set_parallelism(8);
        let multi = run();
        set_parallelism(0);
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&single), bits(&multi));
    }

    #[test]
    fn small_inputs_run_inline() {
        let _guard = test_parallelism_guard();
        set_parallelism(4);
        let out = par_map(10, |i| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        set_parallelism(0);
    }

    #[test]
    fn par_map_tasks_respects_worker_cap_and_order() {
        let _guard = test_parallelism_guard();
        set_parallelism(2);
        let peak = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let live = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let out = {
            let (peak, live) = (peak.clone(), live.clone());
            par_map_tasks(10, move |i| {
                let now = live.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                peak.fetch_max(now, std::sync::atomic::Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                live.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                i * 3
            })
        };
        set_parallelism(0);
        assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
        assert!(
            peak.load(std::sync::atomic::Ordering::SeqCst) <= 2,
            "configured cap of 2 workers exceeded: {}",
            peak.load(std::sync::atomic::Ordering::SeqCst)
        );
    }

    #[test]
    fn parallelism_round_trip() {
        let _guard = test_parallelism_guard();
        set_parallelism(3);
        assert_eq!(parallelism(), 3);
        set_parallelism(0);
        assert!(parallelism() >= 1);
    }
}
