//! Observability benchmark: writes `BENCH_obs.json` and a Chrome trace
//! (`BENCH_obs_trace.json`) loadable in Perfetto / `chrome://tracing`.
//!
//! Runs one instrumented `VeFull` session on the async engine and exports
//! what the two `ve-obs` planes saw:
//!
//! * **event plane** — deterministic event counts per kind (these are a pure
//!   function of the config, so diffs in this section of the artifact are
//!   behavior changes, not noise);
//! * **timing plane** — per-phase wall-clock histograms (p50/p99 in µs) for
//!   the session-thread phases (`select`, `visible`, `think`, `spill`) and
//!   the executor task kinds (`infer`, `train`, `eager`), plus the
//!   executor's queue-wait and depth high-water counters.
//!
//! The Chrome trace is structurally validated before it is written —
//! per-track monotonic timestamps, balanced `B`/`E` pairs, and at least one
//! complete span for every required phase — so CI fails loudly instead of
//! committing a trace Perfetto cannot load.
//!
//! ```text
//! cargo run --release -p ve-bench --bin bench_obs [-- --quick]
//! ```

use std::collections::BTreeMap;
use ve_obs::{ChromeTrace, Histogram, PhaseTiming, TaskTiming};
use vocalexplore::prelude::*;

fn event_kind(e: &SessionEvent) -> &'static str {
    match e {
        SessionEvent::IndexIngest { .. } => "IndexIngest",
        SessionEvent::CacheProbe { .. } => "CacheProbe",
        SessionEvent::SelectionCompleted { .. } => "SelectionCompleted",
        SessionEvent::PredictionsServed { .. } => "PredictionsServed",
        SessionEvent::LabelAdded { .. } => "LabelAdded",
        SessionEvent::Extracted { .. } => "Extracted",
        SessionEvent::EvaluationCompleted { .. } => "EvaluationCompleted",
        SessionEvent::TrainAttempt { .. } => "TrainAttempt",
        SessionEvent::TrainCompleted { .. } => "TrainCompleted",
        SessionEvent::Degraded(_) => "Degraded",
    }
}

/// One per-phase row of the artifact: a histogram summarised to the fields
/// worth diffing.
fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"min_us\": {}, \"max_us\": {}}}",
        h.total(),
        h.p50(),
        h.p99(),
        h.min(),
        h.max()
    )
}

fn build_trace(timings: &[TaskTiming], phases: &[PhaseTiming]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.name_track(0, 0, "session");
    let mut workers: Vec<usize> = timings.iter().map(|t| t.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for w in workers {
        trace.name_track(0, 1 + w as u64, &format!("worker-{w}"));
    }
    for p in phases {
        trace.add_phase(p);
    }
    for t in timings {
        trace.add_task(t);
    }
    trace
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, iterations, time_scale) = if quick {
        (0.08, 6, 2e-2)
    } else {
        (0.15, 12, 1e-2)
    };
    let mut cfg = SessionConfig::new(DatasetName::Deer, scale, 42)
        .with_iterations(iterations)
        .with_eval_every(10_000);
    cfg.system = cfg
        .system
        .with_strategy(SchedulerStrategy::VeFull)
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
        // Pin an index-backed acquisition so the artifact exercises the
        // acquisition-index ingest and probability-cache instrumentation.
        .with_sampling(SamplingPolicy::Fixed(AcquisitionKind::Coreset))
        .with_extra_candidates(5)
        .with_time_scale(time_scale);
    cfg.system.t_user = 4.0;
    cfg.system.train.epochs = 40;
    assert!(cfg.system.observability, "observability defaults on");

    let outcome = AsyncSessionRunner::new(cfg).run();
    assert_eq!(outcome.executor.pending(), 0, "executor failed to drain");
    assert!(
        !outcome.events.is_empty() && !outcome.timings.is_empty() && !outcome.phases.is_empty(),
        "both planes must have recorded"
    );

    // Event plane: deterministic counts per kind.
    let mut event_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (_, e) in &outcome.events {
        *event_counts.entry(event_kind(e)).or_insert(0) += 1;
    }

    // Timing plane: per-phase histograms. Session-thread phases observe
    // their duration; executor tasks observe run time, and queue wait goes
    // into one shared histogram (it measures scheduler pressure, not the
    // task itself).
    let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut observe = |name: &str, v: u64| {
        hists
            .entry(name.to_string())
            .or_insert_with(Histogram::with_default_bounds)
            .observe(v);
    };
    for p in &outcome.phases {
        observe(p.phase, p.dur_us);
    }
    for t in &outcome.timings {
        observe(t.label.kind, t.run_us());
        observe("queue_wait", t.queue_wait_us());
    }

    // Chrome trace, validated before anything is written.
    let trace = build_trace(&outcome.timings, &outcome.phases);
    let required = [
        "select", "visible", "think", "spill", "infer", "train", "eager",
    ];
    let stats = trace
        .validate(&required)
        .expect("trace must be structurally valid");
    eprintln!(
        "bench_obs: {} events, {} tasks, {} phase spans; trace has {} spans on {} tracks",
        outcome.events.len(),
        outcome.timings.len(),
        outcome.phases.len(),
        stats.spans,
        stats.tracks
    );

    let events_body = event_counts
        .iter()
        .map(|(k, v)| format!("      \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let phases_body = hists
        .iter()
        .map(|(k, h)| format!("    \"{k}\": {}", histogram_json(h)))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"schema\": \"vocalexplore/bench_obs/v1\",\n  \"quick\": {quick},\n  \
         \"strategy\": \"ve_full\",\n  \"iterations\": {iterations},\n  \"events\": {{\n    \
         \"total\": {},\n    \"by_kind\": {{\n{events_body}\n    }}\n  }},\n  \
         \"phases\": {{\n{phases_body}\n  }},\n  \"executor\": {{\n    \
         \"submitted\": {},\n    \"queue_wait_us\": {},\n    \"depth_hwm\": [{}, {}, {}]\n  }},\n  \
         \"trace\": {{\"tracks\": {}, \"spans\": {}}}\n}}\n",
        outcome.events.len(),
        outcome.executor.submitted,
        outcome.executor.queue_wait_us,
        outcome.executor.depth_hwm[0],
        outcome.executor.depth_hwm[1],
        outcome.executor.depth_hwm[2],
        stats.tracks,
        stats.spans,
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    std::fs::write("BENCH_obs_trace.json", trace.render_json())
        .expect("write BENCH_obs_trace.json");
    println!("{json}");
}
