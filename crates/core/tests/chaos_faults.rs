//! Chaos properties of the fault-injection and recovery layer.
//!
//! Three contracts, asserted over randomized-but-seeded fault schedules:
//!
//! 1. **Fault transparency** — a plan whose `fail_limit` is below the retry
//!    budget (`FaultPlan::transparent_under`) must produce a session whose
//!    label/selection sequence is bit-identical to a fault-free run, for
//!    every scheduling strategy.
//! 2. **Determinism** — with permanent faults in play, the same
//!    `(seed, FaultPlan)` must produce bit-identical labels, selections,
//!    degradation ledgers, and retry counters at any `executor_workers` /
//!    `compute_threads` setting.
//! 3. **No hang** — `wait_idle` (exercised at every iteration boundary of
//!    the async engine) converges under fault storms; sessions finish with
//!    zero pending tasks.

use vocalexplore::prelude::*;
use vocalexplore::Degradation;

use ve_sched::fault::{FaultPlan, FaultRule, FaultSite};
use ve_sched::RetryPolicy;

fn base_config(seed: u64, iterations: usize) -> SessionConfig {
    let mut cfg = SessionConfig::new(DatasetName::Deer, 0.08, seed)
        .with_iterations(iterations)
        .with_eval_every(1000);
    cfg.system = cfg
        .system
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
        .with_extra_candidates(5)
        .with_compute_threads(1)
        .with_time_scale(1e-4);
    cfg.system.train.epochs = 40;
    cfg
}

/// Canonical order for ledger comparison: the sync and async paths record
/// the same absorbed faults but interleave system-ledger and task-level
/// events differently within an iteration.
fn sorted_ledger(degradations: &[Degradation]) -> Vec<String> {
    let mut entries: Vec<String> = degradations.iter().map(|d| format!("{d:?}")).collect();
    entries.sort();
    entries
}

#[test]
fn transient_faults_within_the_retry_budget_are_invisible() {
    // Aggressive per-attempt failure probability, but every operation is
    // guaranteed to succeed by its third attempt — below the default retry
    // budget, so the plan is provably transparent.
    let plan = FaultPlan::uniform(42, FaultRule::transient(0.9, 2));
    assert!(plan.transparent_under(3));
    for strategy in SchedulerStrategy::all() {
        let mut oracle_cfg = base_config(31, 6);
        oracle_cfg.system = oracle_cfg.system.with_strategy(strategy);
        let mut faulted_cfg = oracle_cfg.clone();
        faulted_cfg.system = faulted_cfg.system.with_fault_plan(plan.clone());
        assert_eq!(faulted_cfg.system.retry.max_attempts, 3, "default budget");

        let oracle = SessionRunner::new(oracle_cfg).run();
        let faulted = SessionRunner::new(faulted_cfg.clone()).run();
        assert_eq!(
            faulted.labels, oracle.labels,
            "transient faults changed the label sequence under {strategy}"
        );
        assert_eq!(faulted.final_extractor, oracle.final_extractor);
        let acq = |o: &SessionOutcome| o.records.iter().map(|r| r.acquisition).collect::<Vec<_>>();
        assert_eq!(acq(&faulted), acq(&oracle), "{strategy}");
        assert!(
            faulted.degradations.is_empty(),
            "a transparent plan must absorb nothing permanently under {strategy}: {:?}",
            faulted.degradations
        );

        // The async engine absorbs the same transient storm to the same
        // final state.
        let measured = AsyncSessionRunner::new(faulted_cfg).run();
        assert_eq!(
            measured.labels, oracle.labels,
            "async transient-fault labels diverged under {strategy}"
        );
        assert!(measured.degradations.is_empty(), "{strategy}");
    }
}

#[test]
fn permanent_faults_degrade_identically_at_any_parallelism() {
    // Moderate permanent fault rates at every site: some extractions give
    // up, some trainings fail, some inference falls back — and all of it
    // must replay bit-identically at any worker/thread count.
    let plan = FaultPlan::new(7)
        .with_rule(FaultSite::FeatureExtraction, FaultRule::permanent(0.2))
        .with_rule(FaultSite::Training, FaultRule::permanent(0.3))
        .with_rule(FaultSite::BatchInference, FaultRule::permanent(0.3))
        .with_rule(FaultSite::RowInference, FaultRule::permanent(0.1));
    let run = |workers: usize, threads: usize| {
        let mut cfg = base_config(17, 6);
        cfg.system = cfg
            .system
            .with_strategy(SchedulerStrategy::VeFull)
            .with_fault_plan(plan.clone())
            .with_executor_workers(workers)
            .with_compute_threads(threads);
        AsyncSessionRunner::new(cfg).run()
    };
    let reference = run(1, 1);
    assert!(
        !reference.degradations.is_empty(),
        "the schedule must actually degrade something"
    );
    for (workers, threads) in [(1, 4), (4, 1), (4, 4)] {
        let other = run(workers, threads);
        assert_eq!(
            other.labels, reference.labels,
            "labels diverged at workers={workers} threads={threads}"
        );
        assert_eq!(
            other.degradations, reference.degradations,
            "degradation ledger diverged at workers={workers} threads={threads}"
        );
        assert_eq!(
            (other.executor.retried, other.executor.gave_up),
            (reference.executor.retried, reference.executor.gave_up),
            "retry counters diverged at workers={workers} threads={threads}"
        );
        assert_eq!(other.executor.pending(), 0);
    }
}

#[test]
fn async_engine_matches_synchronous_path_under_permanent_faults() {
    let plan = FaultPlan::new(23)
        .with_rule(FaultSite::FeatureExtraction, FaultRule::permanent(0.25))
        .with_rule(FaultSite::Training, FaultRule::permanent(0.4))
        .with_rule(FaultSite::BatchInference, FaultRule::permanent(0.4))
        .with_rule(FaultSite::RowInference, FaultRule::permanent(0.15));
    for strategy in SchedulerStrategy::all() {
        let mut cfg = base_config(19, 6);
        cfg.system = cfg
            .system
            .with_strategy(strategy)
            .with_fault_plan(plan.clone());
        let sync = SessionRunner::new(cfg.clone()).run();
        let measured = AsyncSessionRunner::new(cfg.clone()).run();
        assert_eq!(
            measured.labels, sync.labels,
            "faulted label sequences diverged under {strategy}"
        );
        assert_eq!(measured.final_extractor, sync.final_extractor);
        // The async engine trains once more than the synchronous harness:
        // its window-N training corresponds to the synchronous path's
        // explore-(N+1) deferred work, which a session of N iterations never
        // issues. Ignore that boundary event, then the absorbed-fault
        // ledgers must agree exactly (as multisets; the two paths interleave
        // system-ledger and task-level events differently).
        let last = cfg.iterations as u32;
        let trimmed: Vec<Degradation> = measured
            .degradations
            .iter()
            .filter(|d| !matches!(d, Degradation::TrainingFailed { iteration, .. } if *iteration == last))
            .cloned()
            .collect();
        assert_eq!(
            sorted_ledger(&trimmed),
            sorted_ledger(&sync.degradations),
            "degradation ledgers diverged under {strategy}"
        );
    }
}

#[test]
fn fault_storm_does_not_hang_the_session_engine() {
    // Near-certain permanent failure at every site with a tight retry
    // budget: the engine must still terminate every iteration barrier and
    // finish with nothing pending.
    let plan = FaultPlan::uniform(99, FaultRule::permanent(0.9));
    let mut cfg = base_config(13, 5);
    cfg.system = cfg
        .system
        .with_strategy(SchedulerStrategy::VeFull)
        .with_fault_plan(plan)
        .with_retry(RetryPolicy::new(2, 0.01, 2.0))
        .with_executor_workers(4);
    let out = AsyncSessionRunner::new(cfg).run();
    assert_eq!(out.iterations.len(), 5, "every iteration must complete");
    assert_eq!(out.executor.pending(), 0, "no task may be left behind");
    assert!(
        !out.degradations.is_empty(),
        "a 0.9 permanent storm must be absorbed somewhere"
    );
}

#[test]
fn training_faults_exercise_executor_retry_counters() {
    // Training always fails: the executor's retryable task burns the full
    // budget (bumping `retried` per re-run and `gave_up` on exhaustion) and
    // every failed train is recorded as a degradation while the session
    // keeps serving.
    let plan = FaultPlan::new(3).with_rule(FaultSite::Training, FaultRule::permanent(1.0));
    let mut cfg = base_config(11, 6);
    cfg.system = cfg
        .system
        .with_strategy(SchedulerStrategy::VePartial)
        .with_fault_plan(plan);
    let out = AsyncSessionRunner::new(cfg).run();
    assert!(
        out.executor.retried > 0,
        "failed attempts must be retried: {:?}",
        out.executor
    );
    assert!(
        out.executor.gave_up > 0,
        "exhausted budgets must be counted: {:?}",
        out.executor
    );
    assert_eq!(out.executor.pending(), 0);
    assert!(out
        .degradations
        .iter()
        .any(|d| matches!(d, Degradation::TrainingFailed { .. })));
    assert!(
        out.iterations.len() == 6,
        "the session must run to completion without a trained model"
    );
}
