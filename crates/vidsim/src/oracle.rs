//! Oracle labelers.
//!
//! The paper's evaluation "simulate[s] a labeling task by creating an oracle
//! 'user' that labels video segments with their ground-truth labels"
//! (Section 5). [`GroundTruthOracle`] implements that user; [`NoisyOracle`]
//! randomly corrupts a configurable fraction of labels for the Section 5.5
//! label-quality experiment (Figure 9: 5 %, 10 %, 20 % noise).

use crate::corpus::VideoCorpus;
use crate::types::{ClassId, TaskKind, TimeRange, VideoId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A (simulated) user that can label a video segment.
pub trait Oracle: Send + Sync {
    /// Returns the activity labels for the given video segment, or an empty
    /// vector if the video is unknown or nothing is present.
    fn label(&self, corpus: &VideoCorpus, vid: VideoId, range: &TimeRange) -> Vec<ClassId>;

    /// Simulated wall-clock seconds the user needs to watch and label one
    /// segment (`T_user` in Section 4; the paper's experiments use 10 s).
    fn seconds_per_label(&self) -> f64 {
        10.0
    }
}

/// Labels segments with their exact ground truth.
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    task: TaskKind,
    seconds_per_label: f64,
}

impl GroundTruthOracle {
    /// Creates an oracle for the given task kind with the paper's default
    /// labeling time of 10 seconds per segment.
    pub fn new(task: TaskKind) -> Self {
        Self {
            task,
            seconds_per_label: 10.0,
        }
    }

    /// Overrides the simulated labeling time.
    pub fn with_seconds_per_label(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0);
        self.seconds_per_label = secs;
        self
    }

    /// The task kind this oracle labels for.
    pub fn task(&self) -> TaskKind {
        self.task
    }
}

impl Oracle for GroundTruthOracle {
    fn label(&self, corpus: &VideoCorpus, vid: VideoId, range: &TimeRange) -> Vec<ClassId> {
        let Some(clip) = corpus.get(vid) else {
            return Vec::new();
        };
        let classes = clip.classes_in(range);
        match self.task {
            // For single-label tasks the user reports the dominant activity:
            // the class of the segment containing the midpoint of the window.
            TaskKind::SingleLabel => clip
                .segment_at(range.midpoint().min(clip.duration - 1e-9))
                .and_then(|s| s.primary_class())
                .map(|c| vec![c])
                .unwrap_or_else(|| classes.into_iter().take(1).collect()),
            TaskKind::MultiLabel => classes,
        }
    }

    fn seconds_per_label(&self) -> f64 {
        self.seconds_per_label
    }
}

/// Wraps another oracle and randomly corrupts a fraction of its answers.
///
/// For single-label answers the corrupted label is replaced by a uniformly
/// random different class; for multi-label answers each corrupted answer has
/// one class flipped (added if absent, removed if present).
pub struct NoisyOracle<O: Oracle> {
    inner: O,
    noise: f64,
    num_classes: usize,
    rng: Mutex<StdRng>,
}

impl<O: Oracle> NoisyOracle<O> {
    /// Creates a noisy oracle flipping labels with probability `noise`.
    ///
    /// # Panics
    /// Panics if `noise` is outside `[0, 1]` or `num_classes < 2`.
    pub fn new(inner: O, noise: f64, num_classes: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be in [0, 1]");
        assert!(num_classes >= 2, "need at least two classes to corrupt");
        Self {
            inner,
            noise,
            num_classes,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The configured corruption probability.
    pub fn noise(&self) -> f64 {
        self.noise
    }
}

impl<O: Oracle> Oracle for NoisyOracle<O> {
    fn label(&self, corpus: &VideoCorpus, vid: VideoId, range: &TimeRange) -> Vec<ClassId> {
        let truth = self.inner.label(corpus, vid, range);
        let mut rng = self.rng.lock();
        if rng.gen::<f64>() >= self.noise {
            return truth;
        }
        // Corrupt the answer.
        if truth.len() <= 1 {
            // Single-label (or empty): replace with a different random class.
            let current = truth.first().copied();
            loop {
                let candidate = rng.gen_range(0..self.num_classes);
                if Some(candidate) != current {
                    return vec![candidate];
                }
            }
        }
        // Multi-label: flip one random class.
        let mut corrupted = truth.clone();
        let flip = rng.gen_range(0..self.num_classes);
        if let Some(pos) = corrupted.iter().position(|&c| c == flip) {
            corrupted.remove(pos);
        } else {
            corrupted.push(flip);
        }
        corrupted
    }

    fn seconds_per_label(&self) -> f64 {
        self.inner.seconds_per_label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetName};

    fn deer() -> Dataset {
        Dataset::scaled(DatasetName::Deer, 0.1, 1)
    }

    #[test]
    fn ground_truth_oracle_returns_segment_class() {
        let ds = deer();
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        let vid = ds.train.videos()[0].id;
        let labels = oracle.label(&ds.train, vid, &TimeRange::new(0.0, 1.0));
        assert_eq!(labels.len(), 1);
        let truth = ds.train.videos()[0].segments[0].classes.clone();
        assert_eq!(labels, truth);
    }

    #[test]
    fn ground_truth_oracle_unknown_video_is_empty() {
        let ds = deer();
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        assert!(oracle
            .label(&ds.train, VideoId(9_999_999), &TimeRange::new(0.0, 1.0))
            .is_empty());
    }

    #[test]
    fn multilabel_oracle_returns_all_present_classes() {
        let ds = Dataset::scaled(DatasetName::Bdd, 0.2, 2);
        let oracle = GroundTruthOracle::new(TaskKind::MultiLabel);
        let clip = &ds.train.videos()[0];
        let whole = TimeRange::new(0.0, clip.duration);
        let labels = oracle.label(&ds.train, clip.id, &whole);
        assert_eq!(labels, clip.classes_in(&whole));
    }

    #[test]
    fn default_labeling_time_is_ten_seconds() {
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        assert_eq!(oracle.seconds_per_label(), 10.0);
        let fast = GroundTruthOracle::new(TaskKind::SingleLabel).with_seconds_per_label(2.0);
        assert_eq!(fast.seconds_per_label(), 2.0);
    }

    #[test]
    fn zero_noise_oracle_matches_ground_truth() {
        let ds = deer();
        let truth = GroundTruthOracle::new(TaskKind::SingleLabel);
        let noisy = NoisyOracle::new(GroundTruthOracle::new(TaskKind::SingleLabel), 0.0, 9, 3);
        for v in ds.train.videos().iter().take(20) {
            let r = TimeRange::new(0.0, 1.0);
            assert_eq!(
                noisy.label(&ds.train, v.id, &r),
                truth.label(&ds.train, v.id, &r)
            );
        }
    }

    #[test]
    fn noisy_oracle_flips_roughly_the_configured_fraction() {
        let ds = deer();
        let truth = GroundTruthOracle::new(TaskKind::SingleLabel);
        let noisy = NoisyOracle::new(GroundTruthOracle::new(TaskKind::SingleLabel), 0.2, 9, 5);
        let mut flipped = 0;
        let mut total = 0;
        for v in ds.train.videos() {
            for s in 0..v.num_windows(1.0) {
                let r = TimeRange::new(s as f64, s as f64 + 1.0);
                let t = truth.label(&ds.train, v.id, &r);
                let n = noisy.label(&ds.train, v.id, &r);
                total += 1;
                if t != n {
                    flipped += 1;
                }
            }
        }
        let rate = flipped as f64 / total as f64;
        assert!(
            (rate - 0.2).abs() < 0.05,
            "flip rate {rate} should be near 0.2 over {total} labels"
        );
    }

    #[test]
    fn corrupted_single_label_is_always_a_different_class() {
        let ds = deer();
        let truth = GroundTruthOracle::new(TaskKind::SingleLabel);
        let noisy = NoisyOracle::new(GroundTruthOracle::new(TaskKind::SingleLabel), 1.0, 9, 7);
        for v in ds.train.videos().iter().take(30) {
            let r = TimeRange::new(2.0, 3.0);
            let t = truth.label(&ds.train, v.id, &r);
            let n = noisy.label(&ds.train, v.id, &r);
            assert_ne!(t, n, "with 100% noise every label must change");
            assert!(n[0] < 9);
        }
    }

    #[test]
    #[should_panic(expected = "noise must be in [0, 1]")]
    fn rejects_invalid_noise() {
        NoisyOracle::new(GroundTruthOracle::new(TaskKind::SingleLabel), 1.5, 4, 0);
    }
}
