//! Microbenchmarks for the acquisition functions (`T_s` tasks).
//!
//! The paper's latency argument rests on sample selection being cheap
//! relative to feature extraction; these benchmarks measure the per-call cost
//! of Random, Coreset, and Cluster-Margin selection at realistic candidate
//! pool sizes (B = 5, pools of 100–1000 windows, 64-dimensional features).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use ve_al::{cluster_margin_selection, coreset_selection, random_selection, ClusterMarginConfig};

fn make_pool(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let feats: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect())
        .collect();
    let probs: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            let a: f32 = rng.gen();
            vec![a, 1.0 - a]
        })
        .collect();
    (feats, probs)
}

fn bench_acquisition(c: &mut Criterion) {
    let mut group = c.benchmark_group("acquisition");
    for &pool in &[100usize, 500, 1000] {
        let (feats, probs) = make_pool(pool, 64, 7);
        let labeled: Vec<Vec<f32>> = feats.iter().take(20).cloned().collect();

        group.bench_with_input(BenchmarkId::new("random", pool), &pool, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(random_selection(n, 5, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("coreset", pool), &pool, |b, _| {
            b.iter(|| black_box(coreset_selection(&feats, &labeled, 5)))
        });
        group.bench_with_input(BenchmarkId::new("cluster_margin", pool), &pool, |b, _| {
            let cfg = ClusterMarginConfig::default();
            b.iter(|| black_box(cluster_margin_selection(&feats, &probs, 5, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_acquisition);
criterion_main!(benches);
