//! The regression contract: `BENCH_contract.json` declares, per committed
//! bench artifact, which metrics carry the paper's claims and how much they
//! are allowed to move.
//!
//! Rule kinds:
//!
//! * `min` / `max` — absolute bound on one metric. `source` picks which
//!   document the value is read from: `"fresh"` (default — the just-run
//!   bench output) or `"baseline"` (the committed artifact itself, for
//!   claims only full-mode runs produce, e.g. the 718× HAC speedup).
//! * `ratio_max` / `ratio_min` — bound on `fresh / baseline` for one
//!   metric (lower-is-better latencies use `ratio_max`). Ratio rules are
//!   only meaningful like-for-like, so they are skipped when the two
//!   documents' `quick` flags differ.
//! * `order_desc` — the listed metrics (all read from fresh) must be
//!   strictly decreasing: the Serial > VE-partial > VE-full headline.
//!
//! `allow_missing: true` skips a rule whose metric is absent or null —
//! quick-mode artifacts legitimately omit some sections.

use crate::json::{parse, Json};

pub const CONTRACT_SCHEMA: &str = "vocalexplore/bench_contract/v1";

/// Which document an absolute `min`/`max` bound reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    Fresh,
    Baseline,
}

#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    Min(f64),
    Max(f64),
    RatioMax(f64),
    RatioMin(f64),
    OrderDesc(Vec<String>),
}

impl RuleKind {
    pub fn name(&self) -> &'static str {
        match self {
            RuleKind::Min(_) => "min",
            RuleKind::Max(_) => "max",
            RuleKind::RatioMax(_) => "ratio_max",
            RuleKind::RatioMin(_) => "ratio_min",
            RuleKind::OrderDesc(_) => "order_desc",
        }
    }
}

/// One contract rule over one artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Artifact file name, e.g. `BENCH_training.json`.
    pub artifact: String,
    /// Dotted metric path (empty for `order_desc`, which carries its own
    /// metric list).
    pub metric: String,
    pub kind: RuleKind,
    pub source: Source,
    /// Skip (don't fail) when the metric is absent or null.
    pub allow_missing: bool,
    /// Why this bound exists — printed with every violation.
    pub reason: String,
}

impl Rule {
    /// `artifact :: metric` (or the order list) — how reports name the rule.
    pub fn subject(&self) -> String {
        match &self.kind {
            RuleKind::OrderDesc(metrics) => format!("{} :: {}", self.artifact, metrics.join(" > ")),
            _ => format!("{} :: {}", self.artifact, self.metric),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Contract {
    pub rules: Vec<Rule>,
}

impl Contract {
    /// Artifact names the contract references, deduplicated, sorted.
    pub fn artifacts(&self) -> Vec<String> {
        let mut names: Vec<String> = self.rules.iter().map(|r| r.artifact.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

/// Parses `BENCH_contract.json` text into a [`Contract`], validating the
/// schema marker and every rule's shape.
pub fn parse_contract(text: &str) -> Result<Contract, String> {
    let doc = parse(text).map_err(|e| format!("contract: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("contract: missing `schema`")?;
    if schema != CONTRACT_SCHEMA {
        return Err(format!(
            "contract: schema `{schema}` (expected `{CONTRACT_SCHEMA}`)"
        ));
    }
    let raw_rules = doc
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or("contract: missing `rules` array")?;
    let mut rules = Vec::new();
    for (i, raw) in raw_rules.iter().enumerate() {
        rules.push(parse_rule(raw).map_err(|e| format!("contract rule {i}: {e}"))?);
    }
    if rules.is_empty() {
        return Err("contract: no rules — an empty gate guards nothing".to_string());
    }
    Ok(Contract { rules })
}

fn parse_rule(raw: &Json) -> Result<Rule, String> {
    let artifact = raw
        .get("artifact")
        .and_then(Json::as_str)
        .ok_or("missing `artifact`")?
        .to_string();
    let kind_name = raw
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing `kind`")?;
    let reason = raw
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("missing `reason` — every bound must say why it exists")?
        .to_string();
    let value = || {
        raw.get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`{kind_name}` needs a numeric `value`"))
    };
    let metric = || {
        raw.get("metric")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("`{kind_name}` needs a `metric` path"))
    };
    let (kind, metric) = match kind_name {
        "min" => (RuleKind::Min(value()?), metric()?),
        "max" => (RuleKind::Max(value()?), metric()?),
        "ratio_max" => (RuleKind::RatioMax(value()?), metric()?),
        "ratio_min" => (RuleKind::RatioMin(value()?), metric()?),
        "order_desc" => {
            let metrics = raw
                .get("metrics")
                .and_then(Json::as_arr)
                .ok_or("`order_desc` needs a `metrics` array")?
                .iter()
                .map(|m| {
                    m.as_str()
                        .map(str::to_string)
                        .ok_or("`metrics` entries must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            if metrics.len() < 2 {
                return Err("`order_desc` needs at least two metrics".to_string());
            }
            (RuleKind::OrderDesc(metrics), String::new())
        }
        other => return Err(format!("unknown rule kind `{other}`")),
    };
    let source = match raw.get("source").and_then(Json::as_str) {
        None | Some("fresh") => Source::Fresh,
        Some("baseline") => Source::Baseline,
        Some(other) => return Err(format!("unknown source `{other}`")),
    };
    if source == Source::Baseline && matches!(kind, RuleKind::RatioMax(_) | RuleKind::RatioMin(_)) {
        return Err(
            "ratio rules always compare fresh against baseline; `source` is not applicable"
                .to_string(),
        );
    }
    let allow_missing = raw
        .get("allow_missing")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    Ok(Rule {
        artifact,
        metric,
        kind,
        source,
        allow_missing,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrap(rules: &str) -> String {
        format!("{{\"schema\": \"{CONTRACT_SCHEMA}\", \"rules\": [{rules}]}}")
    }

    #[test]
    fn parses_every_rule_kind() {
        let text = wrap(
            r#"
            {"artifact": "BENCH_training.json", "kind": "min", "metric": "cache_hit_rate",
             "value": 0.4, "reason": "warm cache must stay useful"},
            {"artifact": "BENCH_latency.json", "kind": "ratio_max",
             "metric": "strategies.ve_full.measured_median_visible_secs",
             "value": 1.3, "reason": "ve_full p50 visible latency, lower-is-better"},
            {"artifact": "BENCH_latency.json", "kind": "order_desc",
             "metrics": ["strategies.serial.m", "strategies.ve_partial.m", "strategies.ve_full.m"],
             "reason": "the headline ordering"},
            {"artifact": "BENCH_acquisition.json", "kind": "min", "source": "baseline",
             "metric": "hac_speedup_vs_seed", "value": 100.0, "allow_missing": true,
             "reason": "committed full-mode HAC claim"}
        "#,
        );
        let contract = parse_contract(&text).unwrap();
        assert_eq!(contract.rules.len(), 4);
        assert_eq!(contract.rules[0].kind, RuleKind::Min(0.4));
        assert_eq!(contract.rules[0].source, Source::Fresh);
        assert_eq!(contract.rules[3].source, Source::Baseline);
        assert!(contract.rules[3].allow_missing);
        assert!(matches!(contract.rules[2].kind, RuleKind::OrderDesc(ref m) if m.len() == 3));
        assert_eq!(
            contract.artifacts(),
            vec![
                "BENCH_acquisition.json",
                "BENCH_latency.json",
                "BENCH_training.json"
            ]
        );
    }

    #[test]
    fn rejects_rules_without_reasons_or_with_bad_kinds() {
        let no_reason = wrap(r#"{"artifact": "a.json", "kind": "min", "metric": "m", "value": 1}"#);
        assert!(parse_contract(&no_reason).unwrap_err().contains("reason"));
        let bad_kind = wrap(
            r#"{"artifact": "a.json", "kind": "approx", "metric": "m", "value": 1, "reason": "r"}"#,
        );
        assert!(parse_contract(&bad_kind).unwrap_err().contains("approx"));
        let ratio_baseline = wrap(
            r#"{"artifact": "a.json", "kind": "ratio_max", "metric": "m", "value": 1,
                "source": "baseline", "reason": "r"}"#,
        );
        assert!(parse_contract(&ratio_baseline).is_err());
        assert!(parse_contract("{\"schema\": \"wrong\", \"rules\": []}").is_err());
    }
}
