//! A lightweight, self-contained Rust lexer.
//!
//! `ve-lint` runs in an environment with no crate-registry access, so it
//! cannot lean on `syn`/`proc-macro2`. The rules only need a faithful token
//! stream — not a parse tree — and the hard part of tokenizing Rust is
//! exactly the part that breaks naive regex linters:
//!
//! * raw strings (`r"…"`, `r#"…"#`, arbitrarily many hashes) that may contain
//!   `//`, `unwrap()`, or anything else that must **not** be matched;
//! * nested block comments (`/* /* … */ */`);
//! * the `'a'` char-literal vs `'a` lifetime ambiguity;
//! * byte/raw-byte strings and raw identifiers (`r#fn`).
//!
//! Comments are kept as tokens (they carry the suppression annotations);
//! every other token records enough text and position for the rules to
//! pattern-match and report precise locations.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, with `r#` stripped).
    Ident,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// Character literal `'x'` (text includes the quotes).
    CharLit,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// Byte literal `b'x'`.
    ByteLit,
    /// Numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// `// …` line comment (text includes the slashes).
    LineComment,
    /// `/* … */` block comment, nesting already resolved.
    BlockComment,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(source: &str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eof(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `source`. The lexer is total: any input produces a token stream
/// (unterminated literals run to end of file rather than erroring), which is
/// the right trade-off for a linter that must never crash on the code it
/// checks.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor::new(source);
    let mut tokens = Vec::new();
    while !cur.eof() {
        let line = cur.line;
        let col = cur.col;
        let c = cur.peek(0).expect("not eof");
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            tokens.push(Token {
                kind: TokenKind::LineComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            loop {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            tokens.push(Token {
                kind: TokenKind::BlockComment,
                text,
                line,
                col,
            });
            continue;
        }
        // Raw strings / raw identifiers: r"…", r#"…"#, r#ident.
        if c == 'r' {
            let mut hashes = 0usize;
            while cur.peek(1 + hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(1 + hashes) == Some('"') {
                tokens.push(lex_raw_string(&mut cur, line, col, 0));
                continue;
            }
            if hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
                // Raw identifier r#name: strip the prefix, keep the name.
                cur.bump();
                cur.bump();
                tokens.push(lex_ident(&mut cur, line, col));
                continue;
            }
        }
        // Byte strings / byte chars: b"…", br#"…"#, b'x'.
        if c == 'b' {
            if cur.peek(1) == Some('"') {
                cur.bump(); // consume b; lex_plain_string sees the quote
                let mut t = lex_plain_string(&mut cur, line, col);
                t.text.insert(0, 'b');
                tokens.push(t);
                continue;
            }
            if cur.peek(1) == Some('r') {
                let mut hashes = 0usize;
                while cur.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if cur.peek(2 + hashes) == Some('"') {
                    tokens.push(lex_raw_string(&mut cur, line, col, 1));
                    continue;
                }
            }
            if cur.peek(1) == Some('\'') {
                cur.bump(); // b
                let mut t = lex_char_or_lifetime(&mut cur, line, col);
                t.kind = TokenKind::ByteLit;
                t.text.insert(0, 'b');
                tokens.push(t);
                continue;
            }
        }
        if is_ident_start(c) {
            tokens.push(lex_ident(&mut cur, line, col));
            continue;
        }
        if c == '"' {
            tokens.push(lex_plain_string(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            tokens.push(lex_char_or_lifetime(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            tokens.push(lex_number(&mut cur, line, col));
            continue;
        }
        // Everything else: single punctuation character.
        cur.bump();
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    tokens
}

fn lex_ident(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if !is_ident_continue(ch) {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line,
        col,
    }
}

fn lex_plain_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().expect("opening quote")); // "
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(ch);
        cur.bump();
        if ch == '"' {
            break;
        }
    }
    Token {
        kind: TokenKind::StrLit,
        text,
        line,
        col,
    }
}

/// Lexes `r##"…"##` (with `prefix_len` extra chars before the `r`, for `br`).
fn lex_raw_string(cur: &mut Cursor, line: u32, col: u32, prefix_len: usize) -> Token {
    let mut text = String::new();
    for _ in 0..=prefix_len {
        text.push(cur.bump().expect("raw string prefix"));
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push(cur.bump().expect("hash"));
    }
    text.push(cur.bump().expect("opening quote")); // "
    while let Some(ch) = cur.peek(0) {
        if ch == '"' {
            // Close only when followed by the right number of hashes.
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek(1 + i) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                text.push(cur.bump().expect("closing quote"));
                for _ in 0..hashes {
                    text.push(cur.bump().expect("closing hash"));
                }
                break;
            }
        }
        text.push(ch);
        cur.bump();
    }
    Token {
        kind: TokenKind::StrLit,
        text,
        line,
        col,
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime): after the quote, an
/// escape or a non-identifier char is always a char literal; an identifier
/// is a lifetime unless the very next char is a closing quote.
fn lex_char_or_lifetime(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().expect("quote")); // '
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape, then to the closing quote.
            text.push(cur.bump().expect("backslash"));
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            while let Some(ch) = cur.peek(0) {
                text.push(ch);
                cur.bump();
                if ch == '\'' {
                    break;
                }
            }
            Token {
                kind: TokenKind::CharLit,
                text,
                line,
                col,
            }
        }
        Some(ch) if is_ident_start(ch) => {
            if cur.peek(1) == Some('\'') {
                // 'a'
                text.push(cur.bump().expect("char"));
                text.push(cur.bump().expect("closing quote"));
                Token {
                    kind: TokenKind::CharLit,
                    text,
                    line,
                    col,
                }
            } else {
                // 'a / 'static / '_ — a lifetime; text is the name only.
                let mut name = String::new();
                while let Some(c2) = cur.peek(0) {
                    if !is_ident_continue(c2) {
                        break;
                    }
                    name.push(c2);
                    cur.bump();
                }
                Token {
                    kind: TokenKind::Lifetime,
                    text: name,
                    line,
                    col,
                }
            }
        }
        Some(_) => {
            // Non-identifier char literal like '.' or '€'.
            text.push(cur.bump().expect("char"));
            if cur.peek(0) == Some('\'') {
                text.push(cur.bump().expect("closing quote"));
            }
            Token {
                kind: TokenKind::CharLit,
                text,
                line,
                col,
            }
        }
        None => Token {
            kind: TokenKind::CharLit,
            text,
            line,
            col,
        },
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let hex = cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x') | Some('X'));
    loop {
        match cur.peek(0) {
            Some(ch) if is_ident_continue(ch) => {
                text.push(ch);
                cur.bump();
                // Decimal exponent sign: 1e-3 / 2.5E+7 (not in hex literals).
                if !hex
                    && (ch == 'e' || ch == 'E')
                    && matches!(cur.peek(0), Some('+') | Some('-'))
                    && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    text.push(cur.bump().expect("exponent sign"));
                }
            }
            Some('.') => {
                // `0..n` is a range and `1.max(2)` a method call — the dot
                // belongs to the number only when not followed by another
                // dot or an identifier.
                let next = cur.peek(1);
                if next == Some('.') || next.is_some_and(is_ident_start) {
                    break;
                }
                text.push('.');
                cur.bump();
            }
            _ => break,
        }
    }
    Token {
        kind: TokenKind::NumLit,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_hide_their_contents_from_the_rules() {
        // The classic regex-linter trap: a raw string containing what looks
        // like a comment, a suppression, and a panic site.
        let src = r####"let s = r#"// ve-lint: allow(x) -- nope .unwrap()"#;"####;
        let toks = lex(src);
        assert!(toks.iter().all(|t| !t.is_comment()));
        let lit = toks
            .iter()
            .find(|t| t.kind == TokenKind::StrLit)
            .expect("one string literal");
        assert!(lit.text.contains("unwrap"));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_strings_with_many_hashes_and_inner_quotes() {
        let src = r###"r##"a "quoted"# still inside"## + "plain""###;
        let toks: Vec<_> = kinds(src);
        let strings: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::StrLit)
            .collect();
        assert_eq!(strings.len(), 2);
        assert!(strings[0].1.contains("still inside"));
    }

    #[test]
    fn nested_block_comments_resolve() {
        let src = "/* outer /* inner .unwrap() */ tail */ code";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        assert!(toks[0].text.contains("tail"));
        assert!(toks[1].is_ident("code"));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("let c = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n'; let u = '_';");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.clone())
            .collect();
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\n'", "'_'"]);
        assert_eq!(lifetimes, vec!["a", "a"]);
    }

    #[test]
    fn static_lifetime_and_loop_labels() {
        let toks = kinds("&'static str; 'outer: loop { break 'outer; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["static", "outer", "outer"]);
    }

    #[test]
    fn numbers_ranges_and_method_calls() {
        let toks = kinds("0..n; 1.5e-3; 2.; 1.max(2); 0xFF; 1_000f64");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            vec!["0", "1.5e-3", "2.", "1", "2", "0xFF", "1_000f64"]
        );
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = lex(r##"b"bytes"; br#"raw bytes"#; b'x'; r#fn"##);
        assert_eq!(toks[0].kind, TokenKind::StrLit);
        assert!(toks[0].text.starts_with('b'));
        assert_eq!(toks[2].kind, TokenKind::StrLit);
        assert!(toks[4].kind == TokenKind::ByteLit);
        let last = toks.last().expect("raw ident");
        assert!(last.is_ident("fn"), "raw ident keeps its name: {last:?}");
    }

    #[test]
    fn line_comments_carry_text_and_positions() {
        let toks = lex("let x = 1; // ve-lint: allow(rule) -- reason\nnext");
        let comment = toks.iter().find(|t| t.is_comment()).expect("comment");
        assert!(comment.text.contains("ve-lint: allow(rule)"));
        assert_eq!(comment.line, 1);
        let next = toks.iter().find(|t| t.is_ident("next")).expect("next");
        assert_eq!(next.line, 2);
        assert_eq!(next.col, 1);
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let toks = lex(r#"let s = "a \" still inside // not a comment"; done"#);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert!(!toks.iter().any(|t| t.is_comment()));
    }
}
