//! `float-reduction-order`: ad-hoc floating-point reductions outside the
//! blessed `FeatureBlock` kernels.
//!
//! **Contract.** Float addition is not associative; the determinism
//! invariant ("bit-identical at any `compute_threads`") holds because every
//! hot-path reduction goes through `ve_ml::block`/`ve_ml::tensor`, whose
//! kernels pin chunk boundaries so chunking never changes per-element
//! results. A bare `.sum()`/`.fold(0.0, …)` elsewhere in a
//! determinism-critical crate is a reduction whose order is pinned only by
//! accident — the next refactor that parallelizes or re-buckets it (or feeds
//! it from a hash map) silently changes results.
//!
//! The rule makes float-ness *lexically provable*: in critical crates every
//! `.sum()`/`.product()` must carry a turbofish. Integer turbofishes pass
//! (integer addition is associative); float turbofishes and bare calls must
//! be in a blessed kernel file, annotated with why the order is fixed, or
//! baselined. `.fold(` is classified by its literal accumulator.

use crate::engine::{
    Finding, DETERMINISM_CRITICAL_CRATES, FLOAT_BLESSED_FILES, RULE_FLOAT_REDUCTION_ORDER,
};
use crate::lexer::TokenKind;
use crate::rules::method_call;
use crate::workspace::{SourceFile, WorkspaceModel};

const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Is this numeric literal a float? (`1.5`, `2.`, `1e-3`, `1f64` — but not
/// `0xE`, `1_000`, or `0usize`, whose suffix contains an `e`.)
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    if INT_TYPES.iter().any(|s| text.ends_with(s)) {
        return false;
    }
    text.contains('.')
        || text.contains('e')
        || text.contains('E')
        || text.ends_with("f32")
        || text.ends_with("f64")
}

pub fn check(ws: &WorkspaceModel) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !DETERMINISM_CRITICAL_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        if FLOAT_BLESSED_FILES.contains(&file.rel_path.as_str()) {
            continue;
        }
        for ci in 0..file.code.len() {
            check_sum_product(file, ci, &mut out);
            check_fold(file, ci, &mut out);
        }
    }
    out
}

fn push(out: &mut Vec<Finding>, file: &SourceFile, ci: usize, message: String) {
    let tok = file.ct(ci).expect("caller matched a token here");
    if file.is_test_line(tok.line) {
        return;
    }
    out.push(Finding::new(
        RULE_FLOAT_REDUCTION_ORDER,
        file,
        tok.line,
        tok.col,
        message,
    ));
}

/// `.sum()` / `.product()`, bare or with turbofish.
fn check_sum_product(file: &SourceFile, ci: usize, out: &mut Vec<Finding>) {
    for m in ["sum", "product"] {
        // Bare form: `.sum(`.
        if method_call(file, ci, m).is_some() {
            push(
                out,
                file,
                ci + 1,
                format!(
                    "untyped `.{m}()` in determinism-critical crate `{}`: add a `::<T>` \
                     turbofish so the element type is lexically checkable (integer \
                     reductions pass; float reductions belong in the blessed \
                     `FeatureBlock` kernels or need an annotation)",
                    file.crate_name
                ),
            );
            continue;
        }
        // Turbofish form: `.sum :: < T … > (`.
        if !(file.ct(ci).is_some_and(|t| t.is_punct('.'))
            && file.ct(ci + 1).is_some_and(|t| t.is_ident(m))
            && file.ct(ci + 2).is_some_and(|t| t.is_punct(':'))
            && file.ct(ci + 3).is_some_and(|t| t.is_punct(':'))
            && file.ct(ci + 4).is_some_and(|t| t.is_punct('<')))
        {
            continue;
        }
        // Scan the turbofish type for float vs integer idents.
        let mut j = ci + 5;
        let mut depth = 1i64;
        let mut float = false;
        let mut int = false;
        while let Some(t) = file.ct(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("f32") || t.is_ident("f64") {
                float = true;
            } else if t.kind == TokenKind::Ident && INT_TYPES.contains(&t.text.as_str()) {
                int = true;
            }
            j += 1;
        }
        if float {
            push(
                out,
                file,
                ci + 1,
                format!(
                    "float `.{m}::<…>()` outside the blessed `FeatureBlock` kernels in \
                     determinism-critical crate `{}`: reduction order is pinned only by \
                     accident — route through `ve_ml::block`/`ve_ml::tensor`, or annotate \
                     why the iteration order is fixed",
                    file.crate_name
                ),
            );
        } else if !int {
            push(
                out,
                file,
                ci + 1,
                format!(
                    "`.{m}::<…>()` with a non-primitive turbofish in determinism-critical \
                     crate `{}`: spell the element type (`usize`, `f64`, …) so the rule \
                     can classify it, or annotate",
                    file.crate_name
                ),
            );
        }
    }
}

/// `.fold(init, …)` classified by the literal accumulator.
fn check_fold(file: &SourceFile, ci: usize, out: &mut Vec<Finding>) {
    let Some(open) = method_call(file, ci, "fold") else {
        return;
    };
    let first = file.ct(open + 1);
    match first {
        Some(t) if t.kind == TokenKind::NumLit => {
            if is_float_literal(&t.text) {
                push(
                    out,
                    file,
                    ci + 1,
                    format!(
                        "float `.fold({}, …)` outside the blessed `FeatureBlock` kernels in \
                         determinism-critical crate `{}`: route the reduction through \
                         `ve_ml::block`/`ve_ml::tensor`, or annotate why the order is fixed",
                        t.text, file.crate_name
                    ),
                );
            }
            // Integer literal accumulator: associative, fine.
        }
        // `(0.0, 0)` tuple accumulators, variables, struct literals: the
        // rule cannot classify them lexically — require the author to say.
        _ => push(
            out,
            file,
            ci + 1,
            format!(
                "`.fold(…)` with a non-literal accumulator in determinism-critical crate \
                 `{}`: the rule cannot prove the accumulator is order-insensitive — use a \
                 literal, route through the blessed kernels, or annotate",
                file.crate_name
            ),
        ),
    }
}
