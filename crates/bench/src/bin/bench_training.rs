//! Iterated-session training + inference benchmark: writes
//! `BENCH_training.json`.
//!
//! Measures the amortized per-iteration cost of model training (`T_m`) plus
//! candidate-set inference over a long exploration session — the two
//! per-iteration costs that, before warm-started training and the
//! model-version-aware `ProbabilityCache`, scaled with *total* session labels
//! rather than with the per-iteration Δ. Three variants run the same
//! label-and-train schedule (train every [`TRAIN_CADENCE`]nd iteration, so
//! iterations between trains see an unchanged model version):
//!
//! * **baseline** — from-scratch training, probability cache disabled: what
//!   every iteration used to pay.
//! * **cached** — from-scratch training with the cache enabled. Selections
//!   must be **bit-identical** to the baseline (asserted before any timing
//!   is reported); only inference on cache hits gets cheaper.
//! * **warm** — warm-started training (`warm-start/v1` tolerance contract:
//!   fine-tune on Δ + bounded replay) plus the cache. Selections may differ
//!   from cold-start — the contract pins model *quality* instead, asserted
//!   against the baseline's held-out accuracy.
//!
//! The headline acceptance number: with warm + cache, the per-iteration
//! training+selection cost around iteration 50 stays within 1.5× of the cost
//! around iteration 5, while the baseline grows monotonically with the label
//! count.
//!
//! ```text
//! cargo run --release -p ve-bench --bin bench_training [-- --quick]
//! ```
//!
//! `--quick` runs fewer iterations and skips the flatness assertion (the
//! cache-hit-rate and bit-identity assertions always run; CI relies on the
//! emitted `cache_hit_rate` being positive).

use std::time::Instant;
use ve_al::AcquisitionKind;
use ve_bench::emit::{Artifact, Value};
use ve_features::{ExtractorId, FeatureSimulator};
use ve_storage::{LabelRecord, LabelStore, StorageManager};
use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle, TaskKind, TimeRange, VideoId};
use vocalexplore::alm::ActiveLearningManager;
use vocalexplore::config::{FeatureSelectionPolicy, SamplingPolicy, VocalExploreConfig};
use vocalexplore::feature_manager::FeatureManager;
use vocalexplore::model_manager::ModelManager;
use vocalexplore::WarmStartConfig;

const EXTRACTOR: ExtractorId = ExtractorId::Mvit;
const BUDGET: usize = 5;
const CLIP_LEN: f64 = 1.0;
const SEED_LABELS: usize = 30;
/// Train every 2nd iteration: alternate iterations see an unchanged model
/// version, which is where the probability cache serves hits.
const TRAIN_CADENCE: usize = 2;
/// Window width for the early/late amortized-cost medians.
const WINDOW: usize = 6;

struct Fixture {
    dataset: Dataset,
    fm: FeatureManager,
    config: VocalExploreConfig,
    windows: usize,
}

struct SessionResult {
    /// Per-iteration `t_train + t_select` in nanoseconds.
    iter_ns: Vec<f64>,
    picks: Vec<Vec<(VideoId, TimeRange)>>,
    cache: vocalexplore::ProbCacheStats,
    training: vocalexplore::TrainingStats,
    /// Top-1 accuracy of the final model on a fixed held-out probe set.
    accuracy: f64,
}

/// Builds an eager-covered fixture (every train video extracted) with the
/// requested cache/warm-start knobs.
fn fixture(prob_cache: bool, warm: bool) -> Fixture {
    let dataset = Dataset::scaled(DatasetName::Deer, 0.224, 17);
    let mut config = VocalExploreConfig::for_dataset(&dataset, 17)
        .with_sampling(SamplingPolicy::Fixed(AcquisitionKind::ClusterMargin))
        .with_feature_selection(FeatureSelectionPolicy::Fixed(EXTRACTOR))
        .with_extra_candidates(0)
        .with_prob_cache(prob_cache)
        .with_warm_start(WarmStartConfig {
            enabled: warm,
            replay_cap: 64,
        });
    config.train.epochs = 40;
    let fm = FeatureManager::new(
        FeatureSimulator::with_dim(
            DatasetName::Deer,
            config.num_classes,
            17,
            config.feature_dim,
        ),
        StorageManager::new(),
    );
    let mut windows = 0usize;
    for clip in dataset.train.videos() {
        fm.ensure_clip(EXTRACTOR, clip).unwrap();
        windows += clip.num_windows(CLIP_LEN);
    }
    Fixture {
        dataset,
        fm,
        config,
        windows,
    }
}

/// Runs one labeling session, timing `t_train + t_select` per iteration.
/// Every variant consumes the identical label schedule up front (seed labels,
/// oracle labels on its own picks) so cold variants stay bit-comparable.
fn run_session(fx: &Fixture, iterations: usize) -> SessionResult {
    let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
    let mut labels = LabelStore::new();
    for clip in fx.dataset.train.videos().iter().take(SEED_LABELS) {
        let range = TimeRange::new(0.0, CLIP_LEN);
        labels.add(LabelRecord {
            vid: clip.id,
            range,
            classes: oracle.label(&fx.dataset.train, clip.id, &range),
            iteration: 0,
        });
    }
    let mm = ModelManager::new(fx.config.clone());
    mm.train(
        EXTRACTOR,
        &fx.dataset.train,
        &fx.fm,
        labels.records(),
        0,
        None,
    )
    .unwrap();
    let mut alm = ActiveLearningManager::new(fx.config.clone());
    let mut iter_ns = Vec::with_capacity(iterations);
    let mut picks_log = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let start = Instant::now();
        if i % TRAIN_CADENCE == 1 {
            mm.train(
                EXTRACTOR,
                &fx.dataset.train,
                &fx.fm,
                labels.records(),
                i as u32,
                None,
            )
            .unwrap();
        }
        let (picks, _) = alm.select_segments(
            &fx.dataset.train,
            &fx.fm,
            &mm,
            &labels,
            BUDGET,
            CLIP_LEN,
            None,
        );
        iter_ns.push(start.elapsed().as_nanos() as f64);
        for &(vid, range) in &picks {
            labels.add(LabelRecord {
                vid,
                range,
                classes: oracle.label(&fx.dataset.train, vid, &range),
                iteration: i as u32,
            });
        }
        picks_log.push(picks);
    }
    // Held-out probe: a fixed window on 40 videos past the seed region.
    let probes: Vec<_> = fx
        .dataset
        .train
        .videos()
        .iter()
        .skip(100)
        .take(40)
        .collect();
    let correct = probes
        .iter()
        .filter(|clip| {
            let range = TimeRange::new(0.0, CLIP_LEN);
            let truth = oracle.label(&fx.dataset.train, clip.id, &range);
            let preds = mm
                .predict(EXTRACTOR, &fx.dataset.train, &fx.fm, clip.id, &range)
                .unwrap();
            preds.first().map(|p| p.class) == truth.first().copied()
        })
        .count();
    SessionResult {
        iter_ns,
        picks: picks_log,
        cache: alm.prob_cache_stats(),
        training: mm.training_stats(),
        accuracy: correct as f64 / probes.len() as f64,
    }
}

/// Median `t_train + t_select` over `WINDOW` iterations starting at `from`.
fn window_median(iter_ns: &[f64], from: usize) -> f64 {
    let to = (from + WINDOW).min(iter_ns.len());
    ve_stats::median(&iter_ns[from.min(to)..to])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iterations = if quick { 12 } else { 50 };
    // Early window straddles iteration 5 (index 4); the late window is the
    // session tail, ending at iteration 50 in the full run.
    let early_at = 2;
    let late_at = iterations - WINDOW;

    let fx_baseline = fixture(false, false);
    let pool_windows = fx_baseline.windows;
    let baseline = run_session(&fx_baseline, iterations);
    let cached = run_session(&fixture(true, false), iterations);
    let warm = run_session(&fixture(true, true), iterations);

    // Bit-identical contract: the cache must not change a single selection.
    assert_eq!(
        baseline.picks, cached.picks,
        "probability cache changed cold-model selections"
    );
    // A silently-dead cache fails the benchmark (and CI).
    let cache_total = cached.cache.hit_rows + cached.cache.miss_rows;
    assert!(cache_total > 0, "cache never consulted");
    let hit_rate = cached.cache.hit_rows as f64 / cache_total as f64;
    assert!(hit_rate > 0.0, "cache hit rate must be positive");
    // warm-start/v1: fine-tuning actually happened, with bounded quality
    // drift against the from-scratch baseline.
    assert!(warm.training.warm_trains > 0, "no warm update ran");
    assert!(
        warm.accuracy >= baseline.accuracy - 0.15,
        "warm accuracy {:.3} fell more than 0.15 below cold {:.3}",
        warm.accuracy,
        baseline.accuracy
    );

    let early_base = window_median(&baseline.iter_ns, early_at);
    let late_base = window_median(&baseline.iter_ns, late_at);
    let early_warm = window_median(&warm.iter_ns, early_at);
    let late_warm = window_median(&warm.iter_ns, late_at);
    let growth_base = late_base / early_base;
    let growth_warm = late_warm / early_warm;
    if !quick {
        // The headline acceptance bar: amortized per-iteration T_m +
        // inference stays flat under warm + cache while the from-scratch
        // baseline keeps growing with the label count.
        assert!(
            growth_warm <= 1.5,
            "warm+cache cost grew {growth_warm:.2}x from iteration 5 to {iterations}"
        );
        assert!(
            growth_base > growth_warm,
            "baseline growth {growth_base:.2}x should exceed warm growth {growth_warm:.2}x"
        );
    }

    let mean = |ns: &[f64]| ns.iter().sum::<f64>() / ns.len() as f64;
    for (name, s) in [
        ("baseline", &baseline),
        ("cached", &cached),
        ("warm", &warm),
    ] {
        eprintln!(
            "{name:>9}: mean {:>8.3} ms/iter, early {:>8.3} ms, late {:>8.3} ms, \
             accuracy {:.3}, cache {}h/{}m, trains {}c/{}w",
            mean(&s.iter_ns) / 1e6,
            window_median(&s.iter_ns, early_at) / 1e6,
            window_median(&s.iter_ns, late_at) / 1e6,
            s.accuracy,
            s.cache.hit_rows,
            s.cache.miss_rows,
            s.training.cold_trains,
            s.training.warm_trains,
        );
    }

    let variant_value = |s: &SessionResult| {
        Value::obj([
            ("mean_ns_per_iter", Value::f64(mean(&s.iter_ns), 0)),
            (
                "early_window_median_ns",
                Value::f64(window_median(&s.iter_ns, early_at), 0),
            ),
            (
                "late_window_median_ns",
                Value::f64(window_median(&s.iter_ns, late_at), 0),
            ),
            (
                "growth",
                Value::f64(
                    window_median(&s.iter_ns, late_at) / window_median(&s.iter_ns, early_at),
                    2,
                ),
            ),
            ("cache_hit_rows", Value::u64(s.cache.hit_rows)),
            ("cache_miss_rows", Value::u64(s.cache.miss_rows)),
            ("cold_trains", Value::u64(s.training.cold_trains)),
            ("warm_trains", Value::u64(s.training.warm_trains)),
            ("holdout_accuracy", Value::f64(s.accuracy, 4)),
        ])
    };
    Artifact::new("vocalexplore/bench_training/v1", quick)
        .field("budget", Value::usize(BUDGET))
        .field("iterations", Value::usize(iterations))
        .field("seed_labels", Value::usize(SEED_LABELS))
        .field("train_cadence", Value::usize(TRAIN_CADENCE))
        .field("pool_windows", Value::usize(pool_windows))
        .field(
            "determinism",
            Value::obj([
                (
                    "prob_cache",
                    Value::str("bit-identical (cached picks asserted equal to baseline)"),
                ),
                (
                    "warm_start",
                    Value::str("warm-start/v1 tolerance (holdout accuracy within 0.15 of cold)"),
                ),
            ]),
        )
        .field("cache_hit_rate", Value::f64(hit_rate, 4))
        .field("baseline_growth", Value::f64(growth_base, 2))
        .field("warm_cached_growth", Value::f64(growth_warm, 2))
        .field(
            "variants",
            Value::obj([
                ("baseline_cold_nocache", variant_value(&baseline)),
                ("cached_cold", variant_value(&cached)),
                ("warm_cached", variant_value(&warm)),
            ]),
        )
        .write("BENCH_training.json");
}
