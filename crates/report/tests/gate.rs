//! The sentinel gating contract, exercised the same way `ve-lint`'s
//! `repository_passes_its_own_gate` does: the checked-in contract and
//! artifacts must pass, and a perturbed artifact must fail **naming the
//! violated metric** — the property CI relies on.

use std::path::{Path, PathBuf};
use ve_report::{load_artifacts, parse_contract, Artifacts, Sentinel};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn load_repo() -> (ve_report::Contract, Artifacts) {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join("BENCH_contract.json"))
        .expect("checked-in BENCH_contract.json");
    let contract = parse_contract(&text).expect("contract parses");
    let artifacts = load_artifacts(&root, &contract).expect("committed artifacts parse");
    (contract, artifacts)
}

#[test]
fn repository_passes_its_own_gate() {
    let (contract, artifacts) = load_repo();
    // Self-check mode: fresh == baseline == the committed artifacts, every
    // ratio is exactly 1. This is what `ve-report --check` does from a clean
    // checkout, and it must be green.
    let report = Sentinel::new().check(&contract, &artifacts, &artifacts);
    assert!(
        report.is_clean(),
        "committed artifacts violate the committed contract:\n{}",
        report.render_human()
    );
    assert!(report.checked > 0, "the gate must actually check something");
}

#[test]
fn contract_references_every_committed_artifact_family() {
    let (contract, artifacts) = load_repo();
    for name in [
        "BENCH_acquisition.json",
        "BENCH_latency.json",
        "BENCH_obs.json",
        "BENCH_selection.json",
        "BENCH_training.json",
    ] {
        assert!(
            contract.artifacts().contains(&name.to_string()),
            "contract has no rule over {name}"
        );
        assert!(artifacts.contains_key(name), "{name} missing from repo");
    }
}

#[test]
fn perturbed_artifact_fails_naming_the_metric() {
    let (contract, artifacts) = load_repo();
    // Degrade the training cache to a 1% hit rate in the fresh set only.
    let mut fresh = artifacts.clone();
    let doc = std::fs::read_to_string(repo_root().join("BENCH_training.json")).unwrap();
    let rate = doc
        .lines()
        .find(|l| l.contains("\"cache_hit_rate\""))
        .expect("committed artifact carries cache_hit_rate");
    let perturbed = doc.replace(rate, "  \"cache_hit_rate\": 0.01,");
    fresh.insert(
        "BENCH_training.json".to_string(),
        ve_report::parse_json(&perturbed).unwrap(),
    );

    let report = Sentinel::new().check(&contract, &fresh, &artifacts);
    assert!(!report.is_clean(), "a collapsed cache must trip the gate");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.subject.contains("cache_hit_rate")),
        "the violation must name the metric:\n{}",
        report.render_human()
    );
}

#[test]
fn latency_regression_against_baseline_fails_the_ratio_rule() {
    let (contract, artifacts) = load_repo();
    let doc = std::fs::read_to_string(repo_root().join("BENCH_latency.json")).unwrap();
    // Multiply ve_full's measured median by 10 in the fresh set (string
    // surgery on the one line inside the ve_full section).
    let fresh_doc = ve_report::parse_json(&doc).unwrap();
    let committed = fresh_doc
        .path("strategies.ve_full.measured_median_visible_secs")
        .and_then(ve_report::Json::as_f64)
        .expect("committed ve_full median");
    let needle = format!("\"measured_median_visible_secs\": {committed:.3}");
    assert!(doc.contains(&needle), "artifact format drifted: {needle}");
    let perturbed = doc.replace(
        &needle,
        &format!("\"measured_median_visible_secs\": {:.3}", committed * 10.0),
    );
    let mut fresh = artifacts.clone();
    fresh.insert(
        "BENCH_latency.json".to_string(),
        ve_report::parse_json(&perturbed).unwrap(),
    );

    let report = Sentinel::new().check(&contract, &fresh, &artifacts);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.subject.contains("measured_median_visible_secs")
                && v.message.contains("baseline")),
        "a 10x visible-latency regression must trip the fresh/baseline ratio rule:\n{}",
        report.render_human()
    );
}

#[test]
fn missing_fresh_artifact_fails_the_gate() {
    let (contract, artifacts) = load_repo();
    let mut fresh = artifacts.clone();
    fresh.remove("BENCH_obs.json");
    let report = Sentinel::new().check(&contract, &fresh, &artifacts);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.artifact == "BENCH_obs.json" && v.message.contains("missing")),
        "a bench that stopped emitting its artifact must fail:\n{}",
        report.render_human()
    );
}
