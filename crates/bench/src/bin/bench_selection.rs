//! Iterated-session selection benchmark: writes `BENCH_selection.json`.
//!
//! Measures the amortized per-iteration cost of active-learning sample
//! selection (`T_s`) over a realistic exploration session — many small,
//! similar `Explore` steps against an eager-covered pool — comparing:
//!
//! * **incremental** — one persistent ALM whose `AcquisitionIndex` carries
//!   candidate rows, label masks, coreset coverage, and the cluster sketch
//!   across iterations (this is what the system runs); versus
//! * **from-scratch** — a fresh ALM constructed at every iteration, whose
//!   first selection rebuilds all of that state from the store snapshot
//!   (what every `Explore` call used to pay before the index existed).
//!
//! Both paths must produce identical pick sequences (asserted before any
//! timing is reported) — the benchmark doubles as a large-scale check of the
//! index determinism contract.
//!
//! ```text
//! cargo run --release -p ve-bench --bin bench_selection [-- --quick]
//! ```
//!
//! `--quick` runs the 2k-window pool only, with fewer iterations; skipped
//! entries are emitted as `null`.

use std::time::Instant;
use ve_al::AcquisitionKind;
use ve_bench::emit::{Artifact, Value};
use ve_features::{ExtractorId, FeatureSimulator};
use ve_storage::{LabelRecord, LabelStore, StorageManager};
use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle, TaskKind, TimeRange, VideoId};
use vocalexplore::alm::ActiveLearningManager;
use vocalexplore::config::{FeatureSelectionPolicy, SamplingPolicy, VocalExploreConfig};
use vocalexplore::feature_manager::FeatureManager;
use vocalexplore::model_manager::ModelManager;

const EXTRACTOR: ExtractorId = ExtractorId::Mvit;
const BUDGET: usize = 5;
const CLIP_LEN: f64 = 1.0;
const SEED_LABELS: usize = 30;

struct Pool {
    /// Human-readable label keyed into the JSON ("2000", "20000").
    name: &'static str,
    /// Source dataset (10-second clips, so ~10 one-second windows each).
    dataset: DatasetName,
    /// Corpus scale producing roughly `name` one-second windows.
    scale: f64,
}

struct SessionResult {
    windows: usize,
    mean_ns: f64,
    median_ns: f64,
    picks: Vec<Vec<(VideoId, TimeRange)>>,
}

struct Fixture {
    dataset: Dataset,
    fm: FeatureManager,
    mm: ModelManager,
    config: VocalExploreConfig,
    windows: usize,
}

/// Builds an eager-covered fixture: every train video extracted, a seed label
/// set collected, and one model trained (so Cluster-Margin pays real margin
/// computation).
fn fixture(pool: &Pool, kind: AcquisitionKind) -> Fixture {
    let dataset = Dataset::scaled(pool.dataset, pool.scale, 17);
    let mut config = VocalExploreConfig::for_dataset(&dataset, 17)
        .with_sampling(SamplingPolicy::Fixed(kind))
        .with_feature_selection(FeatureSelectionPolicy::Fixed(EXTRACTOR))
        .with_extra_candidates(0);
    config.train.epochs = 40;
    let fm = FeatureManager::new(
        FeatureSimulator::with_dim(pool.dataset, config.num_classes, 17, config.feature_dim),
        StorageManager::new(),
    );
    let mut windows = 0usize;
    for clip in dataset.train.videos() {
        fm.ensure_clip(EXTRACTOR, clip).unwrap();
        windows += clip.num_windows(CLIP_LEN);
    }
    let mm = ModelManager::new(config.clone());
    Fixture {
        dataset,
        fm,
        mm,
        config,
        windows,
    }
}

/// Seeds the label store with ground-truth labels on the first videos and
/// trains the model once, so both session variants start from identical
/// state.
fn seed_labels(fx: &Fixture, labels: &mut LabelStore) {
    let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
    for clip in fx.dataset.train.videos().iter().take(SEED_LABELS) {
        let range = TimeRange::new(0.0, CLIP_LEN);
        labels.add(LabelRecord {
            vid: clip.id,
            range,
            classes: oracle.label(&fx.dataset.train, clip.id, &range),
            iteration: 0,
        });
    }
    fx.mm
        .train(
            EXTRACTOR,
            &fx.dataset.train,
            &fx.fm,
            labels.records(),
            0,
            None,
        )
        .unwrap();
}

/// Runs one labeling session, timing only the selection calls.
/// `incremental = false` constructs a fresh ALM inside the timed region of
/// every iteration, so the from-scratch variant pays its index rebuild where
/// the old per-call assembly used to happen.
fn run_session(fx: &Fixture, iterations: usize, incremental: bool) -> SessionResult {
    let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
    let mut labels = LabelStore::new();
    seed_labels(fx, &mut labels);
    let mut alm = ActiveLearningManager::new(fx.config.clone());
    let mut times = Vec::with_capacity(iterations);
    let mut picks_log = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let start = Instant::now();
        let picks = if incremental {
            let (picks, _) = alm.select_segments(
                &fx.dataset.train,
                &fx.fm,
                &fx.mm,
                &labels,
                BUDGET,
                CLIP_LEN,
                None,
            );
            picks
        } else {
            let mut fresh = ActiveLearningManager::new(fx.config.clone());
            let (picks, _) = fresh.select_segments(
                &fx.dataset.train,
                &fx.fm,
                &fx.mm,
                &labels,
                BUDGET,
                CLIP_LEN,
                None,
            );
            picks
        };
        times.push(start.elapsed().as_nanos() as f64);
        for &(vid, range) in &picks {
            labels.add(LabelRecord {
                vid,
                range,
                classes: oracle.label(&fx.dataset.train, vid, &range),
                iteration: 0,
            });
        }
        picks_log.push(picks);
    }
    SessionResult {
        windows: fx.windows,
        mean_ns: times.iter().sum::<f64>() / times.len() as f64,
        median_ns: ve_stats::median(&times),
        picks: picks_log,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pools: &[Pool] = if quick {
        &[Pool {
            name: "2000",
            dataset: DatasetName::Deer,
            scale: 0.224,
        }]
    } else {
        &[
            Pool {
                name: "2000",
                dataset: DatasetName::Deer,
                scale: 0.224,
            },
            // Deer tops out below 9k windows, so the 20k pool comes from the
            // K20-sized corpus (13,326 videos at full scale).
            Pool {
                name: "20000",
                dataset: DatasetName::K20,
                scale: 0.15,
            },
        ]
    };
    let iterations = if quick { 12 } else { 50 };
    let kinds = [
        ("coreset", AcquisitionKind::Coreset),
        ("cluster_margin", AcquisitionKind::ClusterMargin),
    ];

    // entry[(pool, kind)] = (windows, from_scratch_mean, incremental_mean,
    //                        from_scratch_median, incremental_median)
    let mut entries: Vec<(String, String, usize, f64, f64, f64, f64)> = Vec::new();
    for pool in pools {
        for (kind_name, kind) in kinds {
            let fx = fixture(pool, kind);
            let incremental = run_session(&fx, iterations, true);
            let scratch = run_session(&fx, iterations, false);
            assert_eq!(
                incremental.picks, scratch.picks,
                "incremental and from-scratch selections diverged \
                 (pool {}, {kind_name})",
                pool.name
            );
            eprintln!(
                "pool {:>6} ({} windows) {kind_name:>14}: from-scratch {:>10.3} ms/iter, \
                 incremental {:>8.3} ms/iter, speedup {:>5.1}x",
                pool.name,
                incremental.windows,
                scratch.mean_ns / 1e6,
                incremental.mean_ns / 1e6,
                scratch.mean_ns / incremental.mean_ns,
            );
            entries.push((
                pool.name.to_string(),
                kind_name.to_string(),
                incremental.windows,
                scratch.mean_ns,
                incremental.mean_ns,
                scratch.median_ns,
                incremental.median_ns,
            ));
        }
    }

    let lookup = |pool: &str, kind: &str| {
        entries
            .iter()
            .find(|(p, k, ..)| p == pool && k == kind)
            .cloned()
    };
    let pools_value = Value::obj(["2000", "20000"].map(|pool| {
        (
            pool,
            Value::obj(["coreset", "cluster_margin"].map(|kind| {
                let entry = lookup(pool, kind);
                let e = entry.as_ref();
                (
                    kind,
                    Value::obj([
                        ("windows", e.map_or(Value::Null, |e| Value::usize(e.2))),
                        (
                            "from_scratch_mean_ns_per_iter",
                            Value::opt_f64(e.map(|e| e.3), 0),
                        ),
                        (
                            "incremental_mean_ns_per_iter",
                            Value::opt_f64(e.map(|e| e.4), 0),
                        ),
                        (
                            "from_scratch_median_ns_per_iter",
                            Value::opt_f64(e.map(|e| e.5), 0),
                        ),
                        (
                            "incremental_median_ns_per_iter",
                            Value::opt_f64(e.map(|e| e.6), 0),
                        ),
                        ("speedup", Value::opt_f64(e.map(|e| e.3 / e.4), 1)),
                    ]),
                )
            })),
        )
    }));

    Artifact::new("vocalexplore/bench_selection/v1", quick)
        .field("budget", Value::usize(BUDGET))
        .field("iterations", Value::usize(iterations))
        .field("seed_labels", Value::usize(SEED_LABELS))
        .field("pools", pools_value)
        .write("BENCH_selection.json");
}
