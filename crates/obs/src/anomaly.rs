//! Anomaly annotator over the timing plane: flags per-phase outliers and
//! queue-wait spikes against session medians, and renders every finding as
//! a Chrome-trace `instant` event so Perfetto shows *where* an iteration
//! blew its budget.
//!
//! All thresholds use integer math only (factor × median comparisons over
//! microsecond counts), so the *classification* of a given timing set is
//! deterministic — only the timings themselves are wall-clock products.
//! Retry storms are detected by the session layer from the deterministic
//! event plane (attempt counts, not durations) and reported through the
//! same [`Anomaly`] type.

use crate::timing::{PhaseTiming, QueueClass, TaskTiming};
use crate::trace::ChromeTrace;
use std::collections::BTreeMap;

/// Trace category shared by all anomaly instant events.
pub const ANOMALY_CAT: &str = "anomaly";

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// A session phase ran more than `factor ×` its session median.
    PhaseOutlier,
    /// A task waited in queue more than `factor ×` its class median.
    QueueWaitSpike,
    /// One iteration re-ran a task at least `retry_storm_attempts` times.
    RetryStorm,
}

impl AnomalyKind {
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyKind::PhaseOutlier => "phase_outlier",
            AnomalyKind::QueueWaitSpike => "queue_wait_spike",
            AnomalyKind::RetryStorm => "retry_storm",
        }
    }
}

/// One detected anomaly, carrying enough context to annotate a trace track
/// and to print a report line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    pub kind: AnomalyKind,
    /// What misbehaved: a phase name, task kind, or extractor label.
    pub label: String,
    pub iteration: u32,
    /// Observed magnitude: µs for timing anomalies, attempts for storms.
    pub observed: u64,
    /// What it was compared against: the session median (µs) or the storm
    /// threshold (attempts).
    pub baseline: u64,
    /// Trace track to annotate.
    pub pid: u64,
    pub tid: u64,
    /// Where on the track the instant marker lands.
    pub ts_us: u64,
}

impl Anomaly {
    /// `observed / baseline` scaled by 100 (integer): 412 = 4.12×.
    pub fn factor_x100(&self) -> u64 {
        self.observed
            .saturating_mul(100)
            .checked_div(self.baseline)
            .unwrap_or(0)
    }

    /// Event name for the trace and report, e.g. `anomaly:phase_outlier:select`.
    pub fn name(&self) -> String {
        format!("anomaly:{}:{}", self.kind.label(), self.label)
    }
}

/// Detection thresholds. Defaults flag a phase or queue wait above 4× its
/// session median (and above a 1 ms floor, so near-zero medians don't turn
/// every tick into a spike), and call two re-runs in one iteration a storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyConfig {
    /// Outlier when `observed > outlier_factor × median`.
    pub outlier_factor: u64,
    /// Timing observations below this floor (µs) are never anomalous.
    pub min_observed_us: u64,
    /// Re-run attempts within one iteration that constitute a storm.
    pub retry_storm_attempts: u64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            outlier_factor: 4,
            min_observed_us: 1000,
            retry_storm_attempts: 2,
        }
    }
}

/// Lower-bias integer median of an unsorted slice (`v[len/2]` after sort);
/// 0 for an empty slice.
fn median(values: &mut [u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[values.len() / 2]
}

/// Scans the timing plane for per-phase outliers and queue-wait spikes.
/// Results are ordered by `(ts_us, kind, label)` so the annotated trace is
/// stable for a given timing set.
pub fn detect_timing_anomalies(
    tasks: &[TaskTiming],
    phases: &[PhaseTiming],
    cfg: &AnomalyConfig,
) -> Vec<Anomaly> {
    let mut out = Vec::new();

    // Per-phase medians across the session (select#1..select#N, …).
    let mut by_phase: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for p in phases {
        by_phase.entry(p.phase).or_default().push(p.dur_us);
    }
    let phase_median: BTreeMap<&'static str, u64> = by_phase
        .into_iter()
        .map(|(k, mut v)| (k, median(&mut v)))
        .collect();
    for p in phases {
        let med = phase_median[p.phase];
        if p.dur_us >= cfg.min_observed_us && p.dur_us > cfg.outlier_factor.saturating_mul(med) {
            out.push(Anomaly {
                kind: AnomalyKind::PhaseOutlier,
                label: p.phase.to_string(),
                iteration: p.iteration,
                observed: p.dur_us,
                baseline: med,
                pid: 0,
                tid: 0, // session track
                ts_us: p.start_us,
            });
        }
    }

    // Queue-wait medians per queue class: Background tasks legitimately
    // wait behind Critical work, so each class gets its own baseline.
    let mut by_class: [Vec<u64>; QueueClass::ALL.len()] = Default::default();
    for t in tasks {
        by_class[t.class.index()].push(t.queue_wait_us());
    }
    let class_median: Vec<u64> = by_class.iter_mut().map(|v| median(v)).collect();
    for t in tasks {
        let wait = t.queue_wait_us();
        let med = class_median[t.class.index()];
        if wait >= cfg.min_observed_us && wait > cfg.outlier_factor.saturating_mul(med) {
            out.push(Anomaly {
                kind: AnomalyKind::QueueWaitSpike,
                label: format!("{}:{}", t.class.label(), t.label.kind),
                iteration: t.label.iteration,
                observed: wait,
                baseline: med,
                pid: 0,
                tid: 1 + t.worker as u64, // the worker track that ran it
                ts_us: t.start_us,        // the moment the wait ended
            });
        }
    }

    out.sort_by(|a, b| {
        (a.ts_us, a.kind, &a.label, a.iteration).cmp(&(b.ts_us, b.kind, &b.label, b.iteration))
    });
    out
}

/// Drops one `instant` marker per anomaly onto its trace track.
pub fn annotate_trace(trace: &mut ChromeTrace, anomalies: &[Anomaly]) {
    for a in anomalies {
        trace.add_instant(
            &a.name(),
            ANOMALY_CAT,
            a.pid,
            a.tid,
            a.ts_us,
            vec![
                ("iteration".to_string(), a.iteration.to_string()),
                ("observed".to_string(), a.observed.to_string()),
                ("baseline".to_string(), a.baseline.to_string()),
                ("factor_x100".to_string(), a.factor_x100().to_string()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TaskLabel;

    fn phase(name: &'static str, iteration: u32, start_us: u64, dur_us: u64) -> PhaseTiming {
        PhaseTiming {
            phase: name,
            iteration,
            start_us,
            dur_us,
        }
    }

    fn task(kind: &'static str, iteration: u32, submit_us: u64, start_us: u64) -> TaskTiming {
        TaskTiming {
            span: 1,
            label: TaskLabel::new(kind, iteration),
            class: QueueClass::Normal,
            worker: 2,
            submit_us,
            start_us,
            end_us: start_us + 10,
        }
    }

    #[test]
    fn phase_outlier_beyond_factor_times_median_is_flagged() {
        let phases: Vec<PhaseTiming> = (1..=5)
            .map(|i| phase("select", i, i as u64 * 100_000, 5_000))
            .chain([phase("select", 6, 600_000, 56_000)])
            .collect();
        let found = detect_timing_anomalies(&[], &phases, &AnomalyConfig::default());
        assert_eq!(found.len(), 1);
        let a = &found[0];
        assert_eq!(a.kind, AnomalyKind::PhaseOutlier);
        assert_eq!(a.label, "select");
        assert_eq!(a.iteration, 6);
        assert_eq!(a.observed, 56_000);
        assert_eq!(a.baseline, 5_000);
        assert_eq!(a.factor_x100(), 1120);
        assert_eq!((a.pid, a.tid), (0, 0));
    }

    #[test]
    fn small_absolute_values_are_never_anomalous() {
        // Median 2 µs, outlier 20 µs = 10× — but below the 1 ms floor.
        let phases = vec![
            phase("think", 1, 0, 2),
            phase("think", 2, 10, 2),
            phase("think", 3, 20, 20),
        ];
        let found = detect_timing_anomalies(&[], &phases, &AnomalyConfig::default());
        assert!(found.is_empty());
    }

    #[test]
    fn queue_wait_spike_uses_per_class_median_and_worker_track() {
        let mut tasks: Vec<TaskTiming> = (0..5)
            .map(|i| task("train", i, 100 * i as u64, 100 * i as u64 + 500))
            .collect();
        tasks.push(task("train", 5, 1000, 1000 + 9_000)); // 9 ms wait vs 500 µs median
        let found = detect_timing_anomalies(&tasks, &[], &AnomalyConfig::default());
        assert_eq!(found.len(), 1);
        let a = &found[0];
        assert_eq!(a.kind, AnomalyKind::QueueWaitSpike);
        assert_eq!(a.label, "normal:train");
        assert_eq!(a.observed, 9_000);
        assert_eq!(a.baseline, 500);
        assert_eq!(a.tid, 3); // worker 2
    }

    #[test]
    fn annotate_trace_emits_validating_instants() {
        let phases = vec![
            phase("spill", 1, 0, 2_000),
            phase("spill", 2, 10_000, 2_000),
            phase("spill", 3, 20_000, 30_000),
        ];
        let found = detect_timing_anomalies(&[], &phases, &AnomalyConfig::default());
        assert_eq!(found.len(), 1);
        let mut trace = ChromeTrace::new();
        for p in &phases {
            trace.add_phase(p);
        }
        annotate_trace(&mut trace, &found);
        let stats = trace.validate(&["spill"]).unwrap();
        assert_eq!(stats.instants, 1);
        assert!(trace.render_json().contains("anomaly:phase_outlier:spill"));
    }

    #[test]
    fn detection_is_a_pure_function_of_the_timing_set() {
        let phases = vec![
            phase("select", 1, 0, 5_000),
            phase("select", 2, 10_000, 5_000),
            phase("select", 3, 20_000, 56_000),
        ];
        let tasks = vec![task("infer", 1, 0, 40), task("infer", 2, 50, 5_100)];
        let a = detect_timing_anomalies(&tasks, &phases, &AnomalyConfig::default());
        let b = detect_timing_anomalies(&tasks, &phases, &AnomalyConfig::default());
        assert_eq!(a, b);
    }
}
