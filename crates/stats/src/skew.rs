//! The skew detector used by `VE-sample` (Section 3.1.2).
//!
//! The ALM tracks per-class label counts as the user labels video segments.
//! After each batch it asks the detector whether the observed distribution is
//! sufficiently skewed to justify switching to an active-learning acquisition
//! function. Two tests are supported:
//!
//! * [`SkewTest::AndersonDarling`] — compare the observed label histogram to a
//!   uniform baseline with the k-sample Anderson–Darling test and switch when
//!   `p <= alpha` (paper default `alpha = 0.001`).
//! * [`SkewTest::Frequency`] — the Appendix-A binomial bound with threshold
//!   `m`; more conservative for slight imbalances.

use crate::anderson_darling::k_sample_anderson_darling;
use crate::freq_test::frequency_test_p_value;

/// Which statistical test the detector applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkewTest {
    /// k-sample Anderson–Darling test against a uniform baseline.
    AndersonDarling {
        /// Significance level (paper default 0.001).
        alpha: f64,
    },
    /// Frequency-based binomial test from Appendix A.
    Frequency {
        /// Multiplicative threshold `m >= 1`.
        m: f64,
        /// Significance level.
        alpha: f64,
    },
}

impl Default for SkewTest {
    fn default() -> Self {
        SkewTest::AndersonDarling { alpha: 0.001 }
    }
}

/// Stateful skew detector holding the configured test.
///
/// Once the detector has fired it stays latched: the paper's `VE-sample`
/// never switches back from active learning to random sampling within a
/// session.
#[derive(Debug, Clone)]
pub struct SkewDetector {
    test: SkewTest,
    latched: bool,
    /// Minimum number of labels before the detector will even evaluate the
    /// test; with a handful of labels the distribution is pure noise.
    min_labels: usize,
}

impl Default for SkewDetector {
    fn default() -> Self {
        Self::new(SkewTest::default())
    }
}

impl SkewDetector {
    /// Creates a detector with the given test and a minimum of 10 labels
    /// before evaluation (matching the prototype's warm-up behaviour).
    pub fn new(test: SkewTest) -> Self {
        Self {
            test,
            latched: false,
            min_labels: 10,
        }
    }

    /// Overrides the warm-up threshold.
    pub fn with_min_labels(mut self, min_labels: usize) -> Self {
        self.min_labels = min_labels;
        self
    }

    /// The configured test.
    pub fn test(&self) -> SkewTest {
        self.test
    }

    /// Whether the detector has already fired in this session.
    pub fn is_latched(&self) -> bool {
        self.latched
    }

    /// Computes the p-value of the configured test on per-class counts,
    /// without latching.
    pub fn p_value(&self, counts: &[u64]) -> f64 {
        let n: u64 = counts.iter().sum();
        if counts.len() < 2 || n == 0 {
            return 1.0;
        }
        match self.test {
            SkewTest::AndersonDarling { .. } => {
                // Expand the histogram into per-observation class indices and
                // compare against a uniform baseline with the same total.
                let observed: Vec<f64> = counts
                    .iter()
                    .enumerate()
                    .flat_map(|(class, &c)| std::iter::repeat_n(class as f64, c as usize))
                    .collect();
                let k = counts.len();
                let per_class = ((n as usize) / k).max(1);
                let uniform: Vec<f64> = (0..k)
                    .flat_map(|class| std::iter::repeat_n(class as f64, per_class))
                    .collect();
                if observed.is_empty() || uniform.is_empty() {
                    return 1.0;
                }
                // Degenerate case: every observation in one class and a
                // single-class baseline would make the pooled sample constant.
                let distinct_observed = counts.iter().filter(|&&c| c > 0).count();
                if distinct_observed < 1 {
                    return 1.0;
                }
                k_sample_anderson_darling(&[observed, uniform]).p_value
            }
            SkewTest::Frequency { m, .. } => frequency_test_p_value(counts, m),
        }
    }

    /// Evaluates the detector on the current per-class counts and returns
    /// whether the distribution is considered skewed. Latches on the first
    /// positive result.
    pub fn observe(&mut self, counts: &[u64]) -> bool {
        if self.latched {
            return true;
        }
        let n: u64 = counts.iter().sum();
        if (n as usize) < self.min_labels {
            return false;
        }
        let alpha = match self.test {
            SkewTest::AndersonDarling { alpha } => alpha,
            SkewTest::Frequency { alpha, .. } => alpha,
        };
        if self.p_value(counts) <= alpha {
            self.latched = true;
        }
        self.latched
    }

    /// Resets the latch (used by tests and by sessions that restart
    /// exploration from scratch).
    pub fn reset(&mut self) {
        self.latched = false;
    }
}

/// Label-diversity metric `S_max` from Section 3.1: the fraction of labels
/// that come from the single most-seen activity. Lower is more diverse.
/// Returns 0 when no labels have been collected.
pub fn s_max(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    max as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_does_not_fire_before_min_labels() {
        let mut d = SkewDetector::default();
        assert!(!d.observe(&[5, 0, 0, 0]));
        assert!(!d.is_latched());
    }

    #[test]
    fn detector_fires_on_heavy_skew() {
        let mut d = SkewDetector::default();
        // Deer-like: dominated by "bedded".
        assert!(d.observe(&[80, 3, 2, 2, 1, 1, 0, 0, 0]));
        assert!(d.is_latched());
    }

    #[test]
    fn detector_does_not_fire_on_uniform_counts() {
        let mut d = SkewDetector::default();
        assert!(!d.observe(&[12, 11, 13, 12, 12]));
    }

    #[test]
    fn detector_latches() {
        let mut d = SkewDetector::default();
        assert!(d.observe(&[200, 2, 2, 2]));
        // Even if later counts look uniform, the detector stays latched.
        assert!(d.observe(&[10, 10, 10, 10]));
    }

    #[test]
    fn reset_clears_latch() {
        let mut d = SkewDetector::default();
        assert!(d.observe(&[200, 2, 2, 2]));
        d.reset();
        assert!(!d.is_latched());
        assert!(!d.observe(&[10, 10, 10, 10]));
    }

    #[test]
    fn frequency_detector_is_more_conservative_on_slight_imbalance() {
        // For a moderate imbalance with many labels the AD p-value collapses
        // to its 0.001 floor, while the frequency test with m = 1.5 does not
        // treat a 56/44 split as imbalanced at all — the property Section 3.1
        // highlights ("will not detect this as skewed even in the limit of
        // infinite labels").
        let counts = [5_600u64, 4_400];
        let ad = SkewDetector::new(SkewTest::AndersonDarling { alpha: 0.001 });
        let freq = SkewDetector::new(SkewTest::Frequency {
            m: 1.5,
            alpha: 0.001,
        });
        assert!(ad.p_value(&counts) <= 0.001);
        assert!(freq.p_value(&counts) > 0.5);
    }

    #[test]
    fn p_value_handles_single_class_vocabulary() {
        let d = SkewDetector::default();
        assert_eq!(d.p_value(&[42]), 1.0);
        assert_eq!(d.p_value(&[]), 1.0);
        assert_eq!(d.p_value(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn s_max_basic_properties() {
        assert_eq!(s_max(&[]), 0.0);
        assert_eq!(s_max(&[0, 0]), 0.0);
        assert!((s_max(&[10, 10, 10, 10]) - 0.25).abs() < 1e-12);
        assert!((s_max(&[90, 5, 5]) - 0.9).abs() < 1e-12);
        // S_max is always within [1/k, 1] when there is at least one label.
        let counts = [7u64, 3, 2, 1];
        let v = s_max(&counts);
        assert!(v >= 1.0 / counts.len() as f64 && v <= 1.0);
    }
}
