//! The experiment harness: oracle-driven labeling sessions with per-iteration
//! F1 measurement and visible-latency accounting.
//!
//! Every figure and table in the paper's evaluation (Section 5) is produced
//! by running labeling sessions of the same shape: `Explore(B = 5, t = 1 s)`
//! is called repeatedly, an oracle user labels the returned segments (taking
//! `T_user = 10 s` each), and after every iteration the macro F1 of a model
//! trained on the labels so far is measured on a held-out evaluation set.
//! [`SessionRunner`] implements that loop on top of [`crate::VocalExplore`],
//! adds the latency accounting of Section 4 (Serial / `VE-partial` /
//! `VE-full`), and records one [`IterationRecord`] per step.

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use crate::alm::SelectionStats;
use crate::config::{PreprocessPolicy, VocalExploreConfig};
use crate::degradation::Degradation;
use crate::model_manager::FittedModel;
use crate::observability::SessionEvent;
use crate::system::VocalExplore;
use std::collections::HashMap;
use std::sync::Arc;
use ve_al::AcquisitionKind;
use ve_features::ExtractorId;
use ve_ml::Classifier;
use ve_sched::{iteration_latency, IterationCosts, IterationLatency, SchedulerStrategy};
use ve_stats::s_max;
use ve_storage::LabelRecord;
use ve_vidsim::{
    Dataset, DatasetName, GroundTruthOracle, NoisyOracle, Oracle, TaskKind, TimeRange, VideoId,
};

/// The extra candidate videos (`X`) an `Explore` call extracted beyond the
/// batch itself: everything the selection expanded the pool by, minus the
/// batch videos that were themselves uncovered. Shared by the synchronous
/// harness and the async session engine so both account extraction work
/// identically (and deterministically — no float deltas involved).
pub fn extra_candidate_count(stats: &SelectionStats, videos_needing_extraction: usize) -> usize {
    stats
        .videos_extracted_for_call
        .saturating_sub(videos_needing_extraction)
}

/// Builds the analytic per-iteration cost vector (Section 4's `T_*` terms)
/// from what an `Explore` call actually did. Shared by [`SessionRunner`] and
/// the async engine's modeled-vs-measured comparison.
#[allow(clippy::too_many_arguments)]
pub fn observed_iteration_costs(
    cfg: &VocalExploreConfig,
    batch_size: usize,
    per_video_extract: f64,
    videos_needing_extraction: usize,
    extra_candidates: usize,
    labels_total: usize,
    features_under_evaluation: usize,
) -> IterationCosts {
    IterationCosts {
        batch_size,
        t_select: cfg.costs.select_secs,
        t_extract: per_video_extract,
        videos_needing_extraction,
        extra_candidates,
        t_infer: cfg.costs.infer_secs,
        t_train: cfg.costs.train_secs(labels_total),
        t_eval: cfg.costs.eval_secs,
        features_under_evaluation,
        t_user: cfg.t_user,
    }
}

/// Gathers the analytic cost vector for one *completed* `Explore` call: the
/// extraction it performed (batch videos missing from the pool snapshot plus
/// the selection's extra candidates), the per-video extraction estimate for
/// the now-current extractor, and the number of features still under
/// evaluation. `pool_before` must be the snapshot the synchronous path takes
/// at `Explore` time — before the call's deferred CV/training work extracts
/// anything. Shared by [`SessionRunner`] and the async engine so the two
/// paths can never drift in how they account an iteration.
pub fn iteration_costs_for_call(
    system: &VocalExplore,
    dataset: &Dataset,
    batch_size: usize,
    pool_before: &std::collections::HashSet<VideoId>,
    batch_videos: &std::collections::HashSet<VideoId>,
    stats: &SelectionStats,
) -> IterationCosts {
    let current = system.current_extractor();
    let per_video_extract = dataset
        .train
        .videos()
        .first()
        .map(|clip| system.feature_manager().extraction_cost(current, clip))
        .unwrap_or(0.25);
    // ve-lint: allow(nondeterministic-iteration) -- counting matching elements; the count is order-insensitive
    let videos_needing_extraction = batch_videos
        .iter()
        .filter(|vid| !pool_before.contains(vid))
        .count();
    observed_iteration_costs(
        system.config(),
        batch_size,
        per_video_extract,
        videos_needing_extraction,
        extra_candidate_count(stats, videos_needing_extraction),
        system.label_count(),
        if system.alm().selected_extractor().is_some() {
            0
        } else {
            system.alm().active_extractors().len()
        },
    )
}

/// Number of videos the `VE-full` labeling window can cover with eager
/// `T_f⁻` extraction: the window time left after the queued background work,
/// divided by the per-video cost across all surviving candidate features,
/// capped at the prototype's 50-video guardrail. Shared by the synchronous
/// harness and the async engine so both grow the covered set identically.
pub fn eager_video_budget(
    latency: &IterationLatency,
    per_video_extract: f64,
    candidate_features: usize,
) -> usize {
    let budget_secs = (latency.labeling_secs - latency.background_secs).max(0.0);
    let per_video_all = per_video_extract * candidate_features.max(1) as f64;
    let videos = (budget_secs / per_video_all.max(1e-9)).floor() as usize;
    videos.min(50)
}

/// Configuration of one labeling session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Dataset to generate.
    pub dataset: DatasetName,
    /// Fraction of the paper's corpus size to generate (1.0 = full size).
    pub scale: f64,
    /// RNG seed (corpus generation, sampling, simulation).
    pub seed: u64,
    /// Number of `Explore` iterations to run.
    pub iterations: usize,
    /// Segments labeled per iteration (`B`).
    pub batch_size: usize,
    /// Segment duration in seconds (`t`).
    pub clip_len: f64,
    /// Fraction of oracle labels randomly corrupted (Figure 9 uses 0.05,
    /// 0.10, 0.20).
    pub label_noise: f64,
    /// Evaluate macro F1 on the held-out set every `eval_every` iterations
    /// (1 = every iteration).
    pub eval_every: usize,
    /// Class every `Explore` call targets (`Explore(label = a)`), routing
    /// selection through the rare-class uncertainty sampler. `None` (the
    /// default) runs untargeted exploration.
    pub target_label: Option<ve_vidsim::ClassId>,
    /// The system configuration (sampling policy, feature policy, strategy,
    /// cost model, ...).
    pub system: VocalExploreConfig,
}

impl SessionConfig {
    /// A session with the paper's defaults (`B = 5`, `t = 1 s`, 100
    /// iterations, no label noise) at the given corpus scale.
    pub fn new(dataset: DatasetName, scale: f64, seed: u64) -> Self {
        let spec = ve_vidsim::DatasetSpec::paper(dataset);
        let system = VocalExploreConfig::new(dataset, spec.num_classes, spec.task, seed);
        Self {
            dataset,
            scale,
            seed,
            iterations: 100,
            batch_size: 5,
            clip_len: 1.0,
            label_noise: 0.0,
            eval_every: 1,
            target_label: None,
            system,
        }
    }

    /// Targets every `Explore` call at one class (uncertainty sampling).
    pub fn with_target_label(mut self, class: ve_vidsim::ClassId) -> Self {
        self.target_label = Some(class);
        self
    }

    /// Overrides the number of iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Overrides the label-noise fraction.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.label_noise = noise;
        self
    }

    /// Overrides the evaluation cadence.
    pub fn with_eval_every(mut self, eval_every: usize) -> Self {
        self.eval_every = eval_every.max(1);
        self
    }

    /// Replaces the system configuration (keeping dataset characteristics).
    pub fn with_system(mut self, system: VocalExploreConfig) -> Self {
        self.system = system;
        self
    }
}

/// One row of a session trace.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Total labels collected after this iteration.
    pub labels_total: usize,
    /// Acquisition function that produced this iteration's batch.
    pub acquisition: AcquisitionKind,
    /// Number of candidate extractors still alive after this iteration.
    pub active_extractors: usize,
    /// The extractor selection, once the bandit has converged.
    pub selected_extractor: Option<ExtractorId>,
    /// The extractor used for predictions this iteration.
    pub current_extractor: ExtractorId,
    /// Label-diversity metric `S_max` (fraction of labels from the most-seen
    /// class; lower is more diverse).
    pub s_max: f64,
    /// Macro F1 on the held-out evaluation set (when evaluated this
    /// iteration).
    pub macro_f1: Option<f64>,
    /// Visible latency of this iteration (seconds).
    pub visible_latency_secs: f64,
    /// Cumulative visible latency including preprocessing (seconds).
    pub cumulative_visible_latency_secs: f64,
}

/// The outcome of a full session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Per-iteration trace.
    pub records: Vec<IterationRecord>,
    /// Preprocessing time charged before the first iteration (seconds).
    pub preprocessing_secs: f64,
    /// The iteration at which the rising bandit converged, if it did.
    pub feature_selected_at: Option<usize>,
    /// The extractor finally used for predictions.
    pub final_extractor: ExtractorId,
    /// Every label the session collected, in the order the user produced
    /// them (the determinism tests compare this sequence between the
    /// synchronous and async execution paths).
    pub labels: Vec<LabelRecord>,
    /// Every fault the session absorbed instead of aborting (empty without a
    /// configured fault plan), in deterministic recording order.
    pub degradations: Vec<Degradation>,
    /// The deterministic event ledger in canonical order (the trace the
    /// async engine must reproduce — see `crate::observability`).
    pub events: Vec<(u32, SessionEvent)>,
}

impl SessionOutcome {
    /// The last measured macro F1.
    pub fn final_f1(&self) -> f64 {
        self.records
            .iter()
            .rev()
            .find_map(|r| r.macro_f1)
            .unwrap_or(0.0)
    }

    /// Mean macro F1 over the last `k` evaluated iterations.
    pub fn mean_f1_last(&self, k: usize) -> f64 {
        let scores: Vec<f64> = self
            .records
            .iter()
            .rev()
            .filter_map(|r| r.macro_f1)
            .take(k)
            .collect();
        if scores.is_empty() {
            0.0
        } else {
            // ve-lint: allow(float-reduction-order) -- Vec iteration order is fixed
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }

    /// Mean macro F1 across every evaluated iteration (the paper's
    /// "average F1 after 100 Explore steps" for Figure 2).
    pub fn mean_f1(&self) -> f64 {
        let scores: Vec<f64> = self.records.iter().filter_map(|r| r.macro_f1).collect();
        if scores.is_empty() {
            0.0
        } else {
            // ve-lint: allow(float-reduction-order) -- Vec iteration order is fixed
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }

    /// Total visible latency including preprocessing (seconds).
    pub fn cumulative_visible_latency(&self) -> f64 {
        self.records
            .last()
            .map(|r| r.cumulative_visible_latency_secs)
            .unwrap_or(self.preprocessing_secs)
    }

    /// `S_max` of the final iteration.
    pub fn final_s_max(&self) -> f64 {
        self.records.last().map(|r| r.s_max).unwrap_or(0.0)
    }
}

/// Drives oracle-labeled sessions.
pub struct SessionRunner {
    config: SessionConfig,
    dataset: Dataset,
}

impl SessionRunner {
    /// Generates the dataset and prepares a runner.
    pub fn new(config: SessionConfig) -> Self {
        let dataset = Dataset::scaled(config.dataset, config.scale, config.seed);
        Self { config, dataset }
    }

    /// Creates a runner over an already-generated dataset (so sweeps can
    /// share one corpus across configurations).
    pub fn with_dataset(config: SessionConfig, dataset: Dataset) -> Self {
        Self { config, dataset }
    }

    /// The generated dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Runs the full session and returns its trace.
    pub fn run(&self) -> SessionOutcome {
        let cfg = &self.config;
        let mut system = VocalExplore::new(cfg.system.clone());
        for clip in self.dataset.train.videos() {
            system.add_video(clip.clone());
        }

        let oracle: Box<dyn Oracle> = if cfg.label_noise > 0.0 {
            Box::new(NoisyOracle::new(
                GroundTruthOracle::new(cfg.system.task),
                cfg.label_noise,
                cfg.system.num_classes,
                cfg.seed ^ 0xBAD_5EED,
            ))
        } else {
            Box::new(GroundTruthOracle::new(cfg.system.task))
        };

        // Preprocessing charge for the baselines that extract features from
        // every video before exploration starts.
        let preprocessing_secs = self.preprocessing_cost(&system);

        let mut records = Vec::with_capacity(cfg.iterations);
        let mut cumulative_visible = preprocessing_secs;
        let mut feature_selected_at = None;
        let mut eval_cache: HashMap<(ExtractorId, VideoId), Vec<f32>> = HashMap::new();

        for iteration in 1..=cfg.iterations {
            // --- Explore: sample a batch (the system trains/evaluates the
            // pending work synchronously inside; latency is accounted below
            // according to the scheduling strategy).
            let extractor_before = system.current_extractor();
            let pool_before: std::collections::HashSet<VideoId> = system
                .feature_manager()
                .videos_with_features(extractor_before)
                .into_iter()
                .collect();
            let batch = system.explore(cfg.batch_size, cfg.clip_len, cfg.target_label);
            let acquisition = batch.acquisition.unwrap_or(AcquisitionKind::Random);
            let stats = batch.stats.unwrap_or(SelectionStats {
                acquisition,
                videos_extracted_for_call: 0,
                extraction_secs: 0.0,
                candidates_lost: 0,
                coverage_fallback: false,
            });

            // --- The oracle labels every returned segment.
            for seg in &batch.segments {
                let classes = oracle.label(&self.dataset.train, seg.vid, &seg.range);
                system.add_label(seg.vid, seg.range, classes);
            }

            // --- Latency accounting for this iteration.
            let current_extractor = system.current_extractor();
            let active = system.alm().active_extractors();
            let batch_videos: std::collections::HashSet<VideoId> =
                batch.segments.iter().map(|s| s.vid).collect();
            let costs = iteration_costs_for_call(
                &system,
                &self.dataset,
                cfg.batch_size,
                &pool_before,
                &batch_videos,
                &stats,
            );
            let latency = iteration_latency(cfg.system.strategy, &costs);
            cumulative_visible += latency.visible_secs;

            // --- VE-full (and its speculative extension): spend the labeling
            // window on eager extraction.
            if matches!(
                cfg.system.strategy,
                SchedulerStrategy::VeFull | SchedulerStrategy::VeFullSpeculative
            ) {
                let videos = eager_video_budget(&latency, costs.t_extract, active.len());
                system.eager_extract(videos);
            }

            // --- Track bandit convergence.
            if feature_selected_at.is_none() && system.alm().selected_extractor().is_some() {
                feature_selected_at = Some(iteration);
            }

            // --- Evaluate macro F1 on the held-out set.
            let macro_f1 = if iteration % cfg.eval_every == 0 || iteration == cfg.iterations {
                self.evaluate(&system, current_extractor, &mut eval_cache)
            } else {
                None
            };

            let counts = system.class_counts();
            records.push(IterationRecord {
                iteration,
                labels_total: system.label_count(),
                acquisition,
                active_extractors: active.len(),
                selected_extractor: system.alm().selected_extractor(),
                current_extractor,
                s_max: s_max(&counts),
                macro_f1,
                visible_latency_secs: latency.visible_secs,
                cumulative_visible_latency_secs: cumulative_visible,
            });
        }

        SessionOutcome {
            records,
            preprocessing_secs,
            feature_selected_at,
            final_extractor: system.current_extractor(),
            labels: system.label_records(),
            degradations: system.drain_degradations(),
            events: system.obs().canonical_events(),
        }
    }

    /// Preprocessing cost for the `*-PP` baselines: extract the relevant
    /// features from every training video before the first iteration.
    fn preprocessing_cost(&self, system: &VocalExplore) -> f64 {
        if self.config.system.preprocess != PreprocessPolicy::AllVideos {
            return 0.0;
        }
        let extractors = system.alm().active_extractors();
        self.dataset
            .train
            .videos()
            .iter()
            .map(|clip| {
                extractors
                    .iter()
                    .map(|&e| system.feature_manager().extraction_cost(e, clip))
                    // ve-lint: allow(float-reduction-order) -- Vec iteration order is fixed
                    .sum::<f64>()
            })
            // ve-lint: allow(float-reduction-order) -- slice iteration order is fixed
            .sum::<f64>()
    }

    /// Macro F1 of the current model on the held-out evaluation set. Uses one
    /// window per evaluation video (the middle window), which keeps per-
    /// iteration evaluation cheap while covering every held-out video.
    fn evaluate(
        &self,
        system: &VocalExplore,
        extractor: ExtractorId,
        cache: &mut HashMap<(ExtractorId, VideoId), Vec<f32>>,
    ) -> Option<f64> {
        let fitted: Arc<FittedModel> = system.model_manager().latest(extractor)?;
        let sim = system.feature_manager().simulator();
        match self.config.system.task {
            TaskKind::SingleLabel => {
                let mut y_true = Vec::new();
                let mut y_pred = Vec::new();
                for clip in self.dataset.eval.videos() {
                    let mid = clip.duration / 2.0;
                    let range = TimeRange::new(
                        mid.floor(),
                        (mid.floor() + self.config.clip_len).min(clip.duration),
                    );
                    let Some(truth) = clip
                        .segment_at(range.midpoint())
                        .and_then(|s| s.primary_class())
                    else {
                        continue;
                    };
                    let feats = cache
                        .entry((extractor, clip.id))
                        .or_insert_with(|| sim.extract(extractor, clip, &range).data)
                        .clone();
                    let scaled = fitted.scaler.transform(&feats);
                    y_pred.push(fitted.model.predict(&scaled));
                    y_true.push(truth);
                }
                if y_true.is_empty() {
                    None
                } else {
                    Some(ve_ml::macro_f1(
                        &y_true,
                        &y_pred,
                        self.config.system.num_classes,
                    ))
                }
            }
            TaskKind::MultiLabel => {
                let mut y_true = Vec::new();
                let mut y_pred = Vec::new();
                for clip in self.dataset.eval.videos() {
                    let mid = clip.duration / 2.0;
                    let range = TimeRange::new(
                        mid.floor(),
                        (mid.floor() + self.config.clip_len).min(clip.duration),
                    );
                    let truth = clip.classes_in(&range);
                    let feats = cache
                        .entry((extractor, clip.id))
                        .or_insert_with(|| sim.extract(extractor, clip, &range).data)
                        .clone();
                    let scaled = fitted.scaler.transform(&feats);
                    let probs = fitted.model.predict_proba(&scaled);
                    let pred: Vec<usize> = probs
                        .iter()
                        .enumerate()
                        .filter(|(_, &p)| p >= 0.5)
                        .map(|(c, _)| c)
                        .collect();
                    y_true.push(truth);
                    y_pred.push(pred);
                }
                if y_true.is_empty() {
                    None
                } else {
                    Some(ve_ml::macro_f1_multilabel(
                        &y_true,
                        &y_pred,
                        self.config.system.num_classes,
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FeatureSelectionPolicy, SamplingPolicy};

    fn quick_session(dataset: DatasetName, seed: u64) -> SessionConfig {
        let mut cfg = SessionConfig::new(dataset, 0.08, seed)
            .with_iterations(8)
            .with_eval_every(4);
        // Keep debug-mode tests fast: fixed feature, modest training budget.
        cfg.system = cfg
            .system
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
            .with_extra_candidates(5);
        cfg.system.train.epochs = 40;
        cfg
    }

    #[test]
    fn session_produces_one_record_per_iteration() {
        let runner = SessionRunner::new(quick_session(DatasetName::Deer, 1));
        let outcome = runner.run();
        assert_eq!(outcome.records.len(), 8);
        assert_eq!(outcome.records.last().unwrap().labels_total, 40);
        assert!(outcome.records.iter().any(|r| r.macro_f1.is_some()));
        // Cumulative latency is non-decreasing.
        let mut prev = 0.0;
        for r in &outcome.records {
            assert!(r.cumulative_visible_latency_secs >= prev);
            prev = r.cumulative_visible_latency_secs;
        }
    }

    #[test]
    fn f1_improves_with_labels_on_deer() {
        let mut cfg = quick_session(DatasetName::Deer, 2)
            .with_iterations(14)
            .with_eval_every(13);
        cfg.system.strategy = SchedulerStrategy::VeFull;
        let runner = SessionRunner::new(cfg);
        let outcome = runner.run();
        // With only ~70 labels on a heavily skewed 9-class dataset and a
        // 30-video eval split, several rare classes are absent from both the
        // training labels and the eval set, so macro F1 over the full
        // vocabulary is capped well below 1. Chance level (predicting the
        // majority class) is ~0.05 here; require a clear margin above it.
        let final_f1 = outcome.final_f1();
        assert!(
            final_f1 > 0.12,
            "with ~70 ground-truth labels the R3D model should beat chance: {final_f1}"
        );
    }

    #[test]
    fn preprocessing_policy_charges_upfront_latency() {
        let mut cfg = quick_session(DatasetName::Deer, 3);
        cfg.system = cfg.system.with_preprocess(PreprocessPolicy::AllVideos);
        cfg.system.strategy = SchedulerStrategy::Serial;
        let runner = SessionRunner::new(cfg);
        let outcome = runner.run();
        assert!(outcome.preprocessing_secs > 0.0);
        assert!(outcome.cumulative_visible_latency() >= outcome.preprocessing_secs);
    }

    #[test]
    fn ve_full_has_lower_visible_latency_than_serial() {
        let mk = |strategy| {
            let mut cfg = quick_session(DatasetName::Deer, 4);
            cfg.system.strategy = strategy;
            SessionRunner::new(cfg).run().cumulative_visible_latency()
        };
        let serial = mk(SchedulerStrategy::Serial);
        let partial = mk(SchedulerStrategy::VePartial);
        let full = mk(SchedulerStrategy::VeFull);
        assert!(
            serial > partial,
            "serial {serial} should exceed partial {partial}"
        );
        assert!(
            partial > full,
            "partial {partial} should exceed full {full}"
        );
    }

    #[test]
    fn random_baseline_records_random_acquisition() {
        let mut cfg = quick_session(DatasetName::K20, 5);
        cfg.system = cfg
            .system
            .with_sampling(SamplingPolicy::Fixed(AcquisitionKind::Random));
        let runner = SessionRunner::new(cfg);
        let outcome = runner.run();
        assert!(outcome
            .records
            .iter()
            .all(|r| r.acquisition == AcquisitionKind::Random));
    }

    #[test]
    fn outcome_helpers() {
        let runner = SessionRunner::new(quick_session(DatasetName::Bears, 6));
        let outcome = runner.run();
        assert!(outcome.mean_f1() >= 0.0);
        assert!(outcome.mean_f1_last(3) >= 0.0);
        assert!(outcome.final_s_max() > 0.0);
        assert_eq!(outcome.final_extractor, ExtractorId::R3d);
    }
}
