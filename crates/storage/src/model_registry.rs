//! The model registry: metadata for every trained model plus the in-memory
//! handle of the most recent model per feature extractor.
//!
//! The paper's Model Manager "maintains one model per feature extractor" and
//! is non-blocking: "while a new model is training, the MM serves requests
//! for labels using the previously trained model" (Section 2.3). The registry
//! is the piece of state that makes that possible — model training tasks
//! publish here, inference reads the latest published handle.

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use std::collections::HashMap;
use std::sync::Arc;
use ve_features::ExtractorId;

/// Metadata about one trained model version.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// Monotonically increasing model version (unique across extractors).
    pub version: u64,
    /// Which feature extractor the model consumes.
    pub extractor: ExtractorId,
    /// How many labels were available when training started.
    pub trained_on_labels: usize,
    /// Exploration iteration at which training was scheduled.
    pub iteration: u32,
    /// Cross-validated macro F1 at training time, if evaluated.
    pub cv_f1: Option<f64>,
}

/// Registry of trained models. Generic over the model handle type so the
/// storage crate does not depend on the model implementation.
#[derive(Debug)]
pub struct ModelRegistry<M> {
    latest: HashMap<ExtractorId, (ModelRecord, Arc<M>)>,
    history: Vec<ModelRecord>,
    /// Per-extractor index into the history: every version ever published for
    /// that extractor, ascending. Keeps per-extractor lookups (latest version,
    /// publication count, history walks) O(1)/O(own-history) instead of
    /// scanning the global record list.
    by_extractor: HashMap<ExtractorId, Vec<u64>>,
    next_version: u64,
}

impl<M> Default for ModelRegistry<M> {
    fn default() -> Self {
        Self {
            latest: HashMap::new(),
            history: Vec::new(),
            by_extractor: HashMap::new(),
            next_version: 0,
        }
    }
}

impl<M> ModelRegistry<M> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a newly trained model for an extractor and returns its
    /// assigned version. The previous model for that extractor (if any) is
    /// replaced but its record remains in the history.
    pub fn publish(
        &mut self,
        extractor: ExtractorId,
        trained_on_labels: usize,
        iteration: u32,
        cv_f1: Option<f64>,
        model: Arc<M>,
    ) -> u64 {
        let version = self.next_version;
        self.next_version += 1;
        let record = ModelRecord {
            version,
            extractor,
            trained_on_labels,
            iteration,
            cv_f1,
        };
        self.history.push(record.clone());
        self.by_extractor
            .entry(extractor)
            .or_default()
            .push(version);
        self.latest.insert(extractor, (record, model));
        version
    }

    /// The version of the most recently published model for an extractor
    /// (O(1) — the probability cache keys on this).
    pub fn latest_version(&self, extractor: ExtractorId) -> Option<u64> {
        self.latest.get(&extractor).map(|(rec, _)| rec.version)
    }

    /// Every version ever published for an extractor, ascending (retired
    /// models included — retirement drops the handle, not the history).
    pub fn versions_for(&self, extractor: ExtractorId) -> &[u64] {
        self.by_extractor
            .get(&extractor)
            .map_or(&[], |versions| versions.as_slice())
    }

    /// The most recently published model for an extractor.
    pub fn latest(&self, extractor: ExtractorId) -> Option<(&ModelRecord, Arc<M>)> {
        self.latest
            .get(&extractor)
            .map(|(rec, model)| (rec, Arc::clone(model)))
    }

    /// Whether any model has been published for the extractor.
    pub fn has_model(&self, extractor: ExtractorId) -> bool {
        self.latest.contains_key(&extractor)
    }

    /// Every record ever published, in version order.
    pub fn history(&self) -> &[ModelRecord] {
        &self.history
    }

    /// Number of models ever published.
    pub fn total_published(&self) -> usize {
        self.history.len()
    }

    /// Removes the published model for an extractor (used when the bandit
    /// eliminates a feature), keeping its history.
    pub fn retire(&mut self, extractor: ExtractorId) -> bool {
        self.latest.remove(&extractor).is_some()
    }

    /// How "stale" the latest model of an extractor is, measured in labels
    /// collected since it was trained.
    pub fn staleness(&self, extractor: ExtractorId, current_labels: usize) -> Option<usize> {
        self.latest
            .get(&extractor)
            .map(|(rec, _)| current_labels.saturating_sub(rec.trained_on_labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stand-in model type for tests.
    #[derive(Debug, PartialEq)]
    struct DummyModel(u32);

    #[test]
    fn publish_and_fetch_latest() {
        let mut r: ModelRegistry<DummyModel> = ModelRegistry::new();
        assert!(!r.has_model(ExtractorId::R3d));
        let v0 = r.publish(ExtractorId::R3d, 10, 2, Some(0.5), Arc::new(DummyModel(1)));
        let v1 = r.publish(ExtractorId::R3d, 15, 3, Some(0.6), Arc::new(DummyModel(2)));
        assert_eq!((v0, v1), (0, 1));
        let (rec, model) = r.latest(ExtractorId::R3d).unwrap();
        assert_eq!(rec.version, 1);
        assert_eq!(rec.trained_on_labels, 15);
        assert_eq!(*model, DummyModel(2));
        assert_eq!(r.total_published(), 2);
    }

    #[test]
    fn versions_are_global_across_extractors() {
        let mut r: ModelRegistry<DummyModel> = ModelRegistry::new();
        r.publish(ExtractorId::R3d, 5, 1, None, Arc::new(DummyModel(1)));
        let v = r.publish(ExtractorId::Clip, 5, 1, None, Arc::new(DummyModel(2)));
        assert_eq!(v, 1);
        assert!(r.has_model(ExtractorId::R3d) && r.has_model(ExtractorId::Clip));
    }

    #[test]
    fn staleness_tracks_label_growth() {
        let mut r: ModelRegistry<DummyModel> = ModelRegistry::new();
        r.publish(ExtractorId::Mvit, 20, 4, None, Arc::new(DummyModel(1)));
        assert_eq!(r.staleness(ExtractorId::Mvit, 25), Some(5));
        assert_eq!(r.staleness(ExtractorId::Mvit, 20), Some(0));
        assert_eq!(r.staleness(ExtractorId::Mvit, 10), Some(0), "saturating");
        assert_eq!(r.staleness(ExtractorId::R3d, 25), None);
    }

    #[test]
    fn versions_stay_globally_monotonic_across_interleaved_extractors() {
        // Regression test for the per-extractor index: version numbers must
        // stay globally monotonic no matter how publishes interleave across
        // extractors (with retirement in between), and the per-extractor
        // index must partition the global history without gaps or reuse.
        let mut r: ModelRegistry<DummyModel> = ModelRegistry::new();
        let extractors = [
            ExtractorId::R3d,
            ExtractorId::Clip,
            ExtractorId::R3d,
            ExtractorId::Mvit,
            ExtractorId::Clip,
            ExtractorId::R3d,
        ];
        for (i, &e) in extractors.iter().enumerate() {
            let v = r.publish(e, i, i as u32, None, Arc::new(DummyModel(i as u32)));
            assert_eq!(v, i as u64, "publish {i} must get the next global version");
            if i == 3 {
                r.retire(ExtractorId::Clip);
            }
        }
        // Global history is strictly increasing.
        assert!(r
            .history()
            .windows(2)
            .all(|w| w[1].version == w[0].version + 1));
        // Per-extractor views agree with the history and stay ascending.
        assert_eq!(r.versions_for(ExtractorId::R3d), &[0, 2, 5]);
        assert_eq!(r.versions_for(ExtractorId::Clip), &[1, 4]);
        assert_eq!(r.versions_for(ExtractorId::Mvit), &[3]);
        assert!(r.versions_for(ExtractorId::Random).is_empty());
        // `latest_version` is the tail of the per-extractor index.
        assert_eq!(r.latest_version(ExtractorId::R3d), Some(5));
        assert_eq!(r.latest_version(ExtractorId::Clip), Some(4));
        assert_eq!(r.latest_version(ExtractorId::Random), None);
        // A fresh publish after retirement continues the global counter.
        let v = r.publish(ExtractorId::Clip, 9, 9, None, Arc::new(DummyModel(9)));
        assert_eq!(v, 6);
        assert_eq!(r.versions_for(ExtractorId::Clip), &[1, 4, 6]);
    }

    #[test]
    fn retire_removes_latest_but_keeps_history() {
        let mut r: ModelRegistry<DummyModel> = ModelRegistry::new();
        r.publish(
            ExtractorId::Random,
            5,
            1,
            Some(0.1),
            Arc::new(DummyModel(1)),
        );
        assert!(r.retire(ExtractorId::Random));
        assert!(!r.retire(ExtractorId::Random));
        assert!(!r.has_model(ExtractorId::Random));
        assert_eq!(r.history().len(), 1);
    }
}
