//! Integration tests exercising interactions between the substrate crates
//! directly (without the `VocalExplore` facade): feature simulation feeding
//! the ML stack, acquisition functions over simulated embeddings, the rising
//! bandit fed by real cross-validation scores, and the scheduler cost model
//! driven by Table 3 throughputs.

use ve_al::{cluster_margin_selection, coreset_selection, ClusterMarginConfig};
use ve_bandit::{BanditEvent, RisingBandit, RisingBanditConfig};
use ve_features::{ExtractorId, FeatureSimulator};
use ve_ml::{cross_validate, CrossValConfig};
use ve_sched::{iteration_latency, IterationCosts, SchedulerStrategy};
use ve_stats::SkewDetector;
use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle, TimeRange};

/// Build an oracle-labeled feature matrix for one extractor.
fn labeled_features(
    dataset: &Dataset,
    sim: &FeatureSimulator,
    extractor: ExtractorId,
    n: usize,
) -> (Vec<Vec<f32>>, Vec<usize>) {
    let oracle = GroundTruthOracle::new(dataset.spec.task);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for clip in dataset.train.videos().iter().take(n) {
        let range = TimeRange::new(0.0, 1.0);
        let labels = oracle.label(&dataset.train, clip.id, &range);
        if let Some(&c) = labels.first() {
            xs.push(sim.extract(extractor, clip, &range).data);
            ys.push(c);
        }
    }
    (xs, ys)
}

#[test]
fn bandit_driven_by_real_cv_scores_prefers_informative_extractors() {
    let dataset = Dataset::scaled(DatasetName::Deer, 0.2, 31);
    let sim = FeatureSimulator::new(DatasetName::Deer, 9, 31);
    let mut bandit = RisingBandit::new(ExtractorId::all().to_vec(), RisingBanditConfig::default());
    let cv_cfg = CrossValConfig::default();

    let mut selected = None;
    for step in 1..=40usize {
        // Growing labeled set: 10 more labeled windows per step.
        let n = 10 + step * 5;
        let scores: Vec<(ExtractorId, f64)> = bandit
            .active_arms()
            .into_iter()
            .filter_map(|e| {
                let (xs, ys) = labeled_features(&dataset, &sim, e, n);
                cross_validate(&xs, &ys, 9, &cv_cfg).map(|s| (e, s))
            })
            .collect();
        if let BanditEvent::Selected(arm) = bandit.observe(&scores) {
            selected = Some(arm);
            break;
        }
    }
    let selected = selected.or_else(|| bandit.selected());
    assert!(
        matches!(selected, Some(ExtractorId::R3d) | Some(ExtractorId::Mvit)),
        "bandit fed by real CV scores should pick a video model on Deer, got {selected:?}"
    );
    // The random feature must not have survived.
    assert!(!bandit.active_arms().contains(&ExtractorId::Random));
}

#[test]
fn acquisition_functions_operate_on_simulated_embeddings() {
    let dataset = Dataset::scaled(DatasetName::K20Skew, 0.2, 33);
    let sim = FeatureSimulator::new(DatasetName::K20Skew, 20, 33);
    let candidates: Vec<Vec<f32>> = dataset
        .train
        .videos()
        .iter()
        .take(120)
        .map(|clip| {
            sim.extract(ExtractorId::Mvit, clip, &TimeRange::new(0.0, 1.0))
                .data
        })
        .collect();

    let candidate_block = ve_ml::FeatureBlock::from_nested(&candidates);
    let coreset = coreset_selection(&candidate_block, &ve_ml::FeatureBlock::empty(64), 10);
    assert_eq!(coreset.len(), 10);
    // Coreset picks should span many different videos' embeddings (diversity):
    let unique: std::collections::HashSet<_> = coreset.iter().collect();
    assert_eq!(unique.len(), 10);

    let cm = cluster_margin_selection(
        &candidate_block,
        &ve_ml::FeatureBlock::empty(0),
        10,
        &ClusterMarginConfig::default(),
    );
    assert_eq!(cm.len(), 10);
}

#[test]
fn skew_detector_fires_on_oracle_labels_from_a_skewed_corpus() {
    let dataset = Dataset::scaled(DatasetName::Deer, 0.2, 35);
    let oracle = GroundTruthOracle::new(dataset.spec.task);
    let mut counts = vec![0u64; dataset.vocabulary.len()];
    let mut detector = SkewDetector::default();
    let mut fired_at = None;
    for (i, clip) in dataset.train.videos().iter().take(60).enumerate() {
        let labels = oracle.label(&dataset.train, clip.id, &TimeRange::new(0.0, 1.0));
        for c in labels {
            counts[c] += 1;
        }
        if detector.observe(&counts) && fired_at.is_none() {
            fired_at = Some(i + 1);
        }
    }
    let fired_at = fired_at.expect("Deer labels must be detected as skewed within 60 labels");
    assert!(fired_at >= 10, "the detector must respect its warm-up");
}

#[test]
fn scheduler_cost_model_uses_table3_throughputs() {
    let dataset = Dataset::scaled(DatasetName::Deer, 0.05, 37);
    let sim = FeatureSimulator::new(DatasetName::Deer, 9, 37);
    let clip = &dataset.train.videos()[0];
    let t_extract = sim.extraction_seconds(ExtractorId::Mvit, clip);
    assert!(
        (t_extract - 1.0 / 2.93).abs() < 1e-9,
        "MViT Table 3 throughput"
    );

    let costs = IterationCosts {
        batch_size: 5,
        t_select: 0.05,
        t_extract,
        videos_needing_extraction: 5,
        extra_candidates: 0,
        t_infer: 0.15,
        t_train: 2.0,
        t_eval: 2.0,
        features_under_evaluation: 5,
        t_user: 10.0,
    };
    let serial = iteration_latency(SchedulerStrategy::Serial, &costs);
    let full = iteration_latency(SchedulerStrategy::VeFull, &costs);
    // Serial pays extraction + training + evaluation visibly; VE-full pays
    // only selection + inference (B * (Ts + Ti) = 1 second).
    assert!(serial.visible_secs > 10.0);
    assert!((full.visible_secs - 1.0).abs() < 1e-9);
    assert!(full.background_secs > 0.0);
}

#[test]
fn per_dataset_feature_quality_ordering_holds_end_to_end() {
    // The CV score ordering on real simulated embeddings must match the
    // profile ordering for pairs whose Figure 4 quality gap is large enough
    // to be observable at ~150 labels. BDD is deliberately excluded: its
    // best-vs-video-model gap (0.62 vs 0.48) is the smallest in the paper —
    // Table 4 reports feature-selection correctness of only 0.50–0.69 there
    // — so a strict ordering assertion at unit-test label budgets is
    // statistical noise by design; BDD's ordering is asserted at the profile
    // level (`ve-features`' tests) instead. Bears stands in as the
    // image-transformer-friendly dataset, where the informative extractor
    // must beat the randomized-weights arm the bandit is meant to eliminate.
    let cases = [
        (DatasetName::Deer, ExtractorId::R3d, ExtractorId::Clip),
        (DatasetName::K20Skew, ExtractorId::Mvit, ExtractorId::R3d),
        (
            DatasetName::Bears,
            ExtractorId::ClipPooled,
            ExtractorId::Random,
        ),
    ];
    for (ds_name, better, worse) in cases {
        let dataset = Dataset::scaled(ds_name, 0.3, 39);
        let sim = FeatureSimulator::new(ds_name, dataset.vocabulary.len(), 39);
        let oracle = GroundTruthOracle::new(dataset.spec.task);
        let take = 150.min(dataset.train.len());
        let score = |e: ExtractorId| -> f64 {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for clip in dataset.train.videos().iter().take(take) {
                let range = TimeRange::new(0.0, 1.0);
                let labels = oracle.label(&dataset.train, clip.id, &range);
                if let Some(&c) = labels.first() {
                    xs.push(sim.extract(e, clip, &range).data);
                    ys.push(c);
                }
            }
            cross_validate(
                &xs,
                &ys,
                dataset.vocabulary.len(),
                &CrossValConfig::default(),
            )
            .unwrap_or(0.0)
        };
        let s_better = score(better);
        let s_worse = score(worse);
        assert!(
            s_better > s_worse,
            "{better} ({s_better:.3}) should beat {worse} ({s_worse:.3}) on {ds_name}"
        );
    }
}
