//! Task descriptors.

/// Identifier assigned to a scheduled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// The paper's task taxonomy (Section 4, Background).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// `T_s` — sample selection (pick one video segment to return).
    SampleSelection,
    /// `T_f` — feature extraction required to answer the current call.
    FeatureExtraction,
    /// `T_i` — model inference over one sampled segment.
    ModelInference,
    /// `T_m` — model training.
    ModelTraining,
    /// `T_e` — feature-quality evaluation for one candidate feature.
    FeatureEvaluation,
    /// `T_f⁻` — eager (background) feature extraction of unlabeled videos.
    EagerFeatureExtraction,
}

impl TaskKind {
    /// Short label used in logs and experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            TaskKind::SampleSelection => "Ts",
            TaskKind::FeatureExtraction => "Tf",
            TaskKind::ModelInference => "Ti",
            TaskKind::ModelTraining => "Tm",
            TaskKind::FeatureEvaluation => "Te",
            TaskKind::EagerFeatureExtraction => "Tf-",
        }
    }

    /// Whether the task must complete before `Explore` can return under the
    /// `VE-partial` / `VE-full` strategies (Section 4.1: "only selecting
    /// video segments, extracting features from them if not already
    /// available, and performing model inference are required to return").
    pub fn is_critical(&self) -> bool {
        matches!(
            self,
            TaskKind::SampleSelection | TaskKind::FeatureExtraction | TaskKind::ModelInference
        )
    }
}

/// Scheduling priority. Lower ordinal = runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Blocks an API response (Ts, Tf, Ti for the current call).
    Critical,
    /// Asynchronous but time-sensitive (Tm, Te).
    Normal,
    /// Opportunistic background work (Tf⁻); always yields to other tasks.
    Background,
}

impl Priority {
    /// Default priority for a task kind under the optimized strategies.
    pub fn for_kind(kind: TaskKind) -> Self {
        match kind {
            k if k.is_critical() => Priority::Critical,
            TaskKind::EagerFeatureExtraction => Priority::Background,
            _ => Priority::Normal,
        }
    }
}

/// A schedulable unit of work with a simulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Identifier (assigned by the queue or clock).
    pub id: TaskId,
    /// Task type.
    pub kind: TaskKind,
    /// Priority class.
    pub priority: Priority,
    /// Simulated execution cost in seconds (derived from Table 3 throughputs
    /// for `T_f`, from measured wall-clock time for the in-process tasks).
    pub cost_secs: f64,
    /// Free-form tag identifying the work (video id, extractor, ...).
    pub tag: String,
}

impl Task {
    /// Creates a task with the default priority for its kind.
    pub fn new(id: TaskId, kind: TaskKind, cost_secs: f64, tag: impl Into<String>) -> Self {
        assert!(cost_secs >= 0.0, "task cost must be non-negative");
        Self {
            id,
            kind,
            priority: Priority::for_kind(kind),
            cost_secs,
            tag: tag.into(),
        }
    }

    /// Overrides the priority (used by the Serial strategy, which treats
    /// everything as critical).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_kinds() {
        assert!(TaskKind::SampleSelection.is_critical());
        assert!(TaskKind::FeatureExtraction.is_critical());
        assert!(TaskKind::ModelInference.is_critical());
        assert!(!TaskKind::ModelTraining.is_critical());
        assert!(!TaskKind::FeatureEvaluation.is_critical());
        assert!(!TaskKind::EagerFeatureExtraction.is_critical());
    }

    #[test]
    fn default_priorities() {
        assert_eq!(
            Priority::for_kind(TaskKind::ModelInference),
            Priority::Critical
        );
        assert_eq!(
            Priority::for_kind(TaskKind::ModelTraining),
            Priority::Normal
        );
        assert_eq!(
            Priority::for_kind(TaskKind::EagerFeatureExtraction),
            Priority::Background
        );
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::Critical < Priority::Normal);
        assert!(Priority::Normal < Priority::Background);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TaskKind::EagerFeatureExtraction.label(), "Tf-");
        assert_eq!(TaskKind::ModelTraining.label(), "Tm");
    }

    #[test]
    fn task_construction_and_priority_override() {
        let t = Task::new(TaskId(1), TaskKind::ModelTraining, 2.5, "train MViT");
        assert_eq!(t.priority, Priority::Normal);
        let t = t.with_priority(Priority::Critical);
        assert_eq!(t.priority, Priority::Critical);
        assert_eq!(t.cost_secs, 2.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_cost() {
        Task::new(TaskId(0), TaskKind::ModelInference, -1.0, "bad");
    }
}
