//! `ve-vidsim` — synthetic video corpus substrate.
//!
//! The paper evaluates VOCALExplore on six video datasets (Table 2): Deer,
//! K20, K20 (skew), Charades, Bears, and BDD. Real footage and pretrained
//! video models are not available in this environment, so this crate
//! generates *synthetic* corpora that reproduce everything VOCALExplore's
//! decision logic actually consumes:
//!
//! * per-video metadata (id, path, duration, start time),
//! * per-segment ground-truth activities with the **same class counts and
//!   skew** as Table 2 (e.g. Zipf `s = 2` for K20 (skew), a "bedded"-dominated
//!   distribution for Deer, multi-label verbs for Charades), and
//! * a latent per-segment content seed that the `ve-features` crate turns
//!   into extractor-specific embeddings.
//!
//! The crate also provides the oracle "user" (and a noisy variant used for
//! the Figure 9 label-quality experiment) that the evaluation harness uses in
//! place of a human labeler — exactly as the paper's own evaluation does
//! ("we simulate a labeling task by creating an oracle user").

pub mod corpus;
pub mod datasets;
pub mod oracle;
pub mod types;

pub use corpus::VideoCorpus;
pub use datasets::{Dataset, DatasetName, DatasetSpec};
pub use oracle::{GroundTruthOracle, NoisyOracle, Oracle};
pub use types::{ClassId, Segment, TaskKind, TimeRange, VideoClip, VideoId, Vocabulary};
