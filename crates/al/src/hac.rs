//! Average-linkage hierarchical agglomerative clustering (HAC).
//!
//! The original Cluster-Margin algorithm (Citovsky et al., 2021) clusters the
//! unlabeled pool once with HAC and reuses the clustering across rounds. The
//! default [`crate::cluster_margin_selection`] uses a small k-means for speed,
//! but HAC is provided as an alternative diversity stage
//! ([`crate::cluster_margin::ClusterMarginConfig`] + [`cluster_margin_selection_hac`])
//! for workloads where the candidate pool is small enough (a few hundred
//! windows) that the O(n² log n) cost is irrelevant and fidelity to the
//! original algorithm is preferred.

use crate::cluster_margin::ClusterMarginConfig;
use ve_ml::tensor::squared_distance;

/// Clusters `points` into at most `num_clusters` clusters with average-linkage
/// HAC and returns the cluster index of every point.
///
/// # Panics
/// Panics if `points` is empty or `num_clusters == 0`.
pub fn hac_average_linkage(points: &[Vec<f32>], num_clusters: usize) -> Vec<usize> {
    assert!(!points.is_empty(), "cannot cluster an empty set");
    assert!(num_clusters > 0, "need at least one cluster");
    let n = points.len();
    let target = num_clusters.min(n);

    // Each active cluster: member indices. Distances between clusters are the
    // average pairwise squared distance of their members (computed from
    // cluster centroid sums for O(1) merges since average linkage over
    // squared Euclidean distances decomposes over coordinates).
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut num_active = n;

    // Pairwise average-linkage distance between two clusters.
    let cluster_distance = |a: &[usize], b: &[usize]| -> f64 {
        let mut total = 0.0f64;
        for &i in a {
            for &j in b {
                total += squared_distance(&points[i], &points[j]) as f64;
            }
        }
        total / (a.len() * b.len()) as f64
    };

    while num_active > target {
        // Find the closest pair of active clusters.
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..members.len() {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..members.len() {
                if !active[j] {
                    continue;
                }
                let d = cluster_distance(&members[i], &members[j]);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, _) = best;
        if i == usize::MAX {
            break;
        }
        // Merge j into i.
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);
        active[j] = false;
        num_active -= 1;
    }

    // Assign dense cluster ids.
    let mut assignment = vec![0usize; n];
    let mut next = 0usize;
    for (ci, cluster) in members.iter().enumerate() {
        if !active[ci] {
            continue;
        }
        for &p in cluster {
            assignment[p] = next;
        }
        next += 1;
    }
    assignment
}

/// Cluster-Margin selection using HAC for the diversity stage (the original
/// algorithm's clustering choice). Margin filtering and the ascending-size
/// round-robin stage are identical to [`crate::cluster_margin_selection`].
pub fn cluster_margin_selection_hac(
    features: &[Vec<f32>],
    probs: &[Vec<f32>],
    budget: usize,
    cfg: &ClusterMarginConfig,
) -> Vec<usize> {
    if features.is_empty() || budget == 0 {
        return Vec::new();
    }
    if !probs.is_empty() {
        assert_eq!(probs.len(), features.len(), "probability rows must match candidates");
    }
    // Margin scores (same semantics as the k-means variant).
    let margin = |p: &[f32]| -> f64 {
        let mut top = f32::NEG_INFINITY;
        let mut second = 0.0f32;
        for &v in p {
            if v > top {
                second = if top.is_finite() { top } else { 0.0 };
                top = v;
            } else if v > second {
                second = v;
            }
        }
        if !top.is_finite() {
            0.0
        } else {
            (top - second).max(0.0) as f64
        }
    };
    let margins: Vec<f64> = (0..features.len())
        .map(|i| {
            if probs.is_empty() || probs[i].len() < 2 {
                0.0
            } else {
                margin(&probs[i])
            }
        })
        .collect();
    let pool_size = (cfg.margin_pool_multiplier.max(1) * budget).min(features.len());
    let mut order: Vec<usize> = (0..features.len()).collect();
    order.sort_by(|&a, &b| margins[a].partial_cmp(&margins[b]).expect("NaN margin"));
    let pool: Vec<usize> = order.into_iter().take(pool_size).collect();

    let k = (cfg.clusters_per_budget.max(1) * budget).min(pool.len()).max(1);
    let pool_points: Vec<Vec<f32>> = pool.iter().map(|&i| features[i].clone()).collect();
    let assignment = hac_average_linkage(&pool_points, k);

    let num_clusters = assignment.iter().copied().max().unwrap_or(0) + 1;
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
    for (pos, &cand) in pool.iter().enumerate() {
        clusters[assignment[pos]].push(cand);
    }
    for cluster in &mut clusters {
        cluster.sort_by(|&a, &b| margins[a].partial_cmp(&margins[b]).expect("NaN margin"));
    }
    clusters.retain(|c| !c.is_empty());
    clusters.sort_by_key(|c| c.len());

    let mut selected = Vec::with_capacity(budget);
    let mut cursor = vec![0usize; clusters.len()];
    while selected.len() < budget.min(pool.len()) {
        let mut progressed = false;
        for (ci, cluster) in clusters.iter().enumerate() {
            if selected.len() >= budget {
                break;
            }
            if cursor[ci] < cluster.len() {
                selected.push(cluster[cursor[ci]]);
                cursor[ci] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)] {
            for i in 0..6 {
                out.push(vec![cx + i as f32 * 0.05, cy - i as f32 * 0.05]);
            }
        }
        out
    }

    #[test]
    fn hac_recovers_well_separated_blobs() {
        let points = three_blobs();
        let assignment = hac_average_linkage(&points, 3);
        // Every blob must map to exactly one cluster id.
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> =
                (0..6).map(|i| assignment[blob * 6 + i]).collect();
            assert_eq!(ids.len(), 1, "blob {blob} split across clusters: {assignment:?}");
        }
        // And the three blobs map to three different ids.
        let distinct: std::collections::HashSet<usize> = assignment.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn hac_with_one_cluster_puts_everything_together() {
        let points = three_blobs();
        let assignment = hac_average_linkage(&points, 1);
        assert!(assignment.iter().all(|&c| c == 0));
    }

    #[test]
    fn hac_with_more_clusters_than_points_is_identity_like() {
        let points = vec![vec![0.0f32], vec![1.0], vec![2.0]];
        let assignment = hac_average_linkage(&points, 10);
        let distinct: std::collections::HashSet<usize> = assignment.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn hac_cluster_margin_spreads_across_blobs() {
        let points = three_blobs();
        let probs = vec![vec![0.5, 0.5]; points.len()];
        let picks =
            cluster_margin_selection_hac(&points, &probs, 3, &ClusterMarginConfig::default());
        assert_eq!(picks.len(), 3);
        let blobs: std::collections::HashSet<usize> = picks.iter().map(|&i| i / 6).collect();
        assert_eq!(blobs.len(), 3, "one pick per blob expected: {picks:?}");
    }

    #[test]
    fn hac_cluster_margin_prefers_uncertain_candidates() {
        let points = three_blobs();
        // Blob 0 uncertain, blobs 1-2 confident.
        let probs: Vec<Vec<f32>> = (0..points.len())
            .map(|i| if i < 6 { vec![0.51, 0.49] } else { vec![0.95, 0.05] })
            .collect();
        let cfg = ClusterMarginConfig {
            margin_pool_multiplier: 2,
            ..ClusterMarginConfig::default()
        };
        let picks = cluster_margin_selection_hac(&points, &probs, 3, &cfg);
        assert!(picks.iter().all(|&i| i < 6), "picks must come from the uncertain blob: {picks:?}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn hac_rejects_empty_input() {
        hac_average_linkage(&[], 2);
    }

    #[test]
    fn agrees_with_kmeans_variant_on_budget_and_uniqueness() {
        let points = three_blobs();
        let picks = cluster_margin_selection_hac(&points, &[], 7, &ClusterMarginConfig::default());
        assert_eq!(picks.len(), 7);
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), picks.len());
    }
}
