//! The video catalog: one row per registered video (`AddVideo` in the API).

use crate::error::StorageError;
use std::collections::BTreeMap;
use ve_vidsim::VideoId;

/// One row of the video catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoRecord {
    /// Video id.
    pub vid: VideoId,
    /// Path the user registered the video under.
    pub path: String,
    /// Duration in seconds.
    pub duration: f64,
    /// Capture start time (Unix-style seconds).
    pub start_timestamp: f64,
}

/// In-memory video catalog with ordered iteration by id.
#[derive(Debug, Clone, Default)]
pub struct VideoMetadataStore {
    rows: BTreeMap<VideoId, VideoRecord>,
}

impl VideoMetadataStore {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a record. Returns `true` if the video was new.
    pub fn insert(&mut self, record: VideoRecord) -> bool {
        self.rows.insert(record.vid, record).is_none()
    }

    /// Looks up a record.
    pub fn get(&self, vid: VideoId) -> Option<&VideoRecord> {
        self.rows.get(&vid)
    }

    /// Fails with [`StorageError::NotFound`] when the video is unknown.
    pub fn require(&self, vid: VideoId) -> Result<&VideoRecord, StorageError> {
        self.get(vid)
            .ok_or_else(|| StorageError::NotFound(format!("video {vid}")))
    }

    /// Number of registered videos.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All video ids in ascending order.
    pub fn ids(&self) -> Vec<VideoId> {
        self.rows.keys().copied().collect()
    }

    /// Iterates over records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &VideoRecord> {
        self.rows.values()
    }

    /// Total catalog duration in seconds.
    pub fn total_duration(&self) -> f64 {
        // ve-lint: allow(float-reduction-order) -- BTreeMap::values() iterates in key order, so the reduction order is fixed
        self.rows.values().map(|r| r.duration).sum::<f64>()
    }

    /// Removes a record, returning it if present.
    pub fn remove(&mut self, vid: VideoId) -> Option<VideoRecord> {
        self.rows.remove(&vid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, dur: f64) -> VideoRecord {
        VideoRecord {
            vid: VideoId(id),
            path: format!("videos/{id}.mp4"),
            duration: dur,
            start_timestamp: id as f64 * 100.0,
        }
    }

    #[test]
    fn insert_get_and_replace() {
        let mut s = VideoMetadataStore::new();
        assert!(s.insert(rec(1, 10.0)));
        assert!(!s.insert(rec(1, 12.0)), "re-insert replaces");
        assert_eq!(s.get(VideoId(1)).unwrap().duration, 12.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn require_missing_is_not_found() {
        let s = VideoMetadataStore::new();
        assert!(matches!(
            s.require(VideoId(9)),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn ids_are_sorted_and_aggregates_work() {
        let mut s = VideoMetadataStore::new();
        s.insert(rec(5, 10.0));
        s.insert(rec(2, 20.0));
        s.insert(rec(9, 30.0));
        assert_eq!(s.ids(), vec![VideoId(2), VideoId(5), VideoId(9)]);
        assert_eq!(s.total_duration(), 60.0);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn remove_round_trip() {
        let mut s = VideoMetadataStore::new();
        s.insert(rec(1, 10.0));
        assert!(s.remove(VideoId(1)).is_some());
        assert!(s.remove(VideoId(1)).is_none());
        assert!(s.is_empty());
    }
}
