//! Minimal recursive-descent JSON parser (std-only; no serde in this
//! environment). Just enough for the bench artifacts and the contract file:
//! objects, arrays, strings with the common escapes, f64 numbers, booleans,
//! and null. Object members keep document order in a `Vec` — lookups are
//! linear, which is fine at artifact scale.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dotted-path lookup: `strategies.ve_full.measured_median_visible_secs`
    /// walks nested objects. A purely numeric segment indexes into an array
    /// (`hac_lance_williams.0.median_ns` style paths).
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in dotted.split('.') {
            cur = match cur {
                Json::Obj(_) => cur.get(seg)?,
                Json::Arr(items) => items.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            ch as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-borrow the original slice to keep multi-byte UTF-8
                // sequences intact: back up and take the full char.
                let rest = std::str::from_utf8(&bytes[*pos - 1..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8() - 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_shapes() {
        let doc = parse(
            r#"{
                "schema": "vocalexplore/bench_latency/v2",
                "quick": true,
                "strategies": {
                    "ve_full": {"measured_median_visible_secs": 0.725, "tasks_failed": 0}
                },
                "pools": [1000, 5000],
                "speedup": null,
                "neg": -1.5e3
            }"#,
        )
        .unwrap();
        assert_eq!(
            doc.path("strategies.ve_full.measured_median_visible_secs")
                .and_then(Json::as_f64),
            Some(0.725)
        );
        assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
        assert!(doc.get("speedup").unwrap().is_null());
        assert_eq!(doc.path("pools.1").and_then(Json::as_f64), Some(5000.0));
        assert_eq!(doc.get("neg").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("vocalexplore/bench_latency/v2")
        );
    }

    #[test]
    fn escapes_round_trip() {
        let doc = parse(r#"{"k": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn missing_paths_are_none_not_panics() {
        let doc = parse(r#"{"a": {"b": 1}}"#).unwrap();
        assert!(doc.path("a.c").is_none());
        assert!(doc.path("a.b.c").is_none());
        assert!(doc.path("x").is_none());
    }
}
