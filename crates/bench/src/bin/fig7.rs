//! Figure 7 — model quality while feature selection runs (`VE-select`).
//!
//! Compares, per dataset, the F1 curve of full VOCALExplore (VE-sample (CM)
//! sampling + rising-bandit feature selection) against:
//! * `Best` — the empirically best fixed (sampling, feature) combination,
//! * `Worst` — the worst combination excluding the Random feature,
//! * `VE-sample (CM)-Best` — adaptive sampling on the best fixed feature.
//!
//! Expected shape: VE-select starts near the worst curve while it still has
//! poor features among its candidates, then catches up to the best strategies
//! within roughly 30 steps (an "S"-shaped curve).
//!
//! ```text
//! cargo run --release -p ve-bench --bin fig7 [-- --full]
//! ```

use ve_al::VeSampleConfig;
use ve_bench::{
    best_extractor, print_header, print_row, with_fixed_feature, with_sampling, Profile,
};
use ve_stats::mean;
use vocalexplore::prelude::*;
use vocalexplore::SamplingPolicy;

/// Averaged F1 at selected checkpoints (fractions of the session length).
fn f1_checkpoints(profile: &Profile, cfg_builder: impl Fn(u64) -> SessionConfig) -> Vec<f64> {
    let fractions = [0.1, 0.3, 0.5, 1.0];
    let mut per_seed: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];
    for seed in 0..profile.seeds {
        let cfg = cfg_builder(seed * 101 + 7);
        let outcome = ve_bench::run_session(cfg);
        for (i, &frac) in fractions.iter().enumerate() {
            let target = ((profile.iterations as f64 * frac).round() as usize).max(1);
            // F1 at the latest evaluated iteration <= target.
            let f1 = outcome
                .records
                .iter()
                .filter(|r| r.iteration <= target)
                .filter_map(|r| r.macro_f1)
                .next_back()
                .unwrap_or(0.0);
            per_seed[i].push(f1);
        }
    }
    per_seed.iter().map(|v| mean(v)).collect()
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Figure 7: F1 during feature selection, checkpoints at 10% / 30% / 50% / 100% of {} \
         iterations ({} seeds)\n",
        profile.iterations, profile.seeds
    );

    for dataset in DatasetName::all() {
        let best_feat = best_extractor(dataset);
        // The weakest pretrained feature (Random excluded), per the paper.
        let worst_feat = ExtractorId::all()
            .into_iter()
            .filter(|e| *e != ExtractorId::Random)
            .min_by(|a, b| {
                ve_features::profiles::quality_for(dataset, *a)
                    .partial_cmp(&ve_features::profiles::quality_for(dataset, *b))
                    .unwrap()
            })
            .unwrap();

        println!("--- {dataset} (best feature {best_feat}, worst feature {worst_feat}) ---");
        let widths = [22, 9, 9, 9, 9];
        print_header(&["Curve", "10%", "30%", "50%", "100%"], &widths);

        let rows: Vec<(&str, Vec<f64>)> = vec![
            (
                "VE-select",
                f1_checkpoints(&profile, |seed| profile.session(dataset, seed)),
            ),
            (
                "VE-sample (CM)-Best",
                f1_checkpoints(&profile, |seed| {
                    with_fixed_feature(
                        with_sampling(
                            profile.session(dataset, seed),
                            SamplingPolicy::VeSample(VeSampleConfig::cluster_margin()),
                        ),
                        best_feat,
                    )
                }),
            ),
            (
                "Best (CM + best feat)",
                f1_checkpoints(&profile, |seed| {
                    with_fixed_feature(
                        with_sampling(
                            profile.session(dataset, seed),
                            SamplingPolicy::Fixed(AcquisitionKind::ClusterMargin),
                        ),
                        best_feat,
                    )
                }),
            ),
            (
                "Worst (Rand + worst)",
                f1_checkpoints(&profile, |seed| {
                    with_fixed_feature(
                        with_sampling(
                            profile.session(dataset, seed),
                            SamplingPolicy::Fixed(AcquisitionKind::Random),
                        ),
                        worst_feat,
                    )
                }),
            ),
        ];
        for (name, checkpoints) in rows {
            let mut cells = vec![name.to_string()];
            cells.extend(checkpoints.iter().map(|f| format!("{f:.3}")));
            print_row(&cells, &widths);
        }
        println!();
    }
}
