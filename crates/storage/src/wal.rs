//! Append-only label log (write-ahead log).
//!
//! Labels are the only state in VOCALExplore that cannot be recomputed: video
//! metadata comes from the filesystem, features and models can be re-derived,
//! but a user's labeling effort is irreplaceable. Snapshots alone would lose
//! the labels added since the last snapshot on a crash, so the storage
//! manager also supports an append-only log: every `AddLabel` call is encoded
//! as one self-delimiting record and appended; recovery replays the log into
//! a fresh [`LabelStore`].
//!
//! Record layout (little-endian, see [`crate::codec`]):
//!
//! ```text
//! u32 record_len | u64 vid | f64 start | f64 end | u64[] classes | u32 iteration | u32 crc
//! ```
//!
//! The trailing CRC (a simple 32-bit FNV-1a over the record body) detects
//! torn writes; replay stops at the first corrupt or truncated record and
//! reports how many records were recovered.

use crate::codec::{Reader, Writer};
use crate::error::StorageError;
use crate::labels::{LabelRecord, LabelStore};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use ve_sched::fault::{FaultInjector, FaultSite};
use ve_vidsim::{TimeRange, VideoId};

/// FNV-1a hash over a byte slice (used as a lightweight record checksum).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encodes one label record (without the length prefix).
fn encode_record_body(record: &LabelRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(record.vid.0);
    w.put_f64(record.range.start);
    w.put_f64(record.range.end);
    let classes: Vec<u64> = record.classes.iter().map(|&c| c as u64).collect();
    w.put_u64_slice(&classes);
    w.put_u32(record.iteration);
    w.into_bytes()
}

fn decode_record_body(bytes: &[u8]) -> Result<LabelRecord, StorageError> {
    let mut r = Reader::new(bytes);
    let vid = VideoId(r.get_u64()?);
    let start = r.get_f64()?;
    let end = r.get_f64()?;
    if !start.is_finite() || !end.is_finite() || start > end {
        return Err(StorageError::Corrupt(format!(
            "invalid label range [{start}, {end})"
        )));
    }
    let classes: Vec<usize> = r.get_u64_vec()?.into_iter().map(|c| c as usize).collect();
    let iteration = r.get_u32()?;
    Ok(LabelRecord {
        vid,
        range: TimeRange::new(start, end),
        classes,
        iteration,
    })
}

/// Durability mode for [`LabelWal`] appends.
///
/// `flush()` alone only moves bytes from user space into OS buffers — a
/// crash or power loss can still lose every record since the last page
/// write-back, which contradicts the module's "labels are irreplaceable"
/// promise. The sync mode decides when the log additionally calls
/// `sync_data()` to force the bytes onto stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// `sync_data()` after every append: a returned `append` means the record
    /// survives power loss. One fsync per label — the safe default for a log
    /// whose whole purpose is to outlive crashes (labels arrive at human
    /// cadence, so the fsync cost is irrelevant).
    #[default]
    Always,
    /// `sync_data()` only when the handle is closed (or [`LabelWal::sync`] is
    /// called explicitly). Appends stay buffered in OS caches; a crash can
    /// lose the tail written since the last sync. Replay still recovers the
    /// longest valid prefix thanks to the per-record CRC.
    OnClose,
}

/// Append-only label log backed by a file.
#[derive(Debug)]
pub struct LabelWal {
    path: PathBuf,
    file: std::fs::File,
    records_written: usize,
    sync: WalSync,
    /// Deterministic fault injection for append/fsync (testing only; `None`
    /// in production paths).
    fault: Option<Arc<FaultInjector>>,
    /// Total `append` calls through this handle (successful or not) — the
    /// fault-decision key, so a failed append does not pin its key and a
    /// caller-level retry replays a fresh decision.
    append_seq: u64,
}

/// Result of replaying a log file.
#[derive(Debug, Clone)]
pub struct WalRecovery {
    /// The recovered label store.
    pub labels: LabelStore,
    /// Number of records successfully replayed.
    pub recovered_records: usize,
    /// Whether replay stopped early because of a corrupt or truncated record.
    pub truncated: bool,
}

impl LabelWal {
    /// Opens (creating if necessary) the log at `path` for appending with the
    /// default durability mode ([`WalSync::Always`]).
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        Self::open_with_sync(path, WalSync::default())
    }

    /// Opens (creating if necessary) the log at `path` for appending with an
    /// explicit durability mode.
    pub fn open_with_sync(path: &Path, sync: WalSync) -> Result<Self, StorageError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(StorageError::Io)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            records_written: 0,
            sync,
            fault: None,
            append_seq: 0,
        })
    }

    /// Installs a deterministic fault injector exercising the `WalAppend`
    /// (torn write) and `WalFsync` sites. Decision keys are the handle's
    /// append sequence number, so a given call sequence fails identically on
    /// every replay.
    pub fn set_fault_injector(&mut self, fault: Option<Arc<FaultInjector>>) {
        self.fault = fault;
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The durability mode this handle was opened with.
    pub fn sync_mode(&self) -> WalSync {
        self.sync
    }

    /// Number of records appended through this handle.
    pub fn records_written(&self) -> usize {
        self.records_written
    }

    /// Appends one label record. The record is always flushed to the OS; under
    /// [`WalSync::Always`] it is additionally `sync_data()`-ed to stable
    /// storage before this call returns.
    pub fn append(&mut self, record: &LabelRecord) -> Result<(), StorageError> {
        let body = encode_record_body(record);
        let mut framed = Writer::with_capacity(body.len() + 8);
        framed.put_u32(body.len() as u32);
        let crc = fnv1a(&body);
        let mut bytes = framed.into_bytes();
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let key = self.append_seq;
        self.append_seq += 1;
        if let Some(inj) = &self.fault {
            if inj.should_fail(FaultSite::WalAppend, key, 0) {
                // A torn write: only a prefix of the frame reaches the file
                // before the (injected) I/O error. Replay must recover every
                // record appended before this one.
                let torn = &bytes[..bytes.len() / 2];
                self.file.write_all(torn).map_err(StorageError::Io)?;
                self.file.flush().map_err(StorageError::Io)?;
                return Err(StorageError::Io(std::io::Error::other(
                    "injected torn WAL append",
                )));
            }
        }
        self.file.write_all(&bytes).map_err(StorageError::Io)?;
        self.file.flush().map_err(StorageError::Io)?;
        if self.sync == WalSync::Always {
            if let Some(inj) = &self.fault {
                if inj.should_fail(FaultSite::WalFsync, key, 0) {
                    // The record reached OS buffers but durability is
                    // unknown: the append reports the error and does not
                    // count the record as written.
                    return Err(StorageError::Io(std::io::Error::other(
                        "injected WAL fsync failure",
                    )));
                }
            }
            self.file.sync_data().map_err(StorageError::Io)?;
        }
        self.records_written += 1;
        Ok(())
    }

    /// Forces everything appended so far onto stable storage, regardless of
    /// the configured mode.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data().map_err(StorageError::Io)
    }

    /// Replays a log file into a fresh [`LabelStore`]. Replay is tolerant of a
    /// trailing partial record (a torn final write) but reports it.
    pub fn replay(path: &Path) -> Result<WalRecovery, StorageError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StorageError::Io(e)),
        };
        let mut labels = LabelStore::new();
        let mut offset = 0usize;
        let mut recovered = 0usize;
        let mut truncated = false;
        while offset + 4 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            let body_start = offset + 4;
            let crc_end = body_start + len + 4;
            if crc_end > bytes.len() {
                truncated = true;
                break;
            }
            let body = &bytes[body_start..body_start + len];
            let stored_crc =
                u32::from_le_bytes(bytes[body_start + len..crc_end].try_into().unwrap());
            if fnv1a(body) != stored_crc {
                truncated = true;
                break;
            }
            match decode_record_body(body) {
                Ok(record) => {
                    labels.add(record);
                    recovered += 1;
                    offset = crc_end;
                }
                Err(_) => {
                    truncated = true;
                    break;
                }
            }
        }
        Ok(WalRecovery {
            labels,
            recovered_records: recovered,
            truncated,
        })
    }

    /// Truncates the log (typically after its contents have been folded into
    /// a snapshot).
    pub fn truncate(&mut self) -> Result<(), StorageError> {
        self.file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)
            .map_err(StorageError::Io)?;
        // Reopen in append mode for subsequent writes.
        self.file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(StorageError::Io)?;
        self.records_written = 0;
        Ok(())
    }
}

impl Drop for LabelWal {
    fn drop(&mut self) {
        // Close-time durability for the deferred mode (best effort — Drop
        // cannot report errors; callers who must know use [`LabelWal::sync`]).
        // `Always` already synced every append.
        if self.sync == WalSync::OnClose {
            let _ = self.file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ve_storage_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.wal", std::process::id()))
    }

    fn sample(i: u64) -> LabelRecord {
        LabelRecord {
            vid: VideoId(i),
            range: TimeRange::new(i as f64, i as f64 + 1.0),
            classes: vec![(i % 5) as usize, ((i + 1) % 5) as usize],
            iteration: i as u32,
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_path("round_trip");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = LabelWal::open(&path).unwrap();
            for i in 0..25 {
                wal.append(&sample(i)).unwrap();
            }
            assert_eq!(wal.records_written(), 25);
        }
        let recovery = LabelWal::replay(&path).unwrap();
        assert_eq!(recovery.recovered_records, 25);
        assert!(!recovery.truncated);
        assert_eq!(recovery.labels.len(), 25);
        assert_eq!(recovery.labels.records()[7].vid, VideoId(7));
        assert_eq!(recovery.labels.records()[7].classes, vec![2, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let path = temp_path("missing_file_never_created");
        std::fs::remove_file(&path).ok();
        let recovery = LabelWal::replay(&path).unwrap();
        assert_eq!(recovery.recovered_records, 0);
        assert!(!recovery.truncated);
    }

    #[test]
    fn torn_final_write_is_detected_and_prefix_recovered() {
        let path = temp_path("torn_write");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = LabelWal::open(&path).unwrap();
            for i in 0..10 {
                wal.append(&sample(i)).unwrap();
            }
        }
        // Chop a few bytes off the end to simulate a crash mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let recovery = LabelWal::replay(&path).unwrap();
        assert_eq!(recovery.recovered_records, 9);
        assert!(recovery.truncated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_body_fails_checksum() {
        let path = temp_path("bad_crc");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = LabelWal::open(&path).unwrap();
            for i in 0..5 {
                wal.append(&sample(i)).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the third record's body.
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let recovery = LabelWal::replay(&path).unwrap();
        assert!(recovery.truncated);
        assert!(recovery.recovered_records < 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appending_after_reopen_continues_the_log() {
        let path = temp_path("reopen");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = LabelWal::open(&path).unwrap();
            wal.append(&sample(0)).unwrap();
        }
        {
            let mut wal = LabelWal::open(&path).unwrap();
            wal.append(&sample(1)).unwrap();
        }
        let recovery = LabelWal::replay(&path).unwrap();
        assert_eq!(recovery.recovered_records, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_clears_the_log() {
        let path = temp_path("truncate");
        std::fs::remove_file(&path).ok();
        let mut wal = LabelWal::open(&path).unwrap();
        for i in 0..5 {
            wal.append(&sample(i)).unwrap();
        }
        wal.truncate().unwrap();
        assert_eq!(wal.records_written(), 0);
        let recovery = LabelWal::replay(&path).unwrap();
        assert_eq!(recovery.recovered_records, 0);
        // The log remains usable after truncation.
        wal.append(&sample(9)).unwrap();
        assert_eq!(LabelWal::replay(&path).unwrap().recovered_records, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_modes_round_trip_and_expose_mode() {
        for mode in [WalSync::Always, WalSync::OnClose] {
            let path = temp_path(&format!("sync_mode_{mode:?}"));
            std::fs::remove_file(&path).ok();
            {
                let mut wal = LabelWal::open_with_sync(&path, mode).unwrap();
                assert_eq!(wal.sync_mode(), mode);
                for i in 0..8 {
                    wal.append(&sample(i)).unwrap();
                }
                wal.sync().unwrap();
            }
            let recovery = LabelWal::replay(&path).unwrap();
            assert_eq!(recovery.recovered_records, 8);
            assert!(!recovery.truncated);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn default_open_is_sync_always() {
        let path = temp_path("default_sync");
        std::fs::remove_file(&path).ok();
        let wal = LabelWal::open(&path).unwrap();
        assert_eq!(wal.sync_mode(), WalSync::Always);
        drop(wal);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_after_unsynced_torn_tail_recovers_synced_prefix() {
        // Model the OnClose crash scenario: records 0..5 were appended and
        // synced; a sixth append made it only partially into the file (torn,
        // never sync_data()-ed) before the process died. Replay must recover
        // the five durable records and report the torn tail.
        let path = temp_path("unsynced_torn_tail");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = LabelWal::open_with_sync(&path, WalSync::OnClose).unwrap();
            for i in 0..5 {
                wal.append(&sample(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // Craft the torn tail by hand: the full encoding of record 5, cut
        // mid-body, appended after the synced prefix.
        let body = encode_record_body(&sample(5));
        let mut tail = (body.len() as u32).to_le_bytes().to_vec();
        tail.extend_from_slice(&body);
        tail.extend_from_slice(&fnv1a(&body).to_le_bytes());
        tail.truncate(tail.len() / 2);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&tail);
        std::fs::write(&path, &bytes).unwrap();

        let recovery = LabelWal::replay(&path).unwrap();
        assert_eq!(recovery.recovered_records, 5);
        assert!(recovery.truncated, "the torn tail must be reported");
        assert_eq!(recovery.labels.records()[4].vid, VideoId(4));
        // The log stays appendable after recovery truncation is handled by
        // the caller; appending a fresh record on top of the torn tail is a
        // caller error, so recovery rewrites are exercised via `truncate`.
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_torn_append_recovers_prefix_in_both_sync_modes() {
        use ve_sched::fault::{FaultPlan, FaultRule};
        for mode in [WalSync::Always, WalSync::OnClose] {
            let path = temp_path(&format!("injected_torn_{mode:?}"));
            std::fs::remove_file(&path).ok();
            {
                let mut wal = LabelWal::open_with_sync(&path, mode).unwrap();
                for i in 0..6 {
                    wal.append(&sample(i)).unwrap();
                }
                // Every append fails torn from here on.
                wal.set_fault_injector(Some(Arc::new(FaultInjector::new(
                    FaultPlan::new(1).with_rule(FaultSite::WalAppend, FaultRule::permanent(1.0)),
                ))));
                let err = wal.append(&sample(6)).unwrap_err();
                assert!(matches!(err, StorageError::Io(_)), "append surfaced {err}");
                assert_eq!(wal.records_written(), 6, "torn record is not counted");
            }
            let recovery = LabelWal::replay(&path).unwrap();
            assert_eq!(
                recovery.recovered_records, 6,
                "{mode:?}: every pre-fault record must be recovered"
            );
            assert!(recovery.truncated, "{mode:?}: torn tail must be reported");
            assert_eq!(recovery.labels.records()[5].vid, VideoId(5));
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn injected_fsync_failure_surfaces_as_storage_error_under_sync_always() {
        use ve_sched::fault::{FaultPlan, FaultRule};
        let path = temp_path("injected_fsync");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = LabelWal::open_with_sync(&path, WalSync::Always).unwrap();
            wal.append(&sample(0)).unwrap();
            wal.set_fault_injector(Some(Arc::new(FaultInjector::new(
                FaultPlan::new(2).with_rule(FaultSite::WalFsync, FaultRule::permanent(1.0)),
            ))));
            let err = wal.append(&sample(1)).unwrap_err();
            assert!(matches!(err, StorageError::Io(_)), "fsync surfaced {err}");
            // The record reached OS buffers — durability, not integrity, is
            // what the error reports — so replay still sees a valid frame.
            wal.set_fault_injector(None);
            wal.append(&sample(2)).unwrap();
        }
        let recovery = LabelWal::replay(&path).unwrap();
        assert_eq!(recovery.recovered_records, 3);
        assert!(!recovery.truncated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_decisions_replay_identically_per_record_index() {
        use ve_sched::fault::{FaultPlan, FaultRule};
        // Same plan, two fresh logs: the set of failing record indices must
        // be identical (decisions are pure in (seed, site, key, attempt)).
        let outcomes: Vec<Vec<bool>> = (0..2)
            .map(|run| {
                let path = temp_path(&format!("fault_replay_{run}"));
                std::fs::remove_file(&path).ok();
                let mut wal = LabelWal::open_with_sync(&path, WalSync::OnClose).unwrap();
                wal.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultPlan::uniform(
                    9,
                    FaultRule::permanent(0.5),
                )))));
                let results = (0..20).map(|i| wal.append(&sample(i)).is_ok()).collect();
                drop(wal);
                std::fs::remove_file(&path).ok();
                results
            })
            .collect();
        assert_eq!(outcomes[0], outcomes[1]);
        assert!(outcomes[0].iter().any(|ok| *ok), "p=0.5 should pass some");
        assert!(outcomes[0].iter().any(|ok| !*ok), "p=0.5 should fail some");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn arbitrary_records_round_trip(
                specs in proptest::collection::vec(
                    (0u64..500, 0.0f64..100.0, 0.1f64..5.0,
                     proptest::collection::vec(0usize..40, 0..4), 0u32..200),
                    1..20)
            ) {
                let path = temp_path(&format!("prop_{}", fnv1a(format!("{specs:?}").as_bytes())));
                std::fs::remove_file(&path).ok();
                let records: Vec<LabelRecord> = specs
                    .iter()
                    .map(|(vid, start, len, classes, iteration)| LabelRecord {
                        vid: VideoId(*vid),
                        range: TimeRange::new(*start, *start + *len),
                        classes: classes.clone(),
                        iteration: *iteration,
                    })
                    .collect();
                {
                    let mut wal = LabelWal::open(&path).unwrap();
                    for r in &records {
                        wal.append(r).unwrap();
                    }
                }
                let recovery = LabelWal::replay(&path).unwrap();
                prop_assert_eq!(recovery.recovered_records, records.len());
                prop_assert!(!recovery.truncated);
                for (a, b) in recovery.labels.records().iter().zip(&records) {
                    prop_assert_eq!(a.vid, b.vid);
                    prop_assert_eq!(&a.classes, &b.classes);
                    prop_assert_eq!(a.iteration, b.iteration);
                }
                std::fs::remove_file(&path).ok();
            }
        }
    }
}
