//! Figure 8 — model quality and latency of the VE scheduling variants.
//!
//! Compares, on Deer, K20, and K20 (skew):
//! * `VE-lazy (PP)` — feature + acquisition selection as in Section 3 but
//!   with all candidate features extracted from all videos up front,
//! * `VE-lazy (X)` for `X ∈ {10, 50, 100}` — incremental extraction of `X`
//!   candidate videos whenever active learning needs them,
//! * `VE-full` — all Task Scheduler optimizations (just-in-time training +
//!   eager background extraction).
//!
//! Expected shape: VE-full matches or exceeds the F1 of the lazy variants at a
//! fraction of the cumulative visible latency (about one second per step);
//! larger `X` improves F1 on K20 (skew) but costs more visible latency.
//!
//! ```text
//! cargo run --release -p ve-bench --bin fig8 [-- --full]
//! ```

use ve_bench::{print_header, print_row, run_averaged, with_system, Profile};
use vocalexplore::prelude::*;
use vocalexplore::PreprocessPolicy;

fn main() {
    let profile = Profile::from_args();
    println!(
        "Figure 8: scheduling variants, {} Explore steps x {} seeds (T_user = 10 s)\n",
        profile.iterations, profile.seeds
    );

    for dataset in [DatasetName::Deer, DatasetName::K20, DatasetName::K20Skew] {
        println!("--- {dataset} ---");
        let widths = [16, 9, 22, 18];
        print_header(
            &["Variant", "F1", "cum. visible latency", "per-step latency"],
            &widths,
        );

        let mut rows: Vec<(String, ve_bench::AveragedOutcome)> = Vec::new();
        // VE-lazy (PP): serial schedule + preprocess all candidate features.
        rows.push((
            "VE-lazy (PP)".to_string(),
            run_averaged(&profile, dataset, |cfg| {
                with_system(cfg, |s| {
                    s.with_strategy(SchedulerStrategy::Serial)
                        .with_preprocess(PreprocessPolicy::AllVideos)
                })
            }),
        ));
        // VE-lazy (X): VE-partial schedule, incremental extraction of X videos.
        for x in [10usize, 50, 100] {
            rows.push((
                format!("VE-lazy (X={x})"),
                run_averaged(&profile, dataset, |cfg| {
                    with_system(cfg, |s| {
                        s.with_strategy(SchedulerStrategy::VePartial)
                            .with_extra_candidates(x)
                    })
                }),
            ));
        }
        // VE-full.
        rows.push((
            "VE-full".to_string(),
            run_averaged(&profile, dataset, |cfg| {
                with_system(cfg, |s| {
                    s.with_strategy(SchedulerStrategy::VeFull)
                        .with_extra_candidates(0)
                })
            }),
        ));
        // The paper's sketched future-work extension: speculative Ts/Ti.
        rows.push((
            "VE-full (spec.)".to_string(),
            run_averaged(&profile, dataset, |cfg| {
                with_system(cfg, |s| {
                    s.with_strategy(SchedulerStrategy::VeFullSpeculative)
                        .with_extra_candidates(0)
                })
            }),
        ));

        for (name, outcome) in rows {
            print_row(
                &[
                    name,
                    format!("{:.3}", outcome.final_f1),
                    format!("{:.0} s", outcome.cumulative_visible_latency),
                    format!(
                        "{:.2} s",
                        outcome.cumulative_visible_latency / profile.iterations as f64
                    ),
                ],
                &widths,
            );
        }
        println!();
    }
}
