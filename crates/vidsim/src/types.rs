//! Core value types for the synthetic video corpus: video identity, time
//! ranges, ground-truth segments, and class vocabularies.

/// Identifier assigned to a video when it is registered (the `vid` of the
/// paper's API, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VideoId(pub u64);

impl std::fmt::Display for VideoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of an activity class within a [`Vocabulary`].
pub type ClassId = usize;

/// Half-open time interval `[start, end)` in seconds within a video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRange {
    /// Start offset in seconds.
    pub start: f64,
    /// End offset in seconds (exclusive).
    pub end: f64,
}

impl TimeRange {
    /// Creates a range, asserting `start <= end`.
    pub fn new(start: f64, end: f64) -> Self {
        assert!(start <= end, "invalid time range [{start}, {end})");
        Self { start, end }
    }

    /// Duration of the range in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Whether this range overlaps `other` (non-empty intersection).
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Midpoint of the range.
    pub fn midpoint(&self) -> f64 {
        (self.start + self.end) / 2.0
    }
}

/// Whether a dataset's segments carry exactly one activity or a set of
/// activities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Exactly one activity per segment (Deer, K20, K20 (skew), Bears).
    SingleLabel,
    /// Zero or more activities per segment (Charades verbs, BDD objects).
    MultiLabel,
}

/// Ground-truth annotation for a contiguous stretch of a video.
///
/// The `latent_seed` is the handle the `ve-features` crate uses to generate
/// deterministic per-segment embedding noise — it stands in for the actual
/// pixels of the segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Time span the annotation covers.
    pub range: TimeRange,
    /// Ground-truth activity classes present in the segment.
    pub classes: Vec<ClassId>,
    /// Deterministic seed standing in for the segment's visual content.
    pub latent_seed: u64,
}

impl Segment {
    /// Primary class of the segment (first listed), if any.
    pub fn primary_class(&self) -> Option<ClassId> {
        self.classes.first().copied()
    }
}

/// A video clip in the corpus with its metadata and ground-truth segments.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoClip {
    /// Assigned identifier.
    pub id: VideoId,
    /// Synthetic filesystem path (metadata only; nothing is read from disk).
    pub path: String,
    /// Total duration in seconds.
    pub duration: f64,
    /// Capture start time as a Unix-style timestamp in seconds, so temporal
    /// sampling strategies (e.g. the ecologists' morning/midday/evening
    /// sampling) can be expressed.
    pub start_timestamp: f64,
    /// Ground-truth segments, ordered by start time and covering `[0, duration)`.
    pub segments: Vec<Segment>,
}

impl VideoClip {
    /// Ground-truth classes present anywhere in `range`.
    pub fn classes_in(&self, range: &TimeRange) -> Vec<ClassId> {
        let mut out: Vec<ClassId> = Vec::new();
        for seg in &self.segments {
            if seg.range.overlaps(range) {
                for &c in &seg.classes {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// The segment containing time `t`, if any.
    pub fn segment_at(&self, t: f64) -> Option<&Segment> {
        self.segments
            .iter()
            .find(|s| s.range.start <= t && t < s.range.end)
    }

    /// Number of whole `window`-second windows in the clip.
    pub fn num_windows(&self, window: f64) -> usize {
        assert!(window > 0.0);
        (self.duration / window).floor() as usize
    }
}

/// The label vocabulary for a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocabulary {
    names: Vec<String>,
}

impl Vocabulary {
    /// Builds a vocabulary from class names.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "vocabulary cannot be empty");
        Self { names }
    }

    /// Builds a vocabulary of `k` generated names with the given prefix.
    pub fn generated(prefix: &str, k: usize) -> Self {
        assert!(k > 0);
        Self {
            names: (0..k).map(|i| format!("{prefix}_{i}")).collect(),
        }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of class `c`.
    pub fn name(&self, c: ClassId) -> &str {
        &self.names[c]
    }

    /// Index of the class with the given name.
    pub fn index_of(&self, name: &str) -> Option<ClassId> {
        self.names.iter().position(|n| n == name)
    }

    /// Iterates over `(ClassId, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_range_basics() {
        let r = TimeRange::new(2.0, 5.0);
        assert_eq!(r.duration(), 3.0);
        assert_eq!(r.midpoint(), 3.5);
        assert!(r.overlaps(&TimeRange::new(4.0, 6.0)));
        assert!(
            !r.overlaps(&TimeRange::new(5.0, 6.0)),
            "touching is not overlap"
        );
        assert!(!r.overlaps(&TimeRange::new(0.0, 2.0)));
    }

    #[test]
    #[should_panic(expected = "invalid time range")]
    fn time_range_rejects_reversed() {
        TimeRange::new(5.0, 2.0);
    }

    #[test]
    fn clip_classes_in_range() {
        let clip = VideoClip {
            id: VideoId(1),
            path: "clip1.mp4".into(),
            duration: 10.0,
            start_timestamp: 0.0,
            segments: vec![
                Segment {
                    range: TimeRange::new(0.0, 5.0),
                    classes: vec![0],
                    latent_seed: 1,
                },
                Segment {
                    range: TimeRange::new(5.0, 10.0),
                    classes: vec![1, 2],
                    latent_seed: 2,
                },
            ],
        };
        assert_eq!(clip.classes_in(&TimeRange::new(0.0, 4.0)), vec![0]);
        assert_eq!(clip.classes_in(&TimeRange::new(4.0, 6.0)), vec![0, 1, 2]);
        assert_eq!(clip.classes_in(&TimeRange::new(6.0, 9.0)), vec![1, 2]);
        assert_eq!(clip.segment_at(7.0).unwrap().classes, vec![1, 2]);
        assert!(clip.segment_at(10.0).is_none());
        assert_eq!(clip.num_windows(1.0), 10);
        assert_eq!(clip.num_windows(3.0), 3);
    }

    #[test]
    fn vocabulary_lookup() {
        let v = Vocabulary::new(vec!["bedded", "foraging", "traveling"]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.name(1), "foraging");
        assert_eq!(v.index_of("traveling"), Some(2));
        assert_eq!(v.index_of("swimming"), None);
        assert_eq!(v.iter().count(), 3);
    }

    #[test]
    fn generated_vocabulary() {
        let v = Vocabulary::generated("class", 4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.name(3), "class_3");
    }

    #[test]
    fn video_id_display() {
        assert_eq!(VideoId(42).to_string(), "v42");
    }

    #[test]
    #[should_panic(expected = "vocabulary cannot be empty")]
    fn empty_vocabulary_rejected() {
        Vocabulary::new(Vec::<String>::new());
    }
}
