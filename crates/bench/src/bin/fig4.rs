//! Figure 4 — macro F1 per feature extractor (and Concat) per dataset.
//!
//! For every dataset, trains models on labels collected with
//! `VE-sample (CM)` sampling while holding the feature extractor fixed, and
//! reports the final macro F1 for each extractor plus the concatenation of
//! all extractors. The headline findings to reproduce: the best feature
//! varies across datasets (video models on Deer, MViT on K20 (skew) and
//! Charades, CLIP variants on BDD), the Random feature is always worst, and
//! Concat does not beat the best single feature.
//!
//! ```text
//! cargo run --release -p ve-bench --bin fig4 [-- --full]
//! ```

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ve_al::VeSampleConfig;
use ve_bench::{print_header, print_row, run_averaged, with_fixed_feature, with_sampling, Profile};
use ve_features::FeatureSimulator;
use ve_ml::{
    macro_f1, macro_f1_multilabel, Classifier, OneVsRestModel, SoftmaxModel, StandardScaler,
    TrainConfig,
};
use ve_vidsim::{Dataset, TaskKind, TimeRange};
use vocalexplore::prelude::*;
use vocalexplore::SamplingPolicy;

fn main() {
    let profile = Profile::from_args();
    println!(
        "Figure 4: F1 per feature extractor (VE-sample (CM) sampling), {} iterations x {} seeds\n",
        profile.iterations, profile.seeds
    );

    let mut widths = vec![12usize];
    widths.extend(std::iter::repeat_n(9, 6));
    let extractor_names: Vec<String> = ExtractorId::all().iter().map(|e| e.to_string()).collect();
    let mut header = vec!["Dataset"];
    header.extend(extractor_names.iter().map(|s| s.as_str()));
    header.push("Concat");
    print_header(&header, &widths);

    for dataset in DatasetName::all() {
        let mut cells = vec![dataset.to_string()];
        let mut best = (String::new(), f64::MIN);
        for extractor in ExtractorId::all() {
            let outcome = run_averaged(&profile, dataset, |cfg| {
                let cfg = with_sampling(
                    cfg,
                    SamplingPolicy::VeSample(VeSampleConfig::cluster_margin()),
                );
                with_fixed_feature(cfg, extractor)
            });
            if outcome.final_f1 > best.1 {
                best = (extractor.to_string(), outcome.final_f1);
            }
            cells.push(format!("{:.3}", outcome.final_f1));
        }
        cells.push(format!("{:.3}", concat_f1(&profile, dataset)));
        print_row(&cells, &widths);
        println!(
            "  -> best single feature on {dataset}: {} (F1 {:.3})",
            best.0, best.1
        );
    }
    println!(
        "\nExpected shape: R3D/MViT lead on Deer, MViT leads on K20 (skew) and Charades, the CLIP\n\
         variants lead on BDD, Random is always worst, and Concat does not beat the best single\n\
         feature."
    );
}

/// The "Concat" baseline: every candidate extractor's embedding concatenated
/// into one long feature vector, trained on the same labeling budget
/// (`iterations × 5` random labeled windows) and evaluated on the held-out
/// set. Averaged over the profile's seeds.
fn concat_f1(profile: &Profile, dataset: DatasetName) -> f64 {
    let mut scores = Vec::new();
    for seed in 0..profile.seeds {
        let seed = seed * 101 + 7;
        let cfg = profile.session(dataset, seed);
        let ds = Dataset::scaled(dataset, cfg.scale, seed);
        let sim = FeatureSimulator::new(dataset, ds.vocabulary.len(), seed);
        let oracle = GroundTruthOracle::new(ds.spec.task);
        let budget = profile.iterations * 5;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut videos: Vec<usize> = (0..ds.train.len()).collect();
        videos.shuffle(&mut rng);

        let mut feats = Vec::new();
        let mut single = Vec::new();
        let mut multi = Vec::new();
        for &vi in videos.iter().take(budget) {
            let clip = &ds.train.videos()[vi];
            let range = TimeRange::new(0.0, cfg.clip_len.min(clip.duration));
            let classes = oracle.label(&ds.train, clip.id, &range);
            let fv = sim.extract_concat(clip, &range);
            match ds.spec.task {
                TaskKind::SingleLabel => {
                    if let Some(&c) = classes.first() {
                        feats.push(fv.data);
                        single.push(c);
                    }
                }
                TaskKind::MultiLabel => {
                    feats.push(fv.data);
                    multi.push(classes);
                }
            }
        }
        if feats.len() < 10 {
            continue;
        }
        let (scaled, scaler) = StandardScaler::fit_transform(&feats);
        let train_cfg = TrainConfig {
            epochs: profile.epochs,
            ..TrainConfig::default()
        };
        // Evaluate on the middle window of every held-out video.
        let eval: Vec<(&ve_vidsim::VideoClip, TimeRange)> = ds
            .eval
            .videos()
            .iter()
            .map(|c| {
                let mid = (c.duration / 2.0).floor();
                (c, TimeRange::new(mid, (mid + cfg.clip_len).min(c.duration)))
            })
            .collect();
        let score = match ds.spec.task {
            TaskKind::SingleLabel => {
                let distinct: std::collections::HashSet<usize> = single.iter().copied().collect();
                if distinct.len() < 2 {
                    continue;
                }
                let model = SoftmaxModel::fit(&scaled, &single, ds.vocabulary.len(), &train_cfg);
                let mut y_true = Vec::new();
                let mut y_pred = Vec::new();
                for (clip, range) in &eval {
                    let Some(truth) = clip
                        .segment_at(range.midpoint())
                        .and_then(|s| s.primary_class())
                    else {
                        continue;
                    };
                    let x = scaler.transform(&sim.extract_concat(clip, range).data);
                    y_true.push(truth);
                    y_pred.push(model.predict(&x));
                }
                macro_f1(&y_true, &y_pred, ds.vocabulary.len())
            }
            TaskKind::MultiLabel => {
                let model = OneVsRestModel::fit(&scaled, &multi, ds.vocabulary.len(), &train_cfg);
                let mut y_true = Vec::new();
                let mut y_pred = Vec::new();
                for (clip, range) in &eval {
                    let x = scaler.transform(&sim.extract_concat(clip, range).data);
                    let probs = model.predict_proba(&x);
                    y_pred.push(
                        probs
                            .iter()
                            .enumerate()
                            .filter(|(_, &p)| p >= 0.5)
                            .map(|(c, _)| c)
                            .collect::<Vec<_>>(),
                    );
                    y_true.push(clip.classes_in(range));
                }
                macro_f1_multilabel(&y_true, &y_pred, ds.vocabulary.len())
            }
        };
        scores.push(score);
    }
    ve_stats::mean(&scores)
}
