//! Classification metrics. The paper evaluates every experiment with the
//! **macro F1 score** computed over a held-out evaluation set (Section 5,
//! Metrics), and the ALM internally estimates feature quality with macro F1
//! over cross-validation splits.

/// Confusion matrix for a single-label task: `matrix[true][pred]`.
pub fn confusion_matrix(y_true: &[usize], y_pred: &[usize], num_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        assert!(t < num_classes && p < num_classes, "class out of range");
        m[t][p] += 1;
    }
    m
}

/// Per-class precision, recall, and F1 for a single-label task.
///
/// Classes with no true and no predicted instances get an F1 of 0, matching
/// scikit-learn's `f1_score(average=None, zero_division=0)` convention that
/// the paper's prototype relies on (macro F1 over the *full* vocabulary, even
/// when some classes have no labels yet).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationReport {
    /// Per-class precision.
    pub precision: Vec<f64>,
    /// Per-class recall.
    pub recall: Vec<f64>,
    /// Per-class F1.
    pub f1: Vec<f64>,
    /// Per-class support (number of true instances).
    pub support: Vec<usize>,
}

impl ClassificationReport {
    /// Macro-averaged F1 across all classes.
    pub fn macro_f1(&self) -> f64 {
        if self.f1.is_empty() {
            return 0.0;
        }
        // ve-lint: allow(float-reduction-order) -- per-class scores are in fixed class order
        self.f1.iter().sum::<f64>() / self.f1.len() as f64
    }

    /// Macro F1 restricted to classes with at least one true instance.
    pub fn macro_f1_present_classes(&self) -> f64 {
        let present: Vec<f64> = self
            .f1
            .iter()
            .zip(&self.support)
            .filter(|(_, &s)| s > 0)
            .map(|(&f, _)| f)
            .collect();
        if present.is_empty() {
            0.0
        } else {
            // ve-lint: allow(float-reduction-order) -- per-class scores are in fixed class order
            present.iter().sum::<f64>() / present.len() as f64
        }
    }
}

/// Builds a [`ClassificationReport`] from single-label predictions.
pub fn per_class_f1(
    y_true: &[usize],
    y_pred: &[usize],
    num_classes: usize,
) -> ClassificationReport {
    let cm = confusion_matrix(y_true, y_pred, num_classes);
    let mut precision = vec![0.0; num_classes];
    let mut recall = vec![0.0; num_classes];
    let mut f1 = vec![0.0; num_classes];
    let mut support = vec![0usize; num_classes];
    for c in 0..num_classes {
        let tp = cm[c][c] as f64;
        let fp: f64 = (0..num_classes)
            .filter(|&t| t != c)
            .map(|t| cm[t][c] as f64)
            // ve-lint: allow(float-reduction-order) -- range iteration order is fixed
            .sum::<f64>();
        let fn_: f64 = (0..num_classes)
            .filter(|&p| p != c)
            .map(|p| cm[c][p] as f64)
            // ve-lint: allow(float-reduction-order) -- range iteration order is fixed
            .sum::<f64>();
        support[c] = cm[c].iter().sum::<usize>();
        precision[c] = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        recall[c] = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        f1[c] = if precision[c] + recall[c] > 0.0 {
            2.0 * precision[c] * recall[c] / (precision[c] + recall[c])
        } else {
            0.0
        };
    }
    ClassificationReport {
        precision,
        recall,
        f1,
        support,
    }
}

/// Macro F1 over the full vocabulary for a single-label task.
pub fn macro_f1(y_true: &[usize], y_pred: &[usize], num_classes: usize) -> f64 {
    per_class_f1(y_true, y_pred, num_classes).macro_f1()
}

/// Simple accuracy for a single-label task.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    correct as f64 / y_true.len() as f64
}

/// Macro F1 for a multi-label task. `y_true` / `y_pred` hold, per example,
/// the set of positive class indices (predictions usually obtained by
/// thresholding per-class probabilities at 0.5).
pub fn macro_f1_multilabel(
    y_true: &[Vec<usize>],
    y_pred: &[Vec<usize>],
    num_classes: usize,
) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut tp = vec![0.0f64; num_classes];
    let mut fp = vec![0.0f64; num_classes];
    let mut fn_ = vec![0.0f64; num_classes];
    for (truth, pred) in y_true.iter().zip(y_pred) {
        for c in 0..num_classes {
            let t = truth.contains(&c);
            let p = pred.contains(&c);
            match (t, p) {
                (true, true) => tp[c] += 1.0,
                (false, true) => fp[c] += 1.0,
                (true, false) => fn_[c] += 1.0,
                (false, false) => {}
            }
        }
    }
    let mut total = 0.0;
    for c in 0..num_classes {
        let prec = if tp[c] + fp[c] > 0.0 {
            tp[c] / (tp[c] + fp[c])
        } else {
            0.0
        };
        let rec = if tp[c] + fn_[c] > 0.0 {
            tp[c] / (tp[c] + fn_[c])
        } else {
            0.0
        };
        total += if prec + rec > 0.0 {
            2.0 * prec * rec / (prec + rec)
        } else {
            0.0
        };
    }
    total / num_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_basic() {
        let cm = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 0, 2], 3);
        assert_eq!(cm[0][0], 1);
        assert_eq!(cm[1][1], 1);
        assert_eq!(cm[1][0], 1);
        assert_eq!(cm[2][2], 1);
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let y = vec![0, 1, 2, 0, 1, 2];
        assert!((macro_f1(&y, &y, 3) - 1.0).abs() < 1e-12);
        assert!((accuracy(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_wrong_predictions_give_f1_zero() {
        let y_true = vec![0, 0, 1, 1];
        let y_pred = vec![1, 1, 0, 0];
        assert!(macro_f1(&y_true, &y_pred, 2) < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_ignoring_minority_class() {
        // Predicting the majority class everywhere: class 1 recall = 0.
        let y_true = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let y_pred = vec![0; 10];
        let f1 = macro_f1(&y_true, &y_pred, 2);
        // Class 0: P=0.8, R=1.0 -> F1≈0.889. Class 1: 0. Macro ≈ 0.444.
        assert!((f1 - 0.4444).abs() < 0.01, "f1={f1}");
        // Accuracy looks deceptively high.
        assert!((accuracy(&y_true, &y_pred) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unlabeled_vocabulary_classes_drag_macro_f1_down() {
        // Vocabulary of 4 classes, but only classes 0 and 1 appear.
        let y_true = vec![0, 0, 1, 1];
        let y_pred = vec![0, 0, 1, 1];
        let report = per_class_f1(&y_true, &y_pred, 4);
        assert!((report.macro_f1() - 0.5).abs() < 1e-12);
        assert!((report.macro_f1_present_classes() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_precision_recall_values() {
        let y_true = vec![0, 0, 1, 1, 1];
        let y_pred = vec![0, 1, 1, 1, 0];
        let r = per_class_f1(&y_true, &y_pred, 2);
        assert!((r.precision[0] - 0.5).abs() < 1e-12);
        assert!((r.recall[0] - 0.5).abs() < 1e-12);
        assert!((r.precision[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.recall[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.support, vec![2, 3]);
    }

    #[test]
    fn multilabel_macro_f1_basic() {
        let y_true = vec![vec![0, 1], vec![1], vec![], vec![0]];
        let y_pred = vec![vec![0, 1], vec![1], vec![], vec![0]];
        assert!((macro_f1_multilabel(&y_true, &y_pred, 2) - 1.0).abs() < 1e-12);

        // Class 0: tp=0 → F1 0. Class 1: P=R=0.5 → F1 0.5. Macro = 0.25.
        let y_pred_bad = vec![vec![1], vec![0], vec![0], vec![1]];
        assert!((macro_f1_multilabel(&y_true, &y_pred_bad, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multilabel_partial_overlap() {
        let y_true = vec![vec![0, 1], vec![0]];
        let y_pred = vec![vec![0], vec![0, 1]];
        // Class 0: tp=2, fp=0, fn=0 -> F1 = 1.
        // Class 1: tp=0, fp=1, fn=1 -> F1 = 0.
        let f1 = macro_f1_multilabel(&y_true, &y_pred, 2);
        assert!((f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_is_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn confusion_matrix_rejects_mismatched_lengths() {
        confusion_matrix(&[0, 1], &[0], 2);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn confusion_matrix_rejects_out_of_range() {
        confusion_matrix(&[0, 3], &[0, 1], 2);
    }
}
