//! Metrics registry: counters, gauges, and fixed-bucket histograms with
//! deterministic bucket math.
//!
//! All values are integers (counts, or durations in microseconds) and every
//! derived statistic — including the p50/p99 summaries — is computed with
//! integer arithmetic over fixed bucket bounds, so a snapshot is a pure
//! function of the observation multiset: no float accumulation order, no
//! environment-dependent rounding.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Fixed-bucket histogram over `u64` values. Bucket `i` counts observations
/// `v <= bounds[i]` (the first bucket they fit); values above the last bound
/// land in an implicit overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Default latency bounds: powers of two from 1 µs to ~17 s. Fixed at
/// compile time so every histogram in the repo buckets identically.
pub fn default_latency_bounds() -> Vec<u64> {
    (0..25).map(|i| 1u64 << i).collect()
}

impl Histogram {
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n],
            overflow: 0,
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn with_default_bounds() -> Self {
        Self::new(default_latency_bounds())
    }

    pub fn observe(&mut self, v: u64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Quantile estimate as the upper bound of the first bucket whose
    /// cumulative count reaches `ceil(q_num/q_den * total)`. Integer math
    /// only; `quantile(1, 2)` is the p50 estimate, `quantile(99, 100)` p99.
    /// Observations past the last bound report the true maximum.
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        assert!(q_den > 0 && q_num <= q_den);
        if self.total == 0 {
            return 0;
        }
        let rank = self.total.saturating_mul(q_num).div_ceil(q_den).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds[i];
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(1, 2)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }
}

#[derive(Default)]
struct RegistryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// An immutable copy of the registry, for export and assertions.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Hand-rolled JSON rendering (no serde in this environment). Keys come
    /// out in `BTreeMap` order, so the document is deterministic.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(k));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(k));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p99\": {}}}",
                esc(k),
                h.total(),
                h.sum(), // ve-lint: allow(float-reduction-order) -- Histogram::sum is a u64 accessor, not an iterator reduction
                h.min(),
                h.max(),
                h.p50(),
                h.p99()
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Thread-safe registry. Disabled sinks cost one relaxed atomic load per
/// call site via the owner's gating; the registry itself is always live.
pub struct MetricsRegistry {
    series: Mutex<RegistryState>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self {
            series: Mutex::new(RegistryState::default()),
        }
    }

    pub fn inc(&self, name: &str, by: u64) {
        let mut state = self.series.lock().expect("obs.metrics poisoned");
        *state.counters.entry(name.to_string()).or_insert(0) += by;
    }

    pub fn set_gauge(&self, name: &str, value: i64) {
        let mut state = self.series.lock().expect("obs.metrics poisoned");
        state.gauges.insert(name.to_string(), value);
    }

    /// Raises a gauge to `value` if it is below it (high-water semantics).
    pub fn raise_gauge(&self, name: &str, value: i64) {
        let mut state = self.series.lock().expect("obs.metrics poisoned");
        let g = state.gauges.entry(name.to_string()).or_insert(i64::MIN);
        if *g < value {
            *g = value;
        }
    }

    pub fn observe(&self, name: &str, value: u64) {
        let mut state = self.series.lock().expect("obs.metrics poisoned");
        state
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::with_default_bounds)
            .observe(value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        let state = self.series.lock().expect("obs.metrics poisoned");
        state.counters.get(name).copied().unwrap_or(0)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.series.lock().expect("obs.metrics poisoned");
        MetricsSnapshot {
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state.histograms.clone(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_use_integer_bucket_math() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for _ in 0..50 {
            h.observe(5);
        }
        for _ in 0..49 {
            h.observe(50);
        }
        h.observe(5000); // overflow
        assert_eq!(h.total(), 100);
        assert_eq!(h.p50(), 10); // rank 50 lands in the first bucket
        assert_eq!(h.quantile(99, 100), 100); // rank 99 in the second
        assert_eq!(h.quantile(1, 1), 5000); // overflow reports the true max
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn histogram_is_a_pure_function_of_the_observation_multiset() {
        let mut a = Histogram::with_default_bounds();
        let mut b = Histogram::with_default_bounds();
        for v in [3u64, 900, 17, 17, 250_000] {
            a.observe(v);
        }
        for v in [250_000u64, 17, 3, 900, 17] {
            b.observe(v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn registry_snapshot_round_trips_and_renders() {
        let reg = MetricsRegistry::new();
        reg.inc("fm.cache_hits", 3);
        reg.inc("fm.cache_hits", 2);
        reg.set_gauge("queue.depth_hwm.critical", 7);
        reg.observe("train.run_us", 1234);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["fm.cache_hits"], 5);
        assert_eq!(snap.gauges["queue.depth_hwm.critical"], 7);
        assert_eq!(snap.histograms["train.run_us"].total(), 1);
        let json = snap.render_json();
        assert!(json.contains("\"fm.cache_hits\": 5"));
        assert!(json.contains("\"p50\""));
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::with_default_bounds();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
    }
}
