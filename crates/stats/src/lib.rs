//! `ve-stats` — statistical primitives used by VOCALExplore's Active Learning
//! Manager.
//!
//! This crate implements the two skew-detection tests described in Section 3.1
//! and Appendix A of the paper:
//!
//! * the **k-sample Anderson–Darling test** ([`k_sample_anderson_darling`])
//!   used by `VE-sample` to decide whether the label distribution collected so
//!   far is sufficiently skewed to justify switching from random sampling to
//!   active learning (switch when `p <= 0.001`), and
//! * the **frequency-based binomial test** ([`frequency_test_p_value`]) from
//!   Appendix A, whose p-value is bounded by
//!   `k * P[Binomial(n, 1/(m*k)) <= min_i C_i]`.
//!
//! It also provides supporting numerics (binomial CDF, ln-gamma, normal
//! sampling via Box–Muller) and the Zipfian class-frequency generator used to
//! construct the K20 (skew) dataset, plus descriptive statistics
//! ([`describe`]) used throughout the benchmark harness.

pub mod anderson_darling;
pub mod describe;
pub mod distributions;
pub mod freq_test;
pub mod numeric;
pub mod skew;

pub use anderson_darling::{k_sample_anderson_darling, AndersonDarlingResult};
pub use describe::{iqr, mean, median, percentile, std_dev, Summary};
pub use distributions::{zipf_frequencies, BoxMuller, Zipf};
pub use freq_test::{frequency_test_p_value, FrequencyTest};
pub use numeric::{binomial_cdf, binomial_pmf, ln_beta, ln_gamma, regularized_incomplete_beta};
pub use skew::{s_max, SkewDetector, SkewTest};
