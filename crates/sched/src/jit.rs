//! Just-in-time model training (Section 4.1).
//!
//! Scheduling a training task after every label floods the queue and wastes
//! work (most of those models are never used); scheduling only at the end of
//! an iteration leaves the user looking at a stale model. The ALM instead
//! tracks the observed labeling time `T_user` and training latency `T_m` and
//! schedules one training task after
//! `max(0, B − ⌈T_m / T_user⌉)` labels of the current batch have arrived —
//! the latest point at which the model can still be ready for the next
//! iteration. When training takes longer than a whole iteration the task is
//! scheduled at the first label and the model is expected to be ready
//! `⌈T_m / (B·T_user)⌉` iterations later.

/// Decision produced by the policy for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingSchedule {
    /// Schedule the training task after this many labels of the batch have
    /// been collected (0-based count; 0 means "immediately, at the first
    /// label").
    pub schedule_after_labels: usize,
    /// Number of iterations after the current one before the trained model is
    /// expected to be available for inference (1 = ready by the next call).
    pub ready_in_iterations: usize,
}

/// Policy tracking observed `T_user` and `T_m` with exponential smoothing and
/// emitting per-iteration schedules.
#[derive(Debug, Clone)]
pub struct JitTrainingPolicy {
    batch_size: usize,
    avg_t_user: f64,
    avg_t_train: f64,
    alpha: f64,
    observed_user: usize,
    observed_train: usize,
}

impl JitTrainingPolicy {
    /// Creates a policy with initial estimates of the labeling time and
    /// training latency.
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or the initial estimates are not positive.
    pub fn new(batch_size: usize, initial_t_user: f64, initial_t_train: f64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(initial_t_user > 0.0, "T_user estimate must be positive");
        assert!(initial_t_train > 0.0, "T_m estimate must be positive");
        Self {
            batch_size,
            avg_t_user: initial_t_user,
            avg_t_train: initial_t_train,
            alpha: 0.3,
            observed_user: 0,
            observed_train: 0,
        }
    }

    /// Batch size `B`.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Current estimate of the per-label labeling time.
    pub fn t_user(&self) -> f64 {
        self.avg_t_user
    }

    /// Current estimate of the training latency.
    pub fn t_train(&self) -> f64 {
        self.avg_t_train
    }

    /// Records an observed labeling duration for one segment.
    pub fn observe_labeling(&mut self, seconds: f64) {
        assert!(seconds >= 0.0);
        self.avg_t_user = blend(self.avg_t_user, seconds, self.alpha, self.observed_user);
        self.observed_user += 1;
    }

    /// Records an observed model-training duration.
    pub fn observe_training(&mut self, seconds: f64) {
        assert!(seconds >= 0.0);
        self.avg_t_train = blend(self.avg_t_train, seconds, self.alpha, self.observed_train);
        self.observed_train += 1;
    }

    /// Computes the schedule for the next iteration from the current
    /// estimates.
    pub fn schedule(&self) -> TrainingSchedule {
        let b = self.batch_size;
        let iters_needed = (self.avg_t_train / self.avg_t_user).ceil() as usize;
        let after = b.saturating_sub(iters_needed.max(1));
        // When training cannot finish within the remaining labeling time of
        // this batch, it is scheduled at the first label and becomes ready
        // ceil(T_m / (B * T_user)) iterations later.
        let ready_in = if iters_needed >= b {
            ((self.avg_t_train / (b as f64 * self.avg_t_user)).ceil() as usize).max(1)
        } else {
            1
        };
        TrainingSchedule {
            schedule_after_labels: after,
            ready_in_iterations: ready_in,
        }
    }
}

fn blend(current: f64, observation: f64, alpha: f64, observed: usize) -> f64 {
    if observed == 0 {
        observation
    } else {
        alpha * observation + (1.0 - alpha) * current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_training_schedules_at_last_label() {
        // T_m (2 s) < T_user (10 s): schedule while the user labels the last
        // example, i.e. after B - 1 = 4 labels.
        let policy = JitTrainingPolicy::new(5, 10.0, 2.0);
        let s = policy.schedule();
        assert_eq!(s.schedule_after_labels, 4);
        assert_eq!(s.ready_in_iterations, 1);
    }

    #[test]
    fn moderate_training_schedules_earlier() {
        // T_m = 25 s, T_user = 10 s -> ceil(25/10) = 3 -> schedule after 2 labels.
        let policy = JitTrainingPolicy::new(5, 10.0, 25.0);
        let s = policy.schedule();
        assert_eq!(s.schedule_after_labels, 2);
        assert_eq!(s.ready_in_iterations, 1);
    }

    #[test]
    fn slow_training_schedules_immediately_and_spans_iterations() {
        // T_m = 120 s > B * T_user = 50 s: schedule at the first label and
        // expect the model ceil(120/50) = 3 iterations later.
        let policy = JitTrainingPolicy::new(5, 10.0, 120.0);
        let s = policy.schedule();
        assert_eq!(s.schedule_after_labels, 0);
        assert_eq!(s.ready_in_iterations, 3);
    }

    #[test]
    fn boundary_training_equal_to_iteration() {
        // T_m exactly B * T_user: still scheduled at the first label.
        let policy = JitTrainingPolicy::new(5, 10.0, 50.0);
        let s = policy.schedule();
        assert_eq!(s.schedule_after_labels, 0);
        assert_eq!(s.ready_in_iterations, 1);
    }

    #[test]
    fn estimates_adapt_to_observations() {
        let mut policy = JitTrainingPolicy::new(5, 10.0, 2.0);
        // The user turns out to be much faster and training much slower.
        for _ in 0..20 {
            policy.observe_labeling(1.0);
            policy.observe_training(30.0);
        }
        assert!(policy.t_user() < 2.0);
        assert!(policy.t_train() > 20.0);
        let s = policy.schedule();
        assert_eq!(
            s.schedule_after_labels, 0,
            "slow training now needs a head start"
        );
        assert!(s.ready_in_iterations >= 3);
    }

    #[test]
    fn first_observation_replaces_initial_estimate() {
        let mut policy = JitTrainingPolicy::new(5, 10.0, 2.0);
        policy.observe_labeling(4.0);
        assert!((policy.t_user() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn rejects_zero_batch() {
        JitTrainingPolicy::new(0, 10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "T_user estimate must be positive")]
    fn rejects_non_positive_t_user() {
        JitTrainingPolicy::new(5, 0.0, 1.0);
    }
}
