//! The candidate feature extractors of Table 3.
//!
//! | Feature       | Type  | Architecture | Pretrained       | Dim | Tput |
//! |---------------|-------|--------------|------------------|-----|------|
//! | R3D           | Video | Conv. net    | Kinetics400      | 512 | 4.03 |
//! | MViT          | Video | Transformer  | Kinetics400      | 768 | 2.93 |
//! | CLIP          | Image | Transformer  | Internet images  | 512 | 3.64 |
//! | CLIP (Pooled) | Image | Transformer  | Internet images  | 512 | 3.45 |
//! | Random        | Video | Transformer  | None             | 768 | 2.96 |
//!
//! Throughput is "the number of 10-second videos that can be processed each
//! second while running two extraction tasks on the GPU"; the Task Scheduler
//! converts it into per-task feature-extraction latency.

/// Identifier of a candidate feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtractorId {
    /// R3D convolutional video network pretrained on Kinetics400.
    R3d,
    /// MViT video transformer pretrained on Kinetics400.
    Mvit,
    /// CLIP image transformer applied to the middle frame of each window.
    Clip,
    /// CLIP applied to every other frame with max-pooling over the window.
    ClipPooled,
    /// The MViT architecture with randomized weights (a deliberately
    /// low-signal feature used to show the bandit eliminates bad arms).
    Random,
}

/// Number of candidate extractors VOCALExplore is initialized with.
pub const EXTRACTOR_COUNT: usize = 5;

impl ExtractorId {
    /// All extractors in Table 3 order.
    pub fn all() -> [ExtractorId; EXTRACTOR_COUNT] {
        [
            ExtractorId::R3d,
            ExtractorId::Mvit,
            ExtractorId::Clip,
            ExtractorId::ClipPooled,
            ExtractorId::Random,
        ]
    }

    /// Display name matching the paper.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExtractorId::R3d => "R3D",
            ExtractorId::Mvit => "MViT",
            ExtractorId::Clip => "CLIP",
            ExtractorId::ClipPooled => "CLIP (Pooled)",
            ExtractorId::Random => "Random",
        }
    }

    /// Stable dense index (0..EXTRACTOR_COUNT) for array-backed lookups.
    pub fn index(&self) -> usize {
        match self {
            ExtractorId::R3d => 0,
            ExtractorId::Mvit => 1,
            ExtractorId::Clip => 2,
            ExtractorId::ClipPooled => 3,
            ExtractorId::Random => 4,
        }
    }

    /// The extractor with the given dense index.
    ///
    /// # Panics
    /// Panics if `i >= EXTRACTOR_COUNT`.
    pub fn from_index(i: usize) -> Self {
        Self::all()[i]
    }

    /// The Table 3 spec for this extractor.
    pub fn spec(&self) -> ExtractorSpec {
        match self {
            ExtractorId::R3d => ExtractorSpec {
                id: *self,
                input: InputType::Video,
                architecture: "Conv. net",
                pretrained: Some("Kinetics400"),
                dim: 512,
                throughput_videos_per_sec: 4.03,
            },
            ExtractorId::Mvit => ExtractorSpec {
                id: *self,
                input: InputType::Video,
                architecture: "Transformer",
                pretrained: Some("Kinetics400"),
                dim: 768,
                throughput_videos_per_sec: 2.93,
            },
            ExtractorId::Clip => ExtractorSpec {
                id: *self,
                input: InputType::Image,
                architecture: "Transformer",
                pretrained: Some("Internet images"),
                dim: 512,
                throughput_videos_per_sec: 3.64,
            },
            ExtractorId::ClipPooled => ExtractorSpec {
                id: *self,
                input: InputType::Image,
                architecture: "Transformer",
                pretrained: Some("Internet images"),
                dim: 512,
                throughput_videos_per_sec: 3.45,
            },
            ExtractorId::Random => ExtractorSpec {
                id: *self,
                input: InputType::Video,
                architecture: "Transformer",
                pretrained: None,
                dim: 768,
                throughput_videos_per_sec: 2.96,
            },
        }
    }
}

impl std::fmt::Display for ExtractorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether a pretrained model consumes clips or individual frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputType {
    /// Consumes a sequence of frames (sequence length 16, stride 2, step 32).
    Video,
    /// Consumes individual frames (CLIP variants).
    Image,
}

/// Static description of one extractor (one row of Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractorSpec {
    /// Which extractor this describes.
    pub id: ExtractorId,
    /// Video or image input.
    pub input: InputType,
    /// Architecture family.
    pub architecture: &'static str,
    /// Pretraining corpus, or `None` for randomized weights.
    pub pretrained: Option<&'static str>,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Number of 10-second videos processed per second (Table 3 throughput).
    pub throughput_videos_per_sec: f64,
}

impl ExtractorSpec {
    /// Seconds of GPU time to extract this feature from a video of the given
    /// duration, derived from the Table 3 throughput (which is measured on
    /// 10-second videos).
    pub fn extraction_seconds(&self, video_duration_secs: f64) -> f64 {
        assert!(video_duration_secs >= 0.0);
        (video_duration_secs / 10.0) / self.throughput_videos_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_dims_and_throughputs() {
        assert_eq!(ExtractorId::R3d.spec().dim, 512);
        assert_eq!(ExtractorId::Mvit.spec().dim, 768);
        assert_eq!(ExtractorId::Clip.spec().dim, 512);
        assert_eq!(ExtractorId::ClipPooled.spec().dim, 512);
        assert_eq!(ExtractorId::Random.spec().dim, 768);
        assert!((ExtractorId::R3d.spec().throughput_videos_per_sec - 4.03).abs() < 1e-9);
        assert!((ExtractorId::Mvit.spec().throughput_videos_per_sec - 2.93).abs() < 1e-9);
        assert!(ExtractorId::Random.spec().pretrained.is_none());
    }

    #[test]
    fn index_round_trip() {
        for (i, e) in ExtractorId::all().iter().enumerate() {
            assert_eq!(e.index(), i);
            assert_eq!(ExtractorId::from_index(i), *e);
        }
    }

    #[test]
    fn extraction_time_scales_with_duration() {
        let spec = ExtractorId::R3d.spec();
        let t10 = spec.extraction_seconds(10.0);
        let t40 = spec.extraction_seconds(40.0);
        assert!((t10 - 1.0 / 4.03).abs() < 1e-9);
        assert!((t40 - 4.0 * t10).abs() < 1e-9);
        assert_eq!(spec.extraction_seconds(0.0), 0.0);
    }

    #[test]
    fn slower_extractors_cost_more() {
        // MViT (2.93 videos/s) must cost more per video than R3D (4.03).
        assert!(
            ExtractorId::Mvit.spec().extraction_seconds(10.0)
                > ExtractorId::R3d.spec().extraction_seconds(10.0)
        );
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ExtractorId::ClipPooled.to_string(), "CLIP (Pooled)");
        assert_eq!(ExtractorId::R3d.to_string(), "R3D");
    }
}
