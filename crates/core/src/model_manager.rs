//! The Model Manager (MM).
//!
//! "The MM trains models using the user-specified labels and performs
//! inference on these models to return predictions. [...] Our prototype MM
//! maintains one model per feature extractor. The MM trains a new model
//! whenever requested to do so by the ALM and is non-blocking: while a new
//! model is training, the MM serves requests for labels using the previously
//! trained model" (Section 2.3).

use crate::api::Prediction;
use crate::config::VocalExploreConfig;
use crate::feature_manager::FeatureManager;
use parking_lot::RwLock;
use std::sync::Arc;
use ve_features::ExtractorId;
use ve_ml::{
    Classifier, CrossValConfig, OneVsRestModel, SoftmaxModel, StandardScaler, TrainedModel,
};
use ve_storage::{LabelRecord, ModelRegistry};
use ve_vidsim::{TaskKind, TimeRange, VideoCorpus, VideoId};

/// A published model together with the scaler fitted on its training data.
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// Feature standardizer fitted on the training features.
    pub scaler: StandardScaler,
    /// The trained classifier.
    pub model: TrainedModel,
}

/// Model Manager: one (versioned) linear model per candidate feature
/// extractor.
pub struct ModelManager {
    config: VocalExploreConfig,
    registry: RwLock<ModelRegistry<FittedModel>>,
}

impl ModelManager {
    /// Creates an empty model manager.
    pub fn new(config: VocalExploreConfig) -> Self {
        Self {
            config,
            registry: RwLock::new(ModelRegistry::new()),
        }
    }

    /// Whether a trained model exists for the extractor.
    pub fn has_model(&self, extractor: ExtractorId) -> bool {
        self.registry.read().has_model(extractor)
    }

    /// Number of models published so far (all extractors, all versions).
    pub fn models_trained(&self) -> usize {
        self.registry.read().total_published()
    }

    /// Assembles the training set for an extractor from the label records.
    /// Returns `(features, single_label_targets, multi_label_targets)`; the
    /// unused target vector is empty depending on the task kind.
    fn training_set(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
    ) -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<usize>>) {
        let mut features = Vec::with_capacity(labels.len());
        let mut single = Vec::new();
        let mut multi = Vec::new();
        for record in labels {
            let Some(fv) = fm.feature_for(extractor, corpus, record.vid, &record.range) else {
                continue;
            };
            match self.config.task {
                TaskKind::SingleLabel => {
                    let Some(&class) = record.classes.first() else {
                        continue;
                    };
                    features.push(fv.data);
                    single.push(class);
                }
                TaskKind::MultiLabel => {
                    features.push(fv.data);
                    multi.push(record.classes.clone());
                }
            }
        }
        (features, single, multi)
    }

    /// Trains and publishes a new model for the extractor using all labels
    /// collected so far. Returns `false` when there are not yet enough labels
    /// (fewer than two distinct classes for single-label tasks, or fewer than
    /// two records overall).
    pub fn train(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
        iteration: u32,
        cv_f1: Option<f64>,
    ) -> bool {
        let (features, single, multi) = self.training_set(extractor, corpus, fm, labels);
        if features.len() < 2 {
            return false;
        }
        let (scaled, scaler) = StandardScaler::fit_transform(&features);
        let model = match self.config.task {
            TaskKind::SingleLabel => {
                let distinct: std::collections::HashSet<usize> = single.iter().copied().collect();
                if distinct.len() < 2 {
                    return false;
                }
                TrainedModel::Softmax(SoftmaxModel::fit(
                    &scaled,
                    &single,
                    self.config.num_classes,
                    &self.config.train,
                ))
            }
            TaskKind::MultiLabel => TrainedModel::OneVsRest(OneVsRestModel::fit(
                &scaled,
                &multi,
                self.config.num_classes,
                &self.config.train,
            )),
        };
        self.registry.write().publish(
            extractor,
            features.len(),
            iteration,
            cv_f1,
            Arc::new(FittedModel { scaler, model }),
        );
        true
    }

    /// Predictions for a video segment from the latest model of the given
    /// extractor, sorted by decreasing probability. Empty when no model has
    /// been trained yet or the video is unknown.
    pub fn predict(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        vid: VideoId,
        range: &TimeRange,
    ) -> Vec<Prediction> {
        let Some((_, fitted)) = self.registry.read().latest(extractor) else {
            return Vec::new();
        };
        let Some(fv) = fm.feature_for(extractor, corpus, vid, range) else {
            return Vec::new();
        };
        let scaled = fitted.scaler.transform(&fv.data);
        let probs = fitted.model.predict_proba(&scaled);
        let mut predictions: Vec<Prediction> = probs
            .iter()
            .enumerate()
            .map(|(class, &probability)| Prediction { class, probability })
            .collect();
        predictions.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .expect("finite probabilities")
        });
        predictions
    }

    /// Predictions for a whole batch of segments from the latest model of the
    /// given extractor (one `T_i` per segment, fanned out across the
    /// data-parallel workers — each segment is coarse enough to be worth a
    /// task by itself). Output is position-ordered and identical at any
    /// thread count. Returns empty prediction lists when no model exists.
    pub fn predict_batch(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        segments: &[(VideoId, TimeRange)],
    ) -> Vec<Vec<Prediction>> {
        if !self.has_model(extractor) {
            return segments.iter().map(|_| Vec::new()).collect();
        }
        ve_sched::parallel::par_map_tasks(segments.len(), |i| {
            let (vid, range) = &segments[i];
            self.predict(extractor, corpus, fm, *vid, range)
        })
    }

    /// Raw class probabilities for a batch of already-extracted feature
    /// vectors (used by the acquisition functions). Returns one probability
    /// row per candidate as a contiguous block, or an empty block when no
    /// model has been trained yet. Rows are scored in parallel across the
    /// scheduler's data-parallel workers; output is identical at any thread
    /// count.
    pub fn predict_proba_batch(
        &self,
        extractor: ExtractorId,
        features: &ve_ml::FeatureBlock,
    ) -> ve_ml::FeatureBlock {
        let Some((_, fitted)) = self.registry.read().latest(extractor) else {
            return ve_ml::FeatureBlock::empty(0);
        };
        let rows = ve_sched::parallel::par_map(features.rows(), |i| {
            fitted
                .model
                .predict_proba(&fitted.scaler.transform(features.row(i)))
        });
        let mut out =
            ve_ml::FeatureBlockBuilder::with_capacity(features.rows(), fitted.model.num_classes());
        for row in &rows {
            out.push_row(row);
        }
        out.build()
    }

    /// Cross-validated macro-F1 estimate of the extractor's quality on the
    /// labels collected so far (the rising bandit's reward signal). Returns
    /// `None` while there are too few labels to build stratified folds.
    ///
    /// The estimate is expressed on the same scale as the held-out evaluation
    /// metric — macro F1 over the **full vocabulary** — by treating classes
    /// that do not yet have enough labels to participate in the stratified
    /// folds as contributing an F1 of 0. This keeps the reward *rising* as
    /// labels accumulate (more classes become learnable), which is the
    /// behaviour the rising-bandit assumptions rely on; scoring only the
    /// already-covered classes would instead start near 1 and drift downward
    /// as the problem grows harder.
    pub fn evaluate_cv(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
    ) -> Option<f64> {
        let (features, single, multi) = self.training_set(extractor, corpus, fm, labels);
        if features.len() < 6 {
            return None;
        }
        match self.config.task {
            TaskKind::SingleLabel => {
                let cfg = CrossValConfig {
                    train: self.config.train,
                    ..CrossValConfig::default()
                };
                let kept = {
                    let mut per_class = vec![0usize; self.config.num_classes];
                    for &c in &single {
                        per_class[c] += 1;
                    }
                    per_class
                        .iter()
                        .filter(|&&n| n >= cfg.min_instances_per_class.max(cfg.folds))
                        .count()
                };
                ve_ml::cross_validate(&features, &single, self.config.num_classes, &cfg)
                    .map(|score| score * kept as f64 / self.config.num_classes as f64)
            }
            TaskKind::MultiLabel => self.multilabel_cv(&features, &multi),
        }
    }

    /// Simple 3-fold CV for multi-label tasks (no stratification; folds are
    /// assigned round-robin which is adequate because every class appears in
    /// many records).
    fn multilabel_cv(&self, features: &[Vec<f32>], targets: &[Vec<usize>]) -> Option<f64> {
        const FOLDS: usize = 3;
        let n = features.len();
        if n < FOLDS * 2 {
            return None;
        }
        let mut scores = Vec::new();
        for fold in 0..FOLDS {
            let mut train_x = Vec::new();
            let mut train_y = Vec::new();
            let mut test_x = Vec::new();
            let mut test_y = Vec::new();
            for i in 0..n {
                if i % FOLDS == fold {
                    test_x.push(features[i].clone());
                    test_y.push(targets[i].clone());
                } else {
                    train_x.push(features[i].clone());
                    train_y.push(targets[i].clone());
                }
            }
            if train_x.is_empty() || test_x.is_empty() {
                continue;
            }
            let (scaled_train, scaler) = StandardScaler::fit_transform(&train_x);
            let model = OneVsRestModel::fit(
                &scaled_train,
                &train_y,
                self.config.num_classes,
                &self.config.train,
            );
            let preds: Vec<Vec<usize>> = test_x
                .iter()
                .map(|x| {
                    let probs = model.predict_proba(&scaler.transform(x));
                    probs
                        .iter()
                        .enumerate()
                        .filter(|(_, &p)| p >= 0.5)
                        .map(|(c, _)| c)
                        .collect()
                })
                .collect();
            scores.push(ve_ml::macro_f1_multilabel(
                &test_y,
                &preds,
                self.config.num_classes,
            ));
        }
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f64>() / scores.len() as f64)
        }
    }

    /// The latest fitted model for an extractor, if any (used by the harness
    /// to evaluate on the held-out set).
    pub fn latest(&self, extractor: ExtractorId) -> Option<Arc<FittedModel>> {
        self.registry.read().latest(extractor).map(|(_, m)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_features::FeatureSimulator;
    use ve_storage::StorageManager;
    use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle};

    fn setup(n_videos: usize) -> (Dataset, FeatureManager, ModelManager, Vec<LabelRecord>) {
        let ds = Dataset::scaled(DatasetName::Deer, 0.15, 21);
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 21);
        let fm = FeatureManager::new(sim, StorageManager::new());
        let cfg = VocalExploreConfig::for_dataset(&ds, 21);
        let mm = ModelManager::new(cfg);
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        let mut labels = Vec::new();
        for clip in ds.train.videos().iter().take(n_videos) {
            let range = TimeRange::new(0.0, 1.0);
            let classes = oracle.label(&ds.train, clip.id, &range);
            labels.push(LabelRecord {
                vid: clip.id,
                range,
                classes,
                iteration: 0,
            });
        }
        (ds, fm, mm, labels)
    }

    #[test]
    fn refuses_to_train_with_too_few_labels() {
        let (ds, fm, mm, labels) = setup(1);
        assert!(!mm.train(ExtractorId::R3d, &ds.train, &fm, &labels, 0, None));
        assert!(!mm.has_model(ExtractorId::R3d));
    }

    #[test]
    fn trains_and_predicts() {
        let (ds, fm, mm, labels) = setup(60);
        assert!(mm.train(ExtractorId::R3d, &ds.train, &fm, &labels, 1, None));
        assert!(mm.has_model(ExtractorId::R3d));
        assert_eq!(mm.models_trained(), 1);
        let clip = &ds.train.videos()[70];
        let preds = mm.predict(
            ExtractorId::R3d,
            &ds.train,
            &fm,
            clip.id,
            &TimeRange::new(0.0, 1.0),
        );
        assert_eq!(preds.len(), 9, "one probability per vocabulary class");
        // Sorted by decreasing probability and sums to ~1.
        assert!(preds
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
        let total: f32 = preds.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-3);
    }

    #[test]
    fn predictions_empty_without_model() {
        let (ds, fm, mm, _) = setup(10);
        let clip = &ds.train.videos()[0];
        assert!(mm
            .predict(
                ExtractorId::Mvit,
                &ds.train,
                &fm,
                clip.id,
                &TimeRange::new(0.0, 1.0)
            )
            .is_empty());
        assert!(mm
            .predict_proba_batch(
                ExtractorId::Mvit,
                &ve_ml::FeatureBlock::from_nested(&[vec![0.0; 64]])
            )
            .is_empty());
    }

    #[test]
    fn predict_batch_matches_single_segment_predictions() {
        let (ds, fm, mm, labels) = setup(60);
        assert!(mm.train(ExtractorId::R3d, &ds.train, &fm, &labels, 1, None));
        let segments: Vec<(VideoId, TimeRange)> = ds
            .train
            .videos()
            .iter()
            .skip(60)
            .take(6)
            .map(|c| (c.id, TimeRange::new(0.0, 1.0)))
            .collect();
        let batch = mm.predict_batch(ExtractorId::R3d, &ds.train, &fm, &segments);
        assert_eq!(batch.len(), segments.len());
        for (preds, (vid, range)) in batch.iter().zip(&segments) {
            assert_eq!(
                preds,
                &mm.predict(ExtractorId::R3d, &ds.train, &fm, *vid, range)
            );
        }
        // Without a model every segment gets an empty prediction list.
        let empty = mm.predict_batch(ExtractorId::Clip, &ds.train, &fm, &segments);
        assert!(empty.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn cv_estimate_orders_extractors_by_signal() {
        let (ds, fm, mm, labels) = setup(90);
        let good = mm
            .evaluate_cv(ExtractorId::R3d, &ds.train, &fm, &labels)
            .unwrap();
        let bad = mm
            .evaluate_cv(ExtractorId::Random, &ds.train, &fm, &labels)
            .unwrap();
        assert!(good > bad, "R3D ({good:.3}) must beat Random ({bad:.3})");
    }

    #[test]
    fn cv_returns_none_with_too_few_labels() {
        let (ds, fm, mm, labels) = setup(3);
        assert!(mm
            .evaluate_cv(ExtractorId::R3d, &ds.train, &fm, &labels)
            .is_none());
    }

    #[test]
    fn multilabel_training_and_prediction() {
        let ds = Dataset::scaled(DatasetName::Bdd, 0.3, 9);
        let sim = FeatureSimulator::new(DatasetName::Bdd, 6, 9);
        let fm = FeatureManager::new(sim, StorageManager::new());
        let cfg = VocalExploreConfig::for_dataset(&ds, 9);
        let mm = ModelManager::new(cfg);
        let oracle = GroundTruthOracle::new(TaskKind::MultiLabel);
        let labels: Vec<LabelRecord> = ds
            .train
            .videos()
            .iter()
            .take(80)
            .map(|clip| {
                let range = TimeRange::new(0.0, 1.5);
                LabelRecord {
                    vid: clip.id,
                    range,
                    classes: oracle.label(&ds.train, clip.id, &range),
                    iteration: 0,
                }
            })
            .collect();
        assert!(mm.train(ExtractorId::Clip, &ds.train, &fm, &labels, 0, None));
        let clip = &ds.train.videos()[90];
        let preds = mm.predict(
            ExtractorId::Clip,
            &ds.train,
            &fm,
            clip.id,
            &TimeRange::new(0.0, 1.5),
        );
        assert_eq!(preds.len(), 6);
        // Multi-label probabilities need not sum to one.
        assert!(preds.iter().all(|p| (0.0..=1.0).contains(&p.probability)));
        assert!(mm
            .evaluate_cv(ExtractorId::Clip, &ds.train, &fm, &labels)
            .is_some());
    }

    #[test]
    fn retraining_publishes_new_version() {
        let (ds, fm, mm, labels) = setup(60);
        assert!(mm.train(ExtractorId::R3d, &ds.train, &fm, &labels, 0, Some(0.4)));
        assert!(mm.train(ExtractorId::R3d, &ds.train, &fm, &labels, 1, Some(0.5)));
        assert_eq!(mm.models_trained(), 2);
        assert!(mm.latest(ExtractorId::R3d).is_some());
    }
}
