//! `executor-bypass`: raw thread creation outside `ve-sched`.
//!
//! **Contract.** All concurrency flows through `ve_sched::Executor`
//! (priority-aware, counted, panic-contained — the PR 2 deadlock fix lives
//! there) or `ve_sched::parallel` (thread-count-independent data
//! parallelism). A raw `std::thread::spawn` in product code escapes the
//! executor's counters: `wait_idle` cannot see it, priorities cannot
//! preempt it, and its panics kill a thread silently.

use crate::engine::{Finding, RULE_EXECUTOR_BYPASS, SPAWN_EXEMPT_CRATES};
use crate::rules::is_path_pair;
use crate::workspace::WorkspaceModel;

pub fn check(ws: &WorkspaceModel) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if SPAWN_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for ci in 0..file.code.len() {
            for target in ["spawn", "Builder", "scope"] {
                if !is_path_pair(file, ci, "thread", target) {
                    continue;
                }
                let tok = file.ct(ci).expect("pattern matched");
                if file.is_test_line(tok.line) {
                    continue;
                }
                out.push(Finding::new(
                    RULE_EXECUTOR_BYPASS,
                    file,
                    tok.line,
                    tok.col,
                    format!(
                        "`thread::{target}` in crate `{}` bypasses `ve_sched::Executor`: \
                         work created here is invisible to `wait_idle`, priorities, and the \
                         panic-containment counters",
                        file.crate_name
                    ),
                ));
            }
        }
    }
    out
}
