//! `wall-clock-in-logic`: `Instant::now` / `SystemTime::now` outside the
//! scheduler's latency measurement (`ve-sched`) and the benchmark harness
//! (`ve-bench`).
//!
//! **Contract.** Selection, training, and storage state are pure functions
//! of their inputs (ROADMAP determinism invariant); a wall-clock read in any
//! of those paths makes behavior a function of *when* the code ran. The
//! async session engine's latency timers in `vocalexplore` are legitimate —
//! measurement is the product there — and carry `ve-lint: allow` annotations
//! saying so, which keeps every wall-clock read in the repo explicitly
//! accounted for.

use crate::engine::{Finding, RULE_WALL_CLOCK, WALL_CLOCK_EXEMPT_CRATES, WALL_CLOCK_EXEMPT_FILES};
use crate::rules::is_path_pair;
use crate::workspace::WorkspaceModel;

pub fn check(ws: &WorkspaceModel) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if WALL_CLOCK_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        // File-scoped exemption: `ve-obs`'s timing plane is sanctioned
        // measurement, but its event plane (every other file of the crate)
        // must stay wall-clock-free.
        if WALL_CLOCK_EXEMPT_FILES.contains(&file.rel_path.as_str()) {
            continue;
        }
        for ci in 0..file.code.len() {
            for ty in ["Instant", "SystemTime"] {
                if !is_path_pair(file, ci, ty, "now") {
                    continue;
                }
                let tok = file.ct(ci).expect("pattern matched");
                if file.is_test_line(tok.line) {
                    continue;
                }
                out.push(Finding::new(
                    RULE_WALL_CLOCK,
                    file,
                    tok.line,
                    tok.col,
                    format!(
                        "`{ty}::now()` in crate `{}`: wall-clock reads belong to `ve-sched` \
                         latency measurement or `ve-bench`; logic must be a pure function of \
                         its inputs (annotate if this site *is* measurement)",
                        file.crate_name
                    ),
                ));
            }
        }
    }
    out
}
