//! A small priority-aware worker pool for running real (in-process) tasks.
//!
//! The paper's prototype runs feature extraction, training, and evaluation on
//! a limited pool of compute resources ("only a subset of submitted tasks can
//! execute at once"). This executor reproduces that constraint with a fixed
//! number of worker threads pulling closures from a shared priority queue:
//! critical work always runs before normal work, which runs before
//! background (eager) work.
//!
//! The executor is the engine behind the async session path in `ve-core`:
//! `Explore` submits training, evaluation, and eager-extraction closures here
//! and measures visible latency from their actual completion times.
//!
//! # Counter semantics
//!
//! All counters live under the same mutex as the job queues, so observers
//! never see a torn state:
//!
//! * `submitted` is incremented **before** the job is pushed (in the same
//!   critical section), so `submitted >= completed` always holds and a job is
//!   never runnable without having been counted.
//! * `completed` counts every job that finished running, **including jobs
//!   that panicked**; `failed` counts the panicked subset. A panicking job
//!   therefore never wedges [`Executor::wait_idle`].
//! * Workers mark themselves in-flight while holding the lock as they pop,
//!   so "queues empty" and "nothing running" are checked atomically.

use crate::task::Priority;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ve_obs::timing::{QueueClass, TaskLabel, TaskTiming, TimingPlane};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued closure plus the metadata the timing plane needs to attribute
/// it: the deterministic span id (submission counter), the submitter's
/// label, and when it entered the queue.
struct QueuedJob {
    job: Job,
    span: u64,
    label: TaskLabel,
    class: QueueClass,
    submit_us: u64,
}

/// The executor's `Priority` rendered into `ve-obs`'s scheduler-agnostic
/// queue classes (`ve-obs` sits below `ve-sched` in the dependency graph).
pub fn queue_class(priority: Priority) -> QueueClass {
    match priority {
        Priority::Critical => QueueClass::Critical,
        Priority::Normal => QueueClass::Normal,
        Priority::Background => QueueClass::Background,
    }
}

#[derive(Default)]
struct State {
    critical: VecDeque<QueuedJob>,
    normal: VecDeque<QueuedJob>,
    background: VecDeque<QueuedJob>,
    shutdown: bool,
    submitted: u64,
    completed: u64,
    failed: u64,
    retried: u64,
    gave_up: u64,
    in_flight: usize,
    /// Cumulative wall microseconds jobs spent queued before a worker picked
    /// them up (timing plane; never consulted by logic).
    queue_wait_us: u64,
    /// Per-priority queue-depth high-water marks (critical/normal/background).
    depth_hwm: [u64; 3],
}

impl State {
    fn push(&mut self, priority: Priority, job: QueuedJob) {
        let depth = match priority {
            Priority::Critical => {
                self.critical.push_back(job);
                self.critical.len()
            }
            Priority::Normal => {
                self.normal.push_back(job);
                self.normal.len()
            }
            Priority::Background => {
                self.background.push_back(job);
                self.background.len()
            }
        } as u64;
        let slot = &mut self.depth_hwm[queue_class(priority).index()];
        if *slot < depth {
            *slot = depth;
        }
    }

    fn pop(&mut self) -> Option<QueuedJob> {
        self.critical
            .pop_front()
            .or_else(|| self.normal.pop_front())
            .or_else(|| self.background.pop_front())
    }

    fn queued(&self) -> usize {
        self.critical.len() + self.normal.len() + self.background.len()
    }

    /// Nothing queued and nothing running: every submitted job has completed.
    fn is_drained(&self) -> bool {
        self.queued() == 0 && self.in_flight == 0
    }
}

struct Inner {
    state: Mutex<State>,
    /// Workers wait here for new jobs (or shutdown).
    available: Condvar,
    /// `wait_idle`/`wait_for` callers wait here; notified whenever a worker
    /// finishes the last outstanding job.
    drained: Condvar,
    /// Wall-clock timing plane: per-task submit/start/end records joined to
    /// the deterministic event plane by span id.
    plane: TimingPlane,
}

/// Counters describing executor activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Jobs submitted since creation.
    pub submitted: u64,
    /// Jobs that have finished running (including panicked jobs).
    pub completed: u64,
    /// Jobs that panicked while running (a subset of `completed`).
    pub failed: u64,
    /// Failed attempts that were retried inside retryable jobs (see
    /// [`Executor::submit_retryable`]); one increment per re-run attempt.
    pub retried: u64,
    /// Retryable jobs that exhausted their [`RetryPolicy`] budget.
    pub gave_up: u64,
    /// Cumulative wall microseconds jobs spent queued before starting.
    /// Timing-plane data: varies run to run and must never feed logic or
    /// determinism assertions.
    pub queue_wait_us: u64,
    /// Queue-depth high-water marks per priority
    /// (critical/normal/background). Deterministic only under a single
    /// worker; treat as timing-plane data.
    pub depth_hwm: [u64; 3],
}

impl ExecutorStats {
    /// Jobs submitted but not yet finished.
    pub fn pending(&self) -> u64 {
        self.submitted - self.completed
    }

    /// Jobs that finished without panicking.
    pub fn succeeded(&self) -> u64 {
        self.completed - self.failed
    }

    /// The counters as `(name, value)` pairs in stable name order — the
    /// export hook diagnostic bundles and bench artifacts serialize from,
    /// so every consumer names the counters identically.
    pub fn export_kv(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("completed", self.completed),
            ("depth_hwm_background", self.depth_hwm[2]),
            ("depth_hwm_critical", self.depth_hwm[0]),
            ("depth_hwm_normal", self.depth_hwm[1]),
            ("failed", self.failed),
            ("gave_up", self.gave_up),
            ("queue_wait_us", self.queue_wait_us),
            ("retried", self.retried),
            ("submitted", self.submitted),
        ]
    }

    /// One-line JSON object over [`ExecutorStats::export_kv`] (hand-rolled;
    /// no serde in this environment).
    pub fn render_json(&self) -> String {
        let body: Vec<String> = self
            .export_kv()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Error returned by [`TaskHandle::join`] when the job panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanicked {
    /// The panic payload rendered as a string (when it was a `&str`/`String`).
    pub message: String,
}

impl std::fmt::Display for JobPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "executor job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanicked {}

struct HandleShared<T> {
    result: Mutex<Option<Result<T, JobPanicked>>>,
    done: Condvar,
}

/// Handle to a job submitted with [`Executor::submit_with_handle`]; resolves
/// to the closure's return value (or the panic that killed it).
pub struct TaskHandle<T> {
    shared: Arc<HandleShared<T>>,
}

impl<T> TaskHandle<T> {
    /// Blocks until the job has run and returns its result. A panicking job
    /// yields `Err(JobPanicked)` instead of wedging the caller.
    pub fn join(self) -> Result<T, JobPanicked> {
        let mut slot = self.shared.result.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.shared.done.wait(&mut slot);
        }
    }

    /// Non-blocking variant of [`TaskHandle::join`]: returns `None` while the
    /// job has not finished yet.
    pub fn try_join(&self) -> Option<Result<T, JobPanicked>> {
        self.shared.result.lock().take()
    }

    /// Whether the job has finished (its result may already have been taken).
    pub fn is_finished(&self) -> bool {
        self.shared.result.lock().is_some()
    }
}

/// Retry behavior for a fallible job: how many attempts it gets and how long
/// (in *virtual* seconds, converted to wall time via `time_scale`) the worker
/// backs off between them. The backoff schedule is a pure function of the
/// attempt index, so retries replay deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts a job gets (minimum 1).
    pub max_attempts: u32,
    /// Virtual seconds to wait before the first retry.
    pub backoff_base_secs: f64,
    /// Multiplier applied to the backoff for each further retry.
    pub backoff_factor: f64,
    /// Wall seconds per virtual second of backoff; `0.0` disables sleeping
    /// (decisions are unaffected — backoff only shapes measured latency).
    pub time_scale: f64,
}

impl RetryPolicy {
    /// A single attempt, no retries, no backoff.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff_base_secs: 0.0,
            backoff_factor: 1.0,
            time_scale: 0.0,
        }
    }

    /// `max_attempts` attempts with exponential virtual-time backoff.
    pub fn new(max_attempts: u32, backoff_base_secs: f64, backoff_factor: f64) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            backoff_base_secs,
            backoff_factor,
            time_scale: 0.0,
        }
    }

    /// Sets the virtual→wall conversion used when a worker actually sleeps.
    pub fn with_time_scale(mut self, time_scale: f64) -> Self {
        self.time_scale = time_scale;
        self
    }

    /// Virtual seconds of backoff before retry number `retry` (1-based).
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        if retry == 0 {
            return 0.0;
        }
        self.backoff_base_secs * self.backoff_factor.powi(retry as i32 - 1)
    }

    fn backoff_wall(&self, retry: u32) -> Duration {
        let secs = self.backoff_secs(retry) * self.time_scale;
        if secs > 0.0 {
            Duration::from_secs_f64(secs)
        } else {
            Duration::ZERO
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Why a retryable job (see [`Executor::submit_retryable`]) did not produce a
/// value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFailure<E> {
    /// The job panicked; panics are bugs, not transient faults, so they are
    /// never retried.
    Panicked(JobPanicked),
    /// The job failed on its only allowed attempt (`max_attempts == 1`).
    Failed(E),
    /// The job failed on every attempt and exhausted its retry budget.
    GaveUp {
        /// Attempts consumed (equals the policy's `max_attempts`).
        attempts: u32,
        /// The error from the final attempt.
        error: E,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for TaskFailure<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskFailure::Panicked(p) => write!(f, "{p}"),
            TaskFailure::Failed(e) => write!(f, "task failed: {e}"),
            TaskFailure::GaveUp { attempts, error } => {
                write!(f, "task gave up after {attempts} attempts: {error}")
            }
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for TaskFailure<E> {}

impl<T, E> TaskHandle<Result<T, TaskFailure<E>>> {
    /// Joins a retryable task: panics, typed failures, and give-ups all
    /// arrive as [`TaskFailure`] instead of a bare [`JobPanicked`].
    pub fn join_task(self) -> Result<T, TaskFailure<E>> {
        match self.join() {
            Ok(inner) => inner,
            Err(panicked) => Err(TaskFailure::Panicked(panicked)),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Priority-aware thread-pool executor.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Starts an executor with `workers` threads.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            available: Condvar::new(),
            drained: Condvar::new(),
            plane: TimingPlane::new(),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ve-sched-worker-{i}"))
                    .spawn(move || worker_loop(inner, i))
                    .expect("spawn worker"),
            );
        }
        Self {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The executor's wall-clock timing plane. Session runners drain task
    /// timings from here and benchmarks join them to the event plane by
    /// span id.
    pub fn timing(&self) -> &TimingPlane {
        &self.inner.plane
    }

    /// Enables or disables timing-plane capture (counters in
    /// [`ExecutorStats`] are always maintained; they are a handful of adds
    /// under a lock already held).
    pub fn set_timing_enabled(&self, on: bool) {
        self.inner.plane.set_enabled(on);
    }

    /// Submits a closure at the given priority. Panics inside the job are
    /// caught by the worker and surfaced in [`ExecutorStats::failed`].
    pub fn submit<F>(&self, priority: Priority, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.submit_labeled(priority, TaskLabel::unlabeled(), job)
    }

    /// [`Executor::submit`] with a timing-plane label attributing the task
    /// to a session phase and iteration.
    pub fn submit_labeled<F>(&self, priority: Priority, label: TaskLabel, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let submit_us = self.inner.plane.now_us();
        {
            let mut state = self.inner.state.lock();
            // `submitted` is bumped before the push, inside the same critical
            // section — see the module docs on counter semantics.
            state.submitted += 1;
            let span = state.submitted;
            state.push(
                priority,
                QueuedJob {
                    job: Box::new(job),
                    span,
                    label,
                    class: queue_class(priority),
                    submit_us,
                },
            );
        }
        self.inner.available.notify_one();
    }

    /// Submits a closure and returns a [`TaskHandle`] that resolves to its
    /// return value. A panic inside the job is stored in the handle **and**
    /// re-raised to the worker so it is counted in [`ExecutorStats::failed`].
    pub fn submit_with_handle<T, F>(&self, priority: Priority, job: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_with_handle_labeled(priority, TaskLabel::unlabeled(), job)
    }

    /// [`Executor::submit_with_handle`] with a timing-plane label.
    pub fn submit_with_handle_labeled<T, F>(
        &self,
        priority: Priority,
        label: TaskLabel,
        job: F,
    ) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let shared = Arc::new(HandleShared {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let slot = Arc::clone(&shared);
        self.submit_labeled(priority, label, move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            let panicked = match &outcome {
                Ok(_) => None,
                Err(payload) => Some(panic_message(payload.as_ref())),
            };
            *slot.result.lock() = Some(match outcome {
                Ok(value) => Ok(value),
                Err(_) => Err(JobPanicked {
                    message: panicked.clone().unwrap_or_default(),
                }),
            });
            slot.done.notify_all();
            if let Some(message) = panicked {
                // Re-raise so the worker loop counts this job as failed; the
                // handle already holds the error, so nothing is lost.
                std::panic::resume_unwind(Box::new(message));
            }
        });
        TaskHandle { shared }
    }

    /// Submits a fallible job that is retried in place under `policy`: the
    /// closure receives the 0-based attempt index, failed attempts back off
    /// for a deterministic virtual-time delay (scaled by the policy's
    /// `time_scale`), and the handle resolves to the first success or a
    /// [`TaskFailure`] describing why the job gave up.
    ///
    /// All attempts run inside **one** executor job, so `submitted`/
    /// `completed` count the operation once and [`Executor::wait_idle`]
    /// converges exactly as for plain jobs; `retried` counts every re-run
    /// attempt and `gave_up` counts exhausted budgets. A panicking attempt is
    /// never retried — panics are bugs, not transient faults — and is both
    /// stored in the handle and re-raised so the worker counts it in
    /// [`ExecutorStats::failed`].
    pub fn submit_retryable<T, E, F>(
        &self,
        priority: Priority,
        policy: RetryPolicy,
        job: F,
    ) -> TaskHandle<Result<T, TaskFailure<E>>>
    where
        T: Send + 'static,
        E: Send + 'static,
        F: FnMut(u32) -> Result<T, E> + Send + 'static,
    {
        self.submit_retryable_labeled(priority, TaskLabel::unlabeled(), policy, job)
    }

    /// [`Executor::submit_retryable`] with a timing-plane label; the whole
    /// retry sequence is one span.
    pub fn submit_retryable_labeled<T, E, F>(
        &self,
        priority: Priority,
        label: TaskLabel,
        policy: RetryPolicy,
        mut job: F,
    ) -> TaskHandle<Result<T, TaskFailure<E>>>
    where
        T: Send + 'static,
        E: Send + 'static,
        F: FnMut(u32) -> Result<T, E> + Send + 'static,
    {
        let shared = Arc::new(HandleShared {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let slot = Arc::clone(&shared);
        let inner = Arc::clone(&self.inner);
        self.submit_labeled(priority, label, move || {
            let max = policy.max_attempts.max(1);
            let mut attempt = 0u32;
            loop {
                match catch_unwind(AssertUnwindSafe(|| job(attempt))) {
                    Ok(Ok(value)) => {
                        *slot.result.lock() = Some(Ok(Ok(value)));
                        slot.done.notify_all();
                        return;
                    }
                    Ok(Err(error)) => {
                        attempt += 1;
                        if attempt >= max {
                            let failure = if max == 1 {
                                TaskFailure::Failed(error)
                            } else {
                                inner.state.lock().gave_up += 1;
                                TaskFailure::GaveUp {
                                    attempts: attempt,
                                    error,
                                }
                            };
                            *slot.result.lock() = Some(Ok(Err(failure)));
                            slot.done.notify_all();
                            return;
                        }
                        inner.state.lock().retried += 1;
                        let backoff = policy.backoff_wall(attempt);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                    }
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        *slot.result.lock() = Some(Ok(Err(TaskFailure::Panicked(JobPanicked {
                            message: message.clone(),
                        }))));
                        slot.done.notify_all();
                        // Re-raise so the worker loop counts this job as
                        // failed; the handle already holds the error.
                        std::panic::resume_unwind(Box::new(message));
                    }
                }
            }
        });
        TaskHandle { shared }
    }

    /// Blocks until every submitted job has completed (including jobs that
    /// panic — see [`ExecutorStats::failed`]).
    pub fn wait_idle(&self) {
        let mut state = self.inner.state.lock();
        while !state.is_drained() {
            self.inner.drained.wait(&mut state);
        }
    }

    /// Like [`Executor::wait_idle`], but gives up after `timeout`. Returns
    /// `true` when the executor drained, `false` on timeout.
    pub fn wait_for(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        while !state.is_drained() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.drained.wait_for(&mut state, deadline - now);
        }
        true
    }

    /// Current counters (read atomically under the queue lock).
    pub fn stats(&self) -> ExecutorStats {
        let state = self.inner.state.lock();
        ExecutorStats {
            submitted: state.submitted,
            completed: state.completed,
            failed: state.failed,
            retried: state.retried,
            gave_up: state.gave_up,
            queue_wait_us: state.queue_wait_us,
            depth_hwm: state.depth_hwm,
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.inner.state.lock().shutdown = true;
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>, worker: usize) {
    loop {
        let queued = {
            let mut state = inner.state.lock();
            loop {
                if let Some(queued) = state.pop() {
                    // Marked in-flight under the same lock as the pop, so
                    // `is_drained` can never miss a running job.
                    state.in_flight += 1;
                    break Some(queued);
                }
                if state.shutdown {
                    break None;
                }
                inner.available.wait(&mut state);
            }
        };
        let Some(queued) = queued else { return };
        let start_us = inner.plane.now_us();
        let outcome = catch_unwind(AssertUnwindSafe(queued.job));
        let end_us = inner.plane.now_us();
        {
            let mut state = inner.state.lock();
            state.in_flight -= 1;
            state.completed += 1;
            state.queue_wait_us += start_us.saturating_sub(queued.submit_us);
            if outcome.is_err() {
                state.failed += 1;
            }
            if state.is_drained() {
                inner.drained.notify_all();
            }
        }
        // Recorded after the queue lock is released: the timing plane has
        // its own lock and the two must never nest.
        inner.plane.record_task(TaskTiming {
            span: queued.span,
            label: queued.label,
            class: queued.class,
            worker,
            submit_us: queued.submit_us,
            start_us,
            end_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn runs_all_submitted_jobs() {
        let ex = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            ex.submit(Priority::Normal, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        ex.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        let stats = ex.stats();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.pending(), 0);
        assert_eq!(stats.succeeded(), 100);
    }

    #[test]
    fn critical_jobs_run_before_background_jobs() {
        // Single worker so execution order equals queue order.
        let ex = Executor::new(1);
        let order = Arc::new(StdMutex::new(Vec::new()));
        // Block the worker briefly so all submissions are queued before any
        // execution starts.
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            ex.submit(Priority::Critical, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        for i in 0..3 {
            let order = Arc::clone(&order);
            ex.submit(Priority::Background, move || {
                order.lock().unwrap().push(format!("bg-{i}"));
            });
        }
        for i in 0..3 {
            let order = Arc::clone(&order);
            ex.submit(Priority::Critical, move || {
                order.lock().unwrap().push(format!("crit-{i}"));
            });
        }
        gate.store(true, Ordering::SeqCst);
        ex.wait_idle();
        let order = order.lock().unwrap().clone();
        assert_eq!(
            order,
            vec!["crit-0", "crit-1", "crit-2", "bg-0", "bg-1", "bg-2"],
            "critical work must preempt queued background work"
        );
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let ex = Executor::new(2);
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                ex.submit(Priority::Normal, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            ex.wait_idle();
        } // drop here
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        Executor::new(0);
    }

    #[test]
    fn panicking_job_does_not_deadlock_wait_idle() {
        // Regression: the seed executor's worker died with its job, never
        // bumping `completed`, so `wait_idle` spun forever.
        let ex = Executor::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        ex.submit(Priority::Normal, || panic!("job exploded"));
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            ex.submit(Priority::Normal, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        ex.wait_idle(); // must return, not hang
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        let stats = ex.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6, "panicked jobs still count as completed");
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.succeeded(), 5);
    }

    #[test]
    fn worker_survives_a_panic_and_keeps_serving() {
        // Single worker: if the panic killed the thread, the follow-up job
        // could never run.
        let ex = Executor::new(1);
        let ran = Arc::new(AtomicBool::new(false));
        ex.submit(Priority::Normal, || panic!("first job dies"));
        {
            let ran = Arc::clone(&ran);
            ex.submit(Priority::Normal, move || ran.store(true, Ordering::SeqCst));
        }
        ex.wait_idle();
        assert!(ran.load(Ordering::SeqCst));
        assert_eq!(ex.stats().failed, 1);
    }

    #[test]
    fn submitted_is_visible_before_the_job_runs() {
        // `submit` bumps `submitted` before pushing, under the queue lock.
        let ex = Executor::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            ex.submit(Priority::Normal, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        ex.submit(Priority::Normal, || {});
        let stats = ex.stats();
        assert_eq!(stats.submitted, 2);
        assert!(stats.completed <= 1);
        assert_eq!(stats.pending(), stats.submitted - stats.completed);
        gate.store(true, Ordering::SeqCst);
        ex.wait_idle();
        assert_eq!(ex.stats().pending(), 0);
    }

    #[test]
    fn wait_for_times_out_then_succeeds() {
        let ex = Executor::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            ex.submit(Priority::Normal, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        assert!(
            !ex.wait_for(Duration::from_millis(20)),
            "gated job cannot drain within the timeout"
        );
        gate.store(true, Ordering::SeqCst);
        assert!(ex.wait_for(Duration::from_secs(10)));
        assert_eq!(ex.stats().completed, 1);
    }

    #[test]
    fn wait_idle_with_no_work_returns_immediately() {
        let ex = Executor::new(2);
        ex.wait_idle();
        assert!(ex.wait_for(Duration::from_millis(1)));
        assert_eq!(
            ex.stats(),
            ExecutorStats {
                submitted: 0,
                completed: 0,
                failed: 0,
                retried: 0,
                gave_up: 0,
                queue_wait_us: 0,
                depth_hwm: [0, 0, 0],
            }
        );
    }

    #[test]
    fn depth_high_water_marks_track_per_priority_queues() {
        // Single worker blocked on a gate: everything queued after the gate
        // job piles up and the high-water marks see the full depth.
        let ex = Executor::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            ex.submit(Priority::Critical, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        for _ in 0..3 {
            ex.submit(Priority::Normal, || {});
        }
        for _ in 0..2 {
            ex.submit(Priority::Background, || {});
        }
        gate.store(true, Ordering::SeqCst);
        ex.wait_idle();
        let stats = ex.stats();
        // The gate job may or may not have been popped before the others
        // were pushed, so critical saw depth 0 or 1; the blocked queues saw
        // their full depth.
        assert!(stats.depth_hwm[0] <= 1);
        assert_eq!(stats.depth_hwm[1], 3, "{:?}", stats.depth_hwm);
        assert_eq!(stats.depth_hwm[2], 2, "{:?}", stats.depth_hwm);
    }

    #[test]
    fn timing_plane_records_labeled_spans_with_queue_wait() {
        let ex = Executor::new(2);
        let h1 =
            ex.submit_with_handle_labeled(Priority::Normal, TaskLabel::new("train", 3), || {
                std::thread::sleep(std::time::Duration::from_millis(2))
            });
        let h2 =
            ex.submit_with_handle_labeled(Priority::Critical, TaskLabel::new("infer", 3), || {});
        h1.join().unwrap();
        h2.join().unwrap();
        ex.wait_idle();
        let tasks = ex.timing().tasks();
        assert_eq!(tasks.len(), 2);
        let train = tasks.iter().find(|t| t.label.kind == "train").unwrap();
        assert_eq!(train.label.iteration, 3);
        assert_eq!(train.class, QueueClass::Normal);
        assert!(train.end_us >= train.start_us + 1_000, "{train:?}");
        assert!(train.start_us >= train.submit_us);
        // Span ids are the submission counter: unique and deterministic.
        let mut spans: Vec<u64> = tasks.iter().map(|t| t.span).collect();
        spans.sort_unstable();
        assert_eq!(spans, vec![1, 2]);
        // Cumulative queue wait is the sum over recorded tasks.
        let sum: u64 = tasks.iter().map(|t| t.queue_wait_us()).sum();
        assert_eq!(ex.stats().queue_wait_us, sum);
    }

    #[test]
    fn disabled_timing_plane_keeps_counters_but_drops_spans() {
        let ex = Executor::new(1);
        ex.set_timing_enabled(false);
        ex.submit(Priority::Normal, || {});
        ex.wait_idle();
        assert!(ex.timing().tasks().is_empty());
        assert_eq!(ex.stats().completed, 1);
        assert_eq!(ex.stats().depth_hwm[1], 1);
    }

    #[test]
    fn handle_returns_the_job_result() {
        let ex = Executor::new(2);
        let handle = ex.submit_with_handle(Priority::Critical, || 6 * 7);
        assert_eq!(handle.join().unwrap(), 42);
        ex.wait_idle();
        assert_eq!(ex.stats().failed, 0);
    }

    #[test]
    fn handle_surfaces_a_panic_as_error_and_counts_it_failed() {
        let ex = Executor::new(2);
        let handle = ex.submit_with_handle(Priority::Normal, || -> usize {
            panic!("typed job exploded");
        });
        let err = handle.join().unwrap_err();
        assert!(err.message.contains("typed job exploded"), "{err}");
        ex.wait_idle();
        let stats = ex.stats();
        assert_eq!(
            stats.failed, 1,
            "handle jobs re-raise so workers count them"
        );
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn try_join_reports_progress() {
        let ex = Executor::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let handle = {
            let gate = Arc::clone(&gate);
            ex.submit_with_handle(Priority::Normal, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                "done"
            })
        };
        assert!(!handle.is_finished());
        assert!(handle.try_join().is_none());
        gate.store(true, Ordering::SeqCst);
        ex.wait_idle();
        assert!(handle.is_finished());
        assert_eq!(handle.try_join().unwrap().unwrap(), "done");
    }

    #[test]
    fn workers_accessor() {
        assert_eq!(Executor::new(3).workers(), 3);
    }

    #[test]
    fn retryable_job_succeeds_after_transient_failures() {
        let ex = Executor::new(2);
        let handle =
            ex.submit_retryable(Priority::Normal, RetryPolicy::new(4, 0.0, 1.0), |attempt| {
                if attempt < 2 {
                    Err("flaky")
                } else {
                    Ok(attempt)
                }
            });
        assert_eq!(handle.join_task().unwrap(), 2);
        ex.wait_idle();
        let stats = ex.stats();
        assert_eq!(stats.submitted, 1, "all attempts run inside one job");
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.retried, 2);
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn retryable_job_gives_up_when_budget_is_exhausted() {
        let ex = Executor::new(1);
        let handle = ex.submit_retryable(
            Priority::Normal,
            RetryPolicy::new(3, 0.0, 1.0),
            |_attempt| -> Result<(), &'static str> { Err("always broken") },
        );
        match handle.join_task() {
            Err(TaskFailure::GaveUp { attempts, error }) => {
                assert_eq!(attempts, 3);
                assert_eq!(error, "always broken");
            }
            other => panic!("expected GaveUp, got {other:?}"),
        }
        ex.wait_idle();
        let stats = ex.stats();
        assert_eq!(stats.retried, 2, "two re-run attempts before giving up");
        assert_eq!(stats.gave_up, 1);
        assert_eq!(stats.failed, 0, "typed failure is not a panic");
    }

    #[test]
    fn single_attempt_policy_reports_failed_not_gave_up() {
        let ex = Executor::new(1);
        let handle = ex.submit_retryable(
            Priority::Normal,
            RetryPolicy::none(),
            |_| -> Result<(), &'static str> { Err("no retries allowed") },
        );
        assert!(matches!(
            handle.join_task(),
            Err(TaskFailure::Failed("no retries allowed"))
        ));
        ex.wait_idle();
        let stats = ex.stats();
        assert_eq!(stats.retried, 0);
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn retryable_job_panic_is_not_retried_and_counts_failed() {
        let ex = Executor::new(2);
        let attempts = Arc::new(AtomicUsize::new(0));
        let handle = {
            let attempts = Arc::clone(&attempts);
            ex.submit_retryable(
                Priority::Normal,
                RetryPolicy::new(5, 0.0, 1.0),
                move |_| -> Result<(), &'static str> {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    panic!("attempt exploded");
                },
            )
        };
        match handle.join_task() {
            Err(TaskFailure::Panicked(p)) => assert!(p.message.contains("attempt exploded")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        ex.wait_idle();
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "panics are not retried");
        let stats = ex.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.retried, 0);
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn backoff_schedule_is_a_pure_function_of_the_attempt() {
        let policy = RetryPolicy::new(4, 0.5, 2.0);
        assert_eq!(policy.backoff_secs(0), 0.0);
        assert_eq!(policy.backoff_secs(1), 0.5);
        assert_eq!(policy.backoff_secs(2), 1.0);
        assert_eq!(policy.backoff_secs(3), 2.0);
        assert_eq!(RetryPolicy::none().backoff_secs(1), 0.0);
    }

    #[test]
    fn stats_export_is_name_sorted_and_renders_json() {
        let stats = ExecutorStats {
            submitted: 9,
            completed: 8,
            failed: 1,
            retried: 2,
            gave_up: 1,
            queue_wait_us: 1234,
            depth_hwm: [3, 2, 1],
        };
        let kv = stats.export_kv();
        let names: Vec<&str> = kv.iter().map(|(k, _)| *k).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "export order must be stable name order");
        let json = stats.render_json();
        assert!(json.contains("\"submitted\": 9"), "{json}");
        assert!(json.contains("\"depth_hwm_critical\": 3"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
