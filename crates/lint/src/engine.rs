//! The rule engine: findings, suppression annotations, the committed
//! baseline, and the policy table that scopes each rule to the crates whose
//! contracts it enforces.
//!
//! # Suppression syntax
//!
//! ```text
//! // ve-lint: allow(rule-name) -- reason the site is safe
//! // ve-lint: allow(rule-a, rule-b) -- one reason for both
//! ```
//!
//! A suppression covers **its own line and the next line**, so both the
//! trailing form (`stmt; // ve-lint: allow(…) -- …`) and the preceding-line
//! form work. The ` -- reason` is mandatory: an annotation without a reason
//! (or naming an unknown rule) is itself reported as `malformed-suppression`
//! and fails the gate — a suppression must document *why* the contract holds.
//!
//! # Baseline
//!
//! `ve-lint.baseline` at the workspace root grandfathers findings that
//! predate a rule (tab-separated `rule`, `path`, `trimmed source line`).
//! A finding matching an entry is reported only as a count; an entry that no
//! longer matches any finding is **stale and fails the gate**, so the
//! baseline can only shrink — suppressions cannot rot silently.

use crate::workspace::{SourceFile, WorkspaceModel};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Rule identifiers, in the order they are documented in ROADMAP.md.
pub const RULE_NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
pub const RULE_WALL_CLOCK: &str = "wall-clock-in-logic";
pub const RULE_PANIC_IN_TASK_PATH: &str = "panic-in-task-path";
pub const RULE_LOCK_DISCIPLINE: &str = "lock-discipline";
pub const RULE_FLOAT_REDUCTION_ORDER: &str = "float-reduction-order";
pub const RULE_EXECUTOR_BYPASS: &str = "executor-bypass";
pub const RULE_MALFORMED_SUPPRESSION: &str = "malformed-suppression";

/// Every rule a suppression may name.
pub const ALL_RULES: &[&str] = &[
    RULE_NONDETERMINISTIC_ITERATION,
    RULE_WALL_CLOCK,
    RULE_PANIC_IN_TASK_PATH,
    RULE_LOCK_DISCIPLINE,
    RULE_FLOAT_REDUCTION_ORDER,
    RULE_EXECUTOR_BYPASS,
];

/// Crates whose selection/storage state must be a pure function of inputs
/// (ROADMAP "bit-identical at any worker/thread count"). Rules
/// `nondeterministic-iteration` and `float-reduction-order` apply here.
pub const DETERMINISM_CRITICAL_CRATES: &[&str] =
    &["ve-al", "ve-ml", "ve-obs", "ve-storage", "vocalexplore"];

/// Crates allowed to read wall-clock time: the scheduler measures latency,
/// the bench crate measures everything.
pub const WALL_CLOCK_EXEMPT_CRATES: &[&str] = &["ve-sched", "ve-bench"];

/// Individual files allowed to read wall-clock time inside otherwise
/// determinism-critical crates. `ve-obs` is two-plane by contract: its
/// timing plane (`timing.rs`) *is* wall-clock measurement, while its event
/// plane must stay a pure function of inputs — so the exemption is scoped to
/// the one file rather than the crate.
pub const WALL_CLOCK_EXEMPT_FILES: &[&str] = &["crates/obs/src/timing.rs"];

/// Crates allowed to create threads: `ve-sched` owns the executor and the
/// data-parallel pool; everything else must submit work to them.
pub const SPAWN_EXEMPT_CRATES: &[&str] = &["ve-sched"];

/// Files whose float reductions are the blessed, chunk-stable kernels
/// (`FeatureBlock` and the scalar kernels it is built on). Every other float
/// reduction in a determinism-critical crate must be annotated or baselined.
pub const FLOAT_BLESSED_FILES: &[&str] = &["crates/ml/src/block.rs", "crates/ml/src/tensor.rs"];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub crate_name: String,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// Trimmed text of the offending line (the baseline matches on this).
    pub snippet: String,
}

impl Finding {
    pub fn new(
        rule: &'static str,
        file: &SourceFile,
        line: u32,
        col: u32,
        message: String,
    ) -> Self {
        Self {
            rule,
            crate_name: file.crate_name.clone(),
            path: file.rel_path.clone(),
            line,
            col,
            message,
            snippet: file.line_text(line).to_string(),
        }
    }
}

/// One parsed suppression annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rules: Vec<String>,
    /// Lines the annotation covers (its own and the next).
    pub lines: [u32; 2],
}

/// Suppressions and annotation errors extracted from one file's comments.
pub fn parse_suppressions(file: &SourceFile) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut malformed = Vec::new();
    for tok in &file.tokens {
        if !tok.is_comment() {
            continue;
        }
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are prose *about* the
        // syntax, not annotations — only plain comments suppress.
        if tok.text.starts_with("///")
            || tok.text.starts_with("//!")
            || tok.text.starts_with("/**")
            || tok.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = tok.text.find("ve-lint:") else {
            continue;
        };
        let rest = tok.text[at + "ve-lint:".len()..].trim_start();
        // The annotation's effect starts at the line the comment *ends* on
        // (a multi-line block comment covers the code right after it).
        let end_line = tok.line + tok.text.matches('\n').count() as u32;
        let mut fail = |why: &str| {
            malformed.push(Finding::new(
                RULE_MALFORMED_SUPPRESSION,
                file,
                tok.line,
                tok.col,
                format!("unusable ve-lint annotation ({why}); expected `ve-lint: allow(<rule>) -- <reason>`"),
            ));
        };
        let Some(rest) = rest.strip_prefix("allow") else {
            fail("only `allow(…)` is recognized");
            continue;
        };
        let rest = rest.trim_start();
        let Some(open) = rest.strip_prefix('(') else {
            fail("missing `(` after allow");
            continue;
        };
        let Some(close) = open.find(')') else {
            fail("missing `)`");
            continue;
        };
        let rules: Vec<String> = open[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            fail("no rule named");
            continue;
        }
        if let Some(bad) = rules.iter().find(|r| !ALL_RULES.contains(&r.as_str())) {
            fail(&format!("unknown rule `{bad}`"));
            continue;
        }
        let reason = open[close + 1..].trim_start();
        let reason = reason.strip_prefix("--").map(str::trim).unwrap_or("");
        // Block comments may close with `*/` after the reason.
        let reason = reason.trim_end_matches("*/").trim();
        if reason.is_empty() {
            fail("missing ` -- <reason>`: a suppression must say why the contract holds");
            continue;
        }
        sups.push(Suppression {
            rules,
            lines: [end_line, end_line + 1],
        });
    }
    (sups, malformed)
}

/// One baseline entry: `rule \t path \t trimmed source line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub snippet: String,
}

/// Parses the baseline file format (tab-separated, `#` comments).
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(rule), Some(path), Some(snippet)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {} is not `rule<TAB>path<TAB>snippet`: {line:?}",
                i + 1
            ));
        };
        entries.push(BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            snippet: snippet.to_string(),
        });
    }
    Ok(entries)
}

/// Renders findings in the baseline file format.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut entries: BTreeSet<(String, String, String)> = BTreeSet::new();
    for f in findings {
        entries.insert((f.rule.to_string(), f.path.clone(), f.snippet.clone()));
    }
    let mut out = String::from(
        "# ve-lint baseline: findings grandfathered before their rule landed.\n\
         # Format: rule<TAB>path<TAB>trimmed source line. An entry that no longer\n\
         # matches any finding is STALE and fails the gate — remove it.\n",
    );
    for (rule, path, snippet) in entries {
        let _ = writeln!(out, "{rule}\t{path}\t{snippet}");
    }
    out
}

/// The gate's complete result.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed, non-baselined findings: these fail the gate.
    pub active: Vec<Finding>,
    /// Findings silenced by an in-source annotation.
    pub suppressed: usize,
    /// Findings matched by the baseline.
    pub grandfathered: usize,
    /// Baseline entries that matched nothing: these fail the gate too.
    pub stale_baseline: Vec<BaselineEntry>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.active.is_empty() && self.stale_baseline.is_empty()
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.active {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}\n    {}",
                f.path, f.line, f.col, f.rule, f.message, f.snippet
            );
        }
        for e in &self.stale_baseline {
            let _ = writeln!(
                out,
                "{}: [stale-baseline] entry for rule `{}` no longer matches anything \
                 (fixed or moved?) — remove it:\n    {}",
                e.path, e.rule, e.snippet
            );
        }
        let _ = writeln!(
            out,
            "ve-lint: {} file(s), {} finding(s), {} suppressed, {} baselined, {} stale baseline entr{}",
            self.files_scanned,
            self.active.len(),
            self.suppressed,
            self.grandfathered,
            self.stale_baseline.len(),
            if self.stale_baseline.len() == 1 { "y" } else { "ies" },
        );
        out
    }

    /// JSON rendering (hand-rolled; no serde in this environment).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.active.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"crate\": \"{}\", \"path\": \"{}\", \"line\": {}, \
                 \"col\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
                esc(f.rule),
                esc(&f.crate_name),
                esc(&f.path),
                f.line,
                f.col,
                esc(&f.message),
                esc(&f.snippet)
            );
        }
        out.push_str("\n  ],\n  \"stale_baseline\": [");
        for (i, e) in self.stale_baseline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"snippet\": \"{}\"}}",
                esc(&e.rule),
                esc(&e.path),
                esc(&e.snippet)
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"grandfathered\": {}\n}}",
            self.files_scanned, self.suppressed, self.grandfathered
        );
        out
    }
}

/// Runs every rule over the workspace, applies suppressions and the
/// baseline, and returns the gate result plus (optionally, for
/// `--write-baseline`) the raw unsuppressed findings.
pub fn analyze(ws: &WorkspaceModel, baseline: &[BaselineEntry]) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    let mut malformed: Vec<Finding> = Vec::new();
    let mut suppressions: BTreeMap<&str, Vec<Suppression>> = BTreeMap::new();
    for file in &ws.files {
        let (sups, bad) = parse_suppressions(file);
        suppressions.insert(file.rel_path.as_str(), sups);
        malformed.extend(bad);
    }

    raw.extend(crate::rules::iteration::check(ws));
    raw.extend(crate::rules::wallclock::check(ws));
    raw.extend(crate::rules::panic_path::check(ws));
    raw.extend(crate::rules::locks::check(ws));
    raw.extend(crate::rules::float_order::check(ws));
    raw.extend(crate::rules::executor_bypass::check(ws));

    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Report::default()
    };
    let mut unsuppressed: Vec<Finding> = Vec::new();
    for f in raw {
        let covered = suppressions
            .get(f.path.as_str())
            .into_iter()
            .flatten()
            .any(|s| s.lines.contains(&f.line) && s.rules.iter().any(|r| r == f.rule));
        if covered {
            report.suppressed += 1;
        } else {
            unsuppressed.push(f);
        }
    }
    // Baseline matching: an entry may cover several findings (e.g. the same
    // line content repeated); an entry covering none is stale.
    let mut matched: Vec<bool> = vec![false; baseline.len()];
    for f in &unsuppressed {
        let mut hit = false;
        for (i, e) in baseline.iter().enumerate() {
            if e.rule == f.rule && e.path == f.path && e.snippet == f.snippet {
                matched[i] = true;
                hit = true;
            }
        }
        if hit {
            report.grandfathered += 1;
        } else {
            report.active.push(f.clone());
        }
    }
    // Malformed suppressions are never themselves suppressible or baselined.
    report.active.extend(malformed);
    report
        .stale_baseline
        .extend(baseline.iter().zip(&matched).filter_map(
            |(e, &m)| {
                if m {
                    None
                } else {
                    Some(e.clone())
                }
            },
        ));
    report
        .active
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    report
}

/// `analyze` without a baseline, returning raw unsuppressed findings — the
/// input to `--write-baseline`.
pub fn unsuppressed_findings(ws: &WorkspaceModel) -> Vec<Finding> {
    let report = analyze(ws, &[]);
    report.active
}
