//! The rising-bandit elimination algorithm.

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use std::collections::HashMap;
use std::hash::Hash;
use ve_ml::Ewma;

/// Hyperparameters of the rising bandit (Section 3.2.5).
#[derive(Debug, Clone, Copy)]
pub struct RisingBanditConfig {
    /// Horizon `T`: the future step at which the upper bound is evaluated.
    /// Small values (e.g. 20) eliminate arms quickly; larger values (50–100)
    /// are more robust but cost more feature extraction.
    pub horizon: usize,
    /// Slope window `C`: the upper-bound slope is the smoothed growth between
    /// steps `t - C` and `t`.
    pub slope_window: usize,
    /// EWMA span `w` used to smooth the raw per-step scores.
    pub smoothing_span: usize,
    /// Number of initial observations ignored before elimination may begin
    /// (the prototype waits 10 iterations because early scores are noisy).
    pub warmup: usize,
    /// When `true`, reaching the horizon forces selection of the arm with the
    /// best smoothed score even if several arms are still alive.
    pub force_select_at_horizon: bool,
}

impl Default for RisingBanditConfig {
    fn default() -> Self {
        Self {
            horizon: 50,
            slope_window: 5,
            smoothing_span: 5,
            warmup: 10,
            force_select_at_horizon: true,
        }
    }
}

impl RisingBanditConfig {
    /// The paper's resource-constrained setting (`T = 20`).
    pub fn short_horizon() -> Self {
        Self {
            horizon: 20,
            ..Self::default()
        }
    }
}

/// Per-arm bookkeeping.
#[derive(Debug, Clone)]
struct ArmState {
    ewma: Ewma,
    /// Smoothed score history (one entry per observed step).
    smoothed: Vec<f64>,
    eliminated_at: Option<usize>,
}

impl ArmState {
    fn new(span: usize) -> Self {
        Self {
            ewma: Ewma::with_span(span),
            smoothed: Vec::new(),
            eliminated_at: None,
        }
    }

    fn alive(&self) -> bool {
        self.eliminated_at.is_none()
    }
}

/// Public snapshot of an arm's state (used by the Figure 6 bench to plot the
/// bound evolution).
#[derive(Debug, Clone, PartialEq)]
pub struct ArmSnapshot<A> {
    /// The arm.
    pub arm: A,
    /// Latest smoothed score, if any observation has been made.
    pub lower_bound: Option<f64>,
    /// Upper bound on the score at the horizon, if computable.
    pub upper_bound: Option<f64>,
    /// Whether the arm is still a candidate.
    pub alive: bool,
    /// The step at which the arm was eliminated, if it was.
    pub eliminated_at: Option<usize>,
}

/// Events emitted by [`RisingBandit::observe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BanditEvent<A> {
    /// Arms eliminated at this step.
    Eliminated(Vec<A>),
    /// A single arm remains (or was force-selected at the horizon).
    Selected(A),
    /// Nothing changed.
    None,
}

/// Rising-bandit selector over arms of type `A`.
#[derive(Debug, Clone)]
pub struct RisingBandit<A: Copy + Eq + Hash> {
    config: RisingBanditConfig,
    order: Vec<A>,
    arms: HashMap<A, ArmState>,
    step: usize,
    selected: Option<A>,
}

impl<A: Copy + Eq + Hash> RisingBandit<A> {
    /// Creates a bandit over the given arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or contains duplicates.
    pub fn new(arms: Vec<A>, config: RisingBanditConfig) -> Self {
        assert!(!arms.is_empty(), "need at least one arm");
        let mut map = HashMap::with_capacity(arms.len());
        for &a in &arms {
            assert!(
                map.insert(a, ArmState::new(config.smoothing_span))
                    .is_none(),
                "duplicate arm"
            );
        }
        let selected = if arms.len() == 1 { Some(arms[0]) } else { None };
        Self {
            config,
            order: arms,
            arms: map,
            step: 0,
            selected,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RisingBanditConfig {
        &self.config
    }

    /// Number of observation steps consumed so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Arms still under consideration, in insertion order.
    pub fn active_arms(&self) -> Vec<A> {
        self.order
            .iter()
            .copied()
            .filter(|a| self.arms[a].alive())
            .collect()
    }

    /// The selected arm once only one candidate remains.
    pub fn selected(&self) -> Option<A> {
        self.selected
    }

    /// Whether feature selection has converged to a single arm.
    pub fn is_converged(&self) -> bool {
        self.selected.is_some()
    }

    /// Current snapshot of every arm (for diagnostics and the Figure 6 plot).
    pub fn snapshots(&self) -> Vec<ArmSnapshot<A>> {
        self.order
            .iter()
            .map(|&a| {
                let state = &self.arms[&a];
                ArmSnapshot {
                    arm: a,
                    lower_bound: state.smoothed.last().copied(),
                    upper_bound: self.upper_bound(state),
                    alive: state.alive(),
                    eliminated_at: state.eliminated_at,
                }
            })
            .collect()
    }

    /// Feeds one step of scores — one `(arm, score)` pair for every arm that
    /// is still alive (scores for eliminated arms are ignored; missing scores
    /// for alive arms simply skip that arm's update this step, which happens
    /// when cross-validation could not be evaluated yet).
    pub fn observe(&mut self, scores: &[(A, f64)]) -> BanditEvent<A> {
        if self.selected.is_some() {
            return BanditEvent::None;
        }
        self.step += 1;
        for &(arm, score) in scores {
            if let Some(state) = self.arms.get_mut(&arm) {
                if state.alive() {
                    let smoothed = state.ewma.update(score);
                    state.smoothed.push(smoothed);
                }
            }
        }

        let mut eliminated = Vec::new();
        if self.step > self.config.warmup {
            // Highest lower bound among alive arms.
            let best_lower = self
                .order
                .iter()
                .filter(|a| self.arms[a].alive())
                .filter_map(|a| self.arms[a].smoothed.last().copied())
                .fold(f64::NEG_INFINITY, f64::max);
            for &arm in &self.order {
                let state = &self.arms[&arm];
                if !state.alive() {
                    continue;
                }
                if let Some(upper) = self.upper_bound(state) {
                    // Strict inequality: ties keep the arm alive.
                    if upper < best_lower {
                        eliminated.push(arm);
                    }
                }
            }
            for &arm in &eliminated {
                self.arms.get_mut(&arm).expect("known arm").eliminated_at = Some(self.step);
            }
        }

        // Forced selection at the horizon.
        let alive = self.active_arms();
        if alive.len() == 1 {
            self.selected = Some(alive[0]);
            return BanditEvent::Selected(alive[0]);
        }
        if self.config.force_select_at_horizon && self.step >= self.config.horizon {
            let best = alive
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let sa = self.arms[&a].smoothed.last().copied().unwrap_or(f64::MIN);
                    let sb = self.arms[&b].smoothed.last().copied().unwrap_or(f64::MIN);
                    sa.partial_cmp(&sb).expect("NaN score")
                })
                .expect("at least one alive arm");
            for &arm in &alive {
                if arm != best {
                    self.arms.get_mut(&arm).expect("known arm").eliminated_at = Some(self.step);
                }
            }
            self.selected = Some(best);
            return BanditEvent::Selected(best);
        }

        if eliminated.is_empty() {
            BanditEvent::None
        } else {
            BanditEvent::Eliminated(eliminated)
        }
    }

    /// Upper bound `u_f = l_f + ω_f · (T − t)` with the slope computed over
    /// the window `C` (Section 3.2.4). Returns `None` until enough smoothed
    /// observations exist.
    fn upper_bound(&self, state: &ArmState) -> Option<f64> {
        let n = state.smoothed.len();
        if n == 0 {
            return None;
        }
        let lower = state.smoothed[n - 1];
        let c = self.config.slope_window;
        if n <= c {
            // Not enough history for a slope: the bound is unbounded in
            // principle; report the most optimistic finite value (perfect
            // score) so the arm cannot be eliminated yet.
            return Some(f64::INFINITY);
        }
        let slope = ((state.smoothed[n - 1] - state.smoothed[n - 1 - c]) / c as f64).max(0.0);
        let remaining = self.config.horizon.saturating_sub(self.step) as f64;
        Some(lower + slope * remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulated learning curve: approaches `ceiling` with rate `rate`, plus
    /// deterministic ripple to mimic CV noise.
    fn curve(ceiling: f64, rate: f64, step: usize) -> f64 {
        let t = step as f64;
        let ripple = 0.01 * ((step * 7919 % 13) as f64 / 13.0 - 0.5);
        (ceiling * (1.0 - (-rate * t).exp()) + ripple).clamp(0.0, 1.0)
    }

    fn run_bandit(
        ceilings: &[f64],
        config: RisingBanditConfig,
        steps: usize,
    ) -> (RisingBandit<usize>, Option<usize>) {
        let arms: Vec<usize> = (0..ceilings.len()).collect();
        let mut bandit = RisingBandit::new(arms.clone(), config);
        for step in 1..=steps {
            let scores: Vec<(usize, f64)> = bandit
                .active_arms()
                .into_iter()
                .map(|a| (a, curve(ceilings[a], 0.15, step)))
                .collect();
            if let BanditEvent::Selected(_) = bandit.observe(&scores) {
                break;
            }
        }
        let sel = bandit.selected();
        (bandit, sel)
    }

    #[test]
    fn selects_the_best_arm_with_clear_gaps() {
        let (bandit, selected) =
            run_bandit(&[0.85, 0.55, 0.30, 0.05], RisingBanditConfig::default(), 60);
        assert_eq!(selected, Some(0));
        assert!(bandit.is_converged());
    }

    #[test]
    fn bad_arms_are_eliminated_before_the_horizon() {
        let (bandit, _) = run_bandit(&[0.85, 0.10], RisingBanditConfig::default(), 60);
        let snaps = bandit.snapshots();
        let bad = snaps.iter().find(|s| s.arm == 1).unwrap();
        assert!(bad.eliminated_at.is_some());
        assert!(
            bad.eliminated_at.unwrap() < 50,
            "a hopeless arm should fall before the horizon: {:?}",
            bad.eliminated_at
        );
    }

    #[test]
    fn no_elimination_during_warmup() {
        let arms = vec![0usize, 1];
        let mut bandit = RisingBandit::new(arms, RisingBanditConfig::default());
        for step in 1..=10 {
            let scores = vec![(0usize, 0.9), (1usize, 0.05)];
            let event = bandit.observe(&scores);
            assert_eq!(
                event,
                BanditEvent::None,
                "no elimination during warmup (step {step})"
            );
        }
        assert_eq!(bandit.active_arms().len(), 2);
    }

    #[test]
    fn shorter_horizon_converges_faster() {
        let ceilings = [0.8, 0.7, 0.5, 0.3, 0.1];
        let (fast, sel_fast) = run_bandit(&ceilings, RisingBanditConfig::short_horizon(), 100);
        let (slow, sel_slow) = run_bandit(&ceilings, RisingBanditConfig::default(), 100);
        assert!(sel_fast.is_some() && sel_slow.is_some());
        assert!(
            fast.step() <= slow.step(),
            "T=20 should converge no later than T=50 ({} vs {})",
            fast.step(),
            slow.step()
        );
    }

    #[test]
    fn forced_selection_at_horizon_picks_current_best() {
        // Two arms that stay extremely close: elimination may never trigger,
        // but the horizon forces a winner.
        let (bandit, selected) = run_bandit(&[0.700, 0.699], RisingBanditConfig::default(), 80);
        assert!(selected.is_some());
        assert!(bandit.step() <= 50, "selection must happen by T");
    }

    #[test]
    fn late_bloomer_survives_thanks_to_optimistic_bound() {
        // Arm 1 starts worse but rises later; with the default horizon the
        // bandit must not eliminate it during its slow early phase... and a
        // slowly-rising arm whose upper bound stays above the leader's lower
        // bound survives until the curves separate for good.
        let arms = vec![0usize, 1usize];
        let mut bandit = RisingBandit::new(arms, RisingBanditConfig::default());
        let mut eliminated_early = false;
        for step in 1..=25 {
            // Arm 0: quick riser to 0.6. Arm 1: slow riser that passes it later.
            let a0 = curve(0.6, 0.3, step);
            let a1 = curve(0.8, 0.06, step);
            let event = bandit.observe(&[(0, a0), (1, a1)]);
            if step <= 15 {
                if let BanditEvent::Eliminated(arms) = &event {
                    if arms.contains(&1) {
                        eliminated_early = true;
                    }
                }
            }
        }
        assert!(
            !eliminated_early,
            "slow-but-rising arm must survive early steps"
        );
    }

    #[test]
    fn selected_bandit_ignores_further_observations() {
        let (mut bandit, selected) = run_bandit(&[0.9, 0.1], RisingBanditConfig::default(), 60);
        assert!(selected.is_some());
        let before = bandit.step();
        assert_eq!(bandit.observe(&[(0, 0.5), (1, 0.99)]), BanditEvent::None);
        assert_eq!(bandit.step(), before);
        assert_eq!(bandit.selected(), selected);
    }

    #[test]
    fn single_arm_is_selected_immediately() {
        let bandit: RisingBandit<usize> = RisingBandit::new(vec![3], RisingBanditConfig::default());
        assert_eq!(bandit.selected(), Some(3));
    }

    #[test]
    fn snapshots_expose_bounds() {
        let arms = vec![0usize, 1];
        let mut bandit = RisingBandit::new(arms, RisingBanditConfig::default());
        for step in 1..=12 {
            bandit.observe(&[(0, curve(0.8, 0.2, step)), (1, curve(0.4, 0.2, step))]);
        }
        let snaps = bandit.snapshots();
        for s in &snaps {
            assert!(s.lower_bound.is_some());
            let u = s.upper_bound.unwrap();
            assert!(u >= s.lower_bound.unwrap(), "upper >= lower");
        }
    }

    #[test]
    #[should_panic(expected = "need at least one arm")]
    fn rejects_empty_arms() {
        let _: RisingBandit<usize> = RisingBandit::new(vec![], RisingBanditConfig::default());
    }

    #[test]
    #[should_panic(expected = "duplicate arm")]
    fn rejects_duplicate_arms() {
        let _: RisingBandit<usize> = RisingBandit::new(vec![1, 1], RisingBanditConfig::default());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn always_converges_to_an_arm_that_was_offered(
                ceilings in proptest::collection::vec(0.05f64..0.95, 2..6),
            ) {
                let (bandit, selected) =
                    run_bandit(&ceilings, RisingBanditConfig::default(), 80);
                let selected = selected.expect("must converge by the horizon");
                prop_assert!(selected < ceilings.len());
                prop_assert!(bandit.is_converged());
                // The selected arm should be within 0.15 of the best ceiling
                // (the bandit guarantees near-optimality, not optimality).
                let best = ceilings.iter().cloned().fold(f64::MIN, f64::max);
                prop_assert!(ceilings[selected] >= best - 0.15,
                    "selected ceiling {} vs best {}", ceilings[selected], best);
            }
        }
    }
}
