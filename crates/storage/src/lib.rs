//! `ve-storage` — the Storage Manager (SM).
//!
//! The paper's SM "stores and retrieves all persisted data, which includes
//! video metadata (e.g., path, duration, start time), labels, features, and
//! models" (Section 2.3) and is built from off-the-shelf components (DuckDB
//! for metadata and labels, Parquet files for feature vectors, PyTorch
//! checkpoints for models). This crate builds the same component as a small
//! embedded store so the repository is self-contained:
//!
//! * [`VideoMetadataStore`] — the video catalog (`AddVideo` rows),
//! * [`LabelStore`] — user-provided labels with their time spans,
//! * [`FeatureStore`] — per-extractor feature vectors keyed by
//!   `(extractor, video)`, the equivalent of the paper's Parquet files,
//! * [`ModelRegistry`] — trained-model metadata plus in-memory handles to the
//!   most recent model per extractor, and
//! * a hand-written binary snapshot format ([`persist`]) so the whole state
//!   can be written to and reloaded from a single file without pulling in a
//!   serialization framework, and
//! * an append-only, checksummed label log ([`wal::LabelWal`]) so that the
//!   one piece of state that cannot be recomputed — the user's labels —
//!   survives a crash between snapshots.
//!
//! All stores are cheap to clone behind the [`StorageManager`] facade and are
//! safe to share across the Task Scheduler's worker threads.

pub mod codec;
pub mod error;
pub mod feature_store;
pub mod labels;
pub mod metadata;
pub mod model_registry;
pub mod persist;
pub mod wal;

pub use error::StorageError;
pub use feature_store::{FeatureStore, FeatureStoreChange, VideoFeatures};
pub use labels::{LabelRecord, LabelStore};
pub use metadata::{VideoMetadataStore, VideoRecord};
pub use model_registry::{ModelRecord, ModelRegistry};
pub use wal::{LabelWal, WalRecovery, WalSync};

use parking_lot::RwLock;
use std::sync::Arc;

/// Facade bundling the individual stores, mirroring the paper's SM component.
#[derive(Debug, Clone, Default)]
pub struct StorageManager {
    inner: Arc<RwLock<StorageInner>>,
}

#[derive(Debug, Default)]
struct StorageInner {
    metadata: VideoMetadataStore,
    labels: LabelStore,
    features: FeatureStore,
}

impl StorageManager {
    /// Creates an empty storage manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs a closure with read access to the video catalog.
    pub fn with_metadata<R>(&self, f: impl FnOnce(&VideoMetadataStore) -> R) -> R {
        f(&self.inner.read().metadata)
    }

    /// Runs a closure with write access to the video catalog.
    pub fn with_metadata_mut<R>(&self, f: impl FnOnce(&mut VideoMetadataStore) -> R) -> R {
        f(&mut self.inner.write().metadata)
    }

    /// Runs a closure with read access to the label store.
    pub fn with_labels<R>(&self, f: impl FnOnce(&LabelStore) -> R) -> R {
        f(&self.inner.read().labels)
    }

    /// Runs a closure with write access to the label store.
    pub fn with_labels_mut<R>(&self, f: impl FnOnce(&mut LabelStore) -> R) -> R {
        f(&mut self.inner.write().labels)
    }

    /// Runs a closure with read access to the feature store.
    pub fn with_features<R>(&self, f: impl FnOnce(&FeatureStore) -> R) -> R {
        f(&self.inner.read().features)
    }

    /// Runs a closure with write access to the feature store.
    pub fn with_features_mut<R>(&self, f: impl FnOnce(&mut FeatureStore) -> R) -> R {
        f(&mut self.inner.write().features)
    }

    /// Serializes metadata, labels, and features into a snapshot buffer.
    pub fn snapshot(&self) -> Vec<u8> {
        let inner = self.inner.read();
        persist::encode_snapshot(&inner.metadata, &inner.labels, &inner.features)
    }

    /// Restores a storage manager from a snapshot buffer.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, StorageError> {
        let (metadata, labels, features) = persist::decode_snapshot(bytes)?;
        Ok(Self {
            inner: Arc::new(RwLock::new(StorageInner {
                metadata,
                labels,
                features,
            })),
        })
    }

    /// Writes a snapshot to a file.
    pub fn save_to_file(&self, path: &std::path::Path) -> Result<(), StorageError> {
        std::fs::write(path, self.snapshot()).map_err(StorageError::Io)
    }

    /// Loads a snapshot from a file.
    pub fn load_from_file(path: &std::path::Path) -> Result<Self, StorageError> {
        let bytes = std::fs::read(path).map_err(StorageError::Io)?;
        Self::from_snapshot(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_features::ExtractorId;
    use ve_vidsim::{TimeRange, VideoId};

    #[test]
    fn facade_round_trip_through_snapshot() {
        let sm = StorageManager::new();
        sm.with_metadata_mut(|m| {
            m.insert(VideoRecord {
                vid: VideoId(1),
                path: "a.mp4".into(),
                duration: 10.0,
                start_timestamp: 0.0,
            })
        });
        sm.with_labels_mut(|l| {
            l.add(LabelRecord {
                vid: VideoId(1),
                range: TimeRange::new(0.0, 1.0),
                classes: vec![2],
                iteration: 0,
            })
        });
        sm.with_features_mut(|f| {
            f.put(
                ExtractorId::R3d,
                VideoId(1),
                vec![ve_features::FeatureVector {
                    extractor: ExtractorId::R3d,
                    vid: VideoId(1),
                    range: TimeRange::new(0.0, 1.0),
                    data: vec![0.5, -0.25, 1.0],
                }],
            )
        });

        let snapshot = sm.snapshot();
        let restored = StorageManager::from_snapshot(&snapshot).unwrap();
        assert_eq!(restored.with_metadata(|m| m.len()), 1);
        assert_eq!(restored.with_labels(|l| l.len()), 1);
        assert_eq!(
            restored.with_features(|f| f.get(ExtractorId::R3d, VideoId(1)).unwrap().len()),
            1
        );
        let v = restored
            .with_features(|f| f.get(ExtractorId::R3d, VideoId(1)).unwrap().row(0).to_vec());
        assert_eq!(v, vec![0.5, -0.25, 1.0]);
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("ve_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.bin");
        let sm = StorageManager::new();
        sm.with_metadata_mut(|m| {
            m.insert(VideoRecord {
                vid: VideoId(7),
                path: "x.mp4".into(),
                duration: 5.0,
                start_timestamp: 100.0,
            })
        });
        sm.save_to_file(&path).unwrap();
        let loaded = StorageManager::load_from_file(&path).unwrap();
        assert_eq!(
            loaded.with_metadata(|m| m.get(VideoId(7)).unwrap().path.clone()),
            "x.mp4"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let err = StorageManager::from_snapshot(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }
}
