//! Graceful-degradation ledger.
//!
//! Every fault the system absorbs instead of aborting is recorded as a
//! [`Degradation`] so session outcomes state exactly what was lost. The
//! ledger is append-only and drained once per report; entries are recorded in
//! a deterministic order (iteration-major, submission order within an
//! iteration), so two runs with the same seed and fault plan produce
//! bit-identical ledgers at any worker/thread count.

use ve_features::ExtractorId;
use ve_vidsim::VideoId;

/// One absorbed fault: what failed, where, and what the system served
/// instead. `Ord` (variant-major, then fields) gives degradations a stable
/// place in the observability event plane's canonical order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Degradation {
    /// A training request exhausted its retry budget. The previous model
    /// version (if any) kept serving predictions for the iteration.
    TrainingFailed {
        /// Session iteration of the failed request.
        iteration: u32,
        /// Extractor whose model was not retrained.
        extractor: ExtractorId,
    },
    /// Feature extraction for a video permanently failed; the video stays
    /// `pending` in the acquisition index and selection proceeds over the
    /// covered pool.
    ExtractionGaveUp {
        /// Session iteration the extraction belonged to.
        iteration: u32,
        /// Extractor that could not produce the features.
        extractor: ExtractorId,
        /// Video left unextracted.
        vid: VideoId,
    },
    /// Lazily-extended selection candidates whose extraction failed; the
    /// batch was chosen from the remaining covered pool.
    CandidatesLost {
        /// Session iteration of the selection call.
        iteration: u32,
        /// Number of candidate videos dropped from the pool.
        videos: usize,
    },
    /// Batch inference failed, so a probability-based acquisition function
    /// fell back to coverage-only (greedy k-center) selection for the call.
    CoverageFallback {
        /// Session iteration of the selection call.
        iteration: u32,
        /// Extractor whose batch-inference backend failed.
        extractor: ExtractorId,
    },
    /// Row inference for a user-facing prediction failed; the segment was
    /// reported without predictions.
    PredictionDropped {
        /// Session iteration the prediction belonged to.
        iteration: u32,
        /// Video whose predictions were dropped.
        vid: VideoId,
    },
    /// A cross-validated quality evaluation failed; the bandit saw no new
    /// reward observation for the extractor this iteration.
    EvaluationLost {
        /// Session iteration of the evaluation.
        iteration: u32,
        /// Extractor whose evaluation was lost.
        extractor: ExtractorId,
    },
}
