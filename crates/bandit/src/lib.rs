//! `ve-bandit` — rising-bandit feature-extractor selection (Section 3.2).
//!
//! VOCALExplore must pick, among several candidate pretrained feature
//! extractors, the one that yields the best domain-specific models — without
//! a validation set, without extracting every feature from every video, and
//! while model quality is still rising as labels accumulate. The paper casts
//! this as a **Rising Bandit** problem (Li et al., AAAI 2020): each extractor
//! is an arm whose reward (cross-validated macro F1) increases concavely with
//! the number of labels, so an arm can be eliminated as soon as an upper
//! bound on its future reward falls below another arm's lower bound.
//!
//! VOCALExplore's adaptations (Section 3.2.4) are all implemented here:
//!
//! * rewards are smoothed with an EWMA of span `w` before bounds are computed
//!   (measured CV F1 is noisy),
//! * the slope used for the upper bound is computed over a window of `C`
//!   steps rather than consecutive steps (growth is not strictly concave),
//! * evaluation only starts after a warm-up of 10 iterations, and
//! * *all* remaining arms are evaluated at every step, because every new
//!   batch of labels can update every candidate's model.

pub mod rising;

pub use rising::{ArmSnapshot, BanditEvent, RisingBandit, RisingBanditConfig};
