//! Feature standardization.
//!
//! Linear probes on pretrained embeddings are sensitive to per-dimension
//! scale. The Model Manager standardizes features (zero mean, unit variance
//! per dimension, computed on the training split only) before fitting, which
//! also keeps the SGD learning-rate defaults stable across the very different
//! embedding geometries produced by different feature extractors.

/// Per-dimension standardizer (z-score).
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Fits the scaler on the given rows.
    ///
    /// Dimensions with zero variance are left unscaled (std treated as 1) so
    /// constant features do not blow up to NaN.
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler on empty data");
        let dim = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == dim), "ragged rows");
        let n = rows.len() as f64;
        let mut mean = vec![0.0f64; dim];
        for row in rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; dim];
        for row in rows {
            for ((v, &x), m) in var.iter_mut().zip(row).zip(&mean) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-8 {
                    1.0
                } else {
                    s as f32
                }
            })
            .collect();
        Self {
            mean: mean.iter().map(|&m| m as f32).collect(),
            std,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Transforms a single vector.
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }

    /// Transforms a batch of vectors.
    pub fn transform_batch(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Convenience: fit on `rows` and return the transformed rows plus the
    /// fitted scaler.
    pub fn fit_transform(rows: &[Vec<f32>]) -> (Vec<Vec<f32>>, Self) {
        let scaler = Self::fit(rows);
        (scaler.transform_batch(rows), scaler)
    }
}

/// Running per-dimension moments (count, sum, sum of squares in `f64`) from
/// which a [`StandardScaler`] can be derived at any point.
///
/// The warm-started Model Manager feeds each iteration's Δ new training rows
/// into the accumulator instead of re-fitting the scaler on the full training
/// set, so the scaler update is O(Δ · dim) rather than O(total · dim). The
/// derived statistics use the one-pass variance formula; they agree with the
/// two-pass [`StandardScaler::fit`] up to floating-point rounding, which is
/// covered by the warm-start tolerance contract (`warm-start/v1`), not the
/// bit-identical one.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalerMoments {
    count: f64,
    sum: Vec<f64>,
    sumsq: Vec<f64>,
}

impl ScalerMoments {
    /// An empty accumulator for `dim`-dimensional rows.
    pub fn new(dim: usize) -> Self {
        Self {
            count: 0.0,
            sum: vec![0.0; dim],
            sumsq: vec![0.0; dim],
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.sum.len()
    }

    /// Rows absorbed so far.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Absorbs one row.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn update_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.sum.len(), "dimension mismatch");
        self.count += 1.0;
        for ((s, q), &v) in self.sum.iter_mut().zip(&mut self.sumsq).zip(row) {
            let v = v as f64;
            *s += v;
            *q += v * v;
        }
    }

    /// Absorbs a batch of rows.
    pub fn update(&mut self, rows: &[Vec<f32>]) {
        for row in rows {
            self.update_row(row);
        }
    }

    /// Derives the scaler for the rows absorbed so far, with the same
    /// zero-variance floor as [`StandardScaler::fit`].
    ///
    /// # Panics
    /// Panics when no row has been absorbed yet.
    pub fn scaler(&self) -> StandardScaler {
        assert!(self.count > 0.0, "cannot derive a scaler from zero rows");
        let n = self.count;
        let mean: Vec<f32> = self.sum.iter().map(|&s| (s / n) as f32).collect();
        let std: Vec<f32> = self
            .sumsq
            .iter()
            .zip(&self.sum)
            .map(|(&q, &s)| {
                let m = s / n;
                let var = (q / n - m * m).max(0.0);
                let sd = var.sqrt();
                if sd < 1e-8 {
                    1.0
                } else {
                    sd as f32
                }
            })
            .collect();
        StandardScaler { mean, std }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_zero_mean_unit_variance() {
        let rows = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let (out, _scaler) = StandardScaler::fit_transform(&rows);
        let n = out.len() as f32;
        for d in 0..2 {
            let mean: f32 = out.iter().map(|r| r[d]).sum::<f32>() / n;
            let var: f32 = out.iter().map(|r| (r[d] - mean).powi(2)).sum::<f32>() / n;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "var {var}");
        }
    }

    #[test]
    fn constant_dimension_is_left_alone() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let (out, _) = StandardScaler::fit_transform(&rows);
        assert!(out.iter().all(|r| r[0].is_finite()));
        assert!((out[0][0] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn transform_uses_training_statistics() {
        let rows = vec![vec![0.0], vec![10.0]];
        let scaler = StandardScaler::fit(&rows);
        // mean 5, std 5 -> 20 maps to 3.
        assert!((scaler.transform(&[20.0])[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_input() {
        StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension_on_transform() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        scaler.transform(&[1.0]);
    }

    #[test]
    fn moments_scaler_matches_two_pass_fit() {
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![i as f32 * 0.7 - 3.0, (i % 7) as f32 * 10.0, 5.0])
            .collect();
        let two_pass = StandardScaler::fit(&rows);
        let mut moments = ScalerMoments::new(3);
        moments.update(&rows);
        let one_pass = moments.scaler();
        assert_eq!(moments.count(), 40);
        for probe in [&rows[0], &rows[17], &rows[39]] {
            for (a, b) in two_pass
                .transform(probe)
                .iter()
                .zip(one_pass.transform(probe))
            {
                assert!((a - b).abs() < 1e-4, "two-pass {a} vs one-pass {b}");
            }
        }
    }

    #[test]
    fn moments_are_order_and_batching_invariant() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, -(i as f32) * 2.0]).collect();
        let mut all_at_once = ScalerMoments::new(2);
        all_at_once.update(&rows);
        let mut incremental = ScalerMoments::new(2);
        incremental.update(&rows[..7]);
        incremental.update(&rows[7..]);
        assert_eq!(all_at_once, incremental);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn moments_reject_empty_scaler_derivation() {
        ScalerMoments::new(2).scaler();
    }
}
