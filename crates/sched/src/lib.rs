//! `ve-sched` — the Task Scheduler (Section 4).
//!
//! VOCALExplore decomposes each `Explore` call into tasks of five types —
//! feature extraction (`T_f`), model training (`T_m`), model inference
//! (`T_i`), feature evaluation (`T_e`), and sample selection (`T_s`) — plus
//! the low-priority eager feature-extraction tasks (`T_f⁻`) introduced by the
//! `VE-full` strategy. The scheduler's job is to minimize the *user-visible*
//! latency of each iteration, `T_visible = T_total − B·T_user`, without
//! letting the model the user sees become stale.
//!
//! The crate provides:
//!
//! * [`task`] — task descriptors with priorities and simulated costs,
//! * [`queue`] — a priority queue (critical → normal → background, FIFO
//!   within a priority),
//! * [`executor`] — a panic-safe worker pool that runs closures in priority
//!   order (the "real" execution path behind `ve-core`'s async session
//!   engine), with condvar-based idle waits and typed task handles,
//! * [`simclock`] — a resource-limited simulated clock used by the latency
//!   experiments (the GPU costs themselves are simulated, Table 3),
//! * [`strategy`] — the Serial, `VE-partial`, and `VE-full` scheduling
//!   strategies and their per-iteration visible-latency accounting,
//! * [`jit`] — just-in-time model-training scheduling
//!   (`max(0, B − ⌈T_m / T_user⌉)` labels before training starts), and
//! * [`eager`] — the eager feature-extraction planner that fills idle
//!   labeling time with background `T_f⁻` tasks.

pub mod eager;
pub mod executor;
pub mod fault;
pub mod jit;
pub mod parallel;
pub mod queue;
pub mod simclock;
pub mod strategy;
pub mod task;

pub use eager::{EagerExtractionPlan, EagerPlanner};
pub use executor::{
    queue_class, Executor, ExecutorStats, JobPanicked, RetryPolicy, TaskFailure, TaskHandle,
};
pub use fault::{FaultInjector, FaultPlan, FaultRule, FaultSite, InjectedFault};
pub use jit::{JitTrainingPolicy, TrainingSchedule};
pub use queue::PriorityTaskQueue;
pub use simclock::{SimClock, SimTaskOutcome};
pub use strategy::{iteration_latency, IterationCosts, IterationLatency, SchedulerStrategy};
pub use task::{Priority, Task, TaskId, TaskKind};
