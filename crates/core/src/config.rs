//! System configuration.

use ve_al::VeSampleConfig;
use ve_bandit::RisingBanditConfig;
use ve_features::ExtractorId;
use ve_ml::TrainConfig;
use ve_sched::fault::FaultPlan;
use ve_sched::{RetryPolicy, SchedulerStrategy};
use ve_vidsim::{Dataset, DatasetName, TaskKind};

/// How the ALM chooses the acquisition function.
#[derive(Debug, Clone, Copy)]
pub enum SamplingPolicy {
    /// Always use the given acquisition function (the fixed baselines of
    /// Figure 3: Random, Coreset, Cluster-Margin).
    Fixed(ve_al::AcquisitionKind),
    /// The `VE-sample` policy: start with Random, switch to the configured
    /// active-learning function when the label distribution is skewed.
    VeSample(VeSampleConfig),
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy::VeSample(VeSampleConfig::default())
    }
}

/// How the ALM chooses the feature extractor.
#[derive(Debug, Clone, Copy)]
pub enum FeatureSelectionPolicy {
    /// Always use one extractor (the per-feature baselines of Figure 4).
    /// (The "Concat" baseline of Figure 4 — concatenating every candidate
    /// extractor — is reproduced directly by the `fig4` experiment binary
    /// because it is not a mode the interactive system itself offers.)
    Fixed(ExtractorId),
    /// The rising-bandit selection of Section 3.2 (`VE-select`).
    Bandit(RisingBanditConfig),
}

impl Default for FeatureSelectionPolicy {
    fn default() -> Self {
        FeatureSelectionPolicy::Bandit(RisingBanditConfig::default())
    }
}

/// Preprocessing performed before the first `Explore` call (only the
/// baselines use this; VOCALExplore itself never preprocesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreprocessPolicy {
    /// No preprocessing (pay-as-you-go).
    #[default]
    None,
    /// Extract the active feature(s) from every video up front
    /// (`Coreset-PP` and `VE-lazy (PP)` in Figures 2 and 8).
    AllVideos,
}

/// Warm-started training (tentpole of the per-iteration compute cache).
///
/// When enabled, the Model Manager keeps the previous iteration's weights per
/// extractor and fine-tunes on the Δ new labels plus a bounded, deterministic
/// replay sample of older examples, so per-train cost is O(Δ + replay_cap)
/// instead of O(total labels). Warm-started models follow the versioned
/// tolerance contract `warm-start/v1`: the trained weights are a deterministic
/// function of the training-call history (bit-identical across runs and thread
/// counts) but are *not* bit-identical to the cold-start weights; model
/// quality must stay within the pinned tolerance asserted in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStartConfig {
    /// Whether the Model Manager fine-tunes from the previous weights.
    /// Off by default: cold-start remains the reference reproduction path.
    pub enabled: bool,
    /// Maximum number of older examples replayed per warm update (sampled at
    /// deterministic even strides over the accumulated training set).
    pub replay_cap: usize,
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            replay_cap: 64,
        }
    }
}

/// Latency cost model for the in-process tasks.
///
/// Feature-extraction costs come from Table 3 throughputs; the remaining
/// tasks run in-process here but took seconds on the paper's hardware
/// (512/768-dimensional features, PyTorch linear probes), so their simulated
/// costs are modeled explicitly rather than measured from this crate's much
/// smaller in-process versions. The defaults approximate the prototype's
/// reported behaviour: sample selection and inference are cheap
/// (sub-100 ms per segment), training grows linearly with the number of
/// labels, and feature evaluation costs three short training runs (3-fold
/// CV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per sample-selection task (`T_s`).
    pub select_secs: f64,
    /// Seconds per model-inference task (`T_i`).
    pub infer_secs: f64,
    /// Fixed component of model training (`T_m`).
    pub train_base_secs: f64,
    /// Per-label component of model training.
    pub train_per_label_secs: f64,
    /// Seconds per feature-evaluation task (`T_e`), per candidate feature.
    pub eval_secs: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            select_secs: 0.05,
            infer_secs: 0.15,
            train_base_secs: 1.0,
            train_per_label_secs: 0.01,
            eval_secs: 2.0,
        }
    }
}

impl CostModel {
    /// Training cost for a given number of labels.
    pub fn train_secs(&self, labels: usize) -> f64 {
        self.train_base_secs + self.train_per_label_secs * labels as f64
    }
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct VocalExploreConfig {
    /// Dataset the corpus belongs to (drives the simulated feature
    /// extractors' signal profiles).
    pub dataset: DatasetName,
    /// Number of classes in the label vocabulary.
    pub num_classes: usize,
    /// Single- or multi-label task.
    pub task: TaskKind,
    /// Acquisition-function policy.
    pub sampling: SamplingPolicy,
    /// Feature-selection policy.
    pub feature_selection: FeatureSelectionPolicy,
    /// Scheduling strategy (Serial / VE-partial / VE-full).
    pub strategy: SchedulerStrategy,
    /// Preprocessing policy (baselines only).
    pub preprocess: PreprocessPolicy,
    /// Extra videos `X` processed when active learning needs a candidate
    /// pool and eager extraction is not available (VE-lazy variants).
    pub extra_candidates_x: usize,
    /// Maximum candidate windows an active selection considers per call.
    /// When the unlabeled pool exceeds this, the ALM's acquisition index
    /// reduces it with a deterministic cluster sketch (round-robin across
    /// feature-space clusters) instead of the old random shuffle-truncate,
    /// so per-call work stays bounded without dropping whole regions.
    pub candidate_cap: usize,
    /// Minimum number of labels before predictions are returned (the
    /// prototype waits for 5).
    pub min_labels_for_predictions: usize,
    /// Embedding dimensionality of the simulated extractors.
    pub feature_dim: usize,
    /// Training hyperparameters for the linear models.
    pub train: TrainConfig,
    /// Whether the ALM's model-version-aware probability cache is enabled.
    /// The cache is bit-identical to uncached inference (per-row
    /// `predict_proba` is independent of batch composition), so it defaults
    /// to on; the knob exists for equivalence audits and benchmarks.
    pub prob_cache: bool,
    /// Warm-started training configuration (off by default; see
    /// [`WarmStartConfig`] for the `warm-start/v1` tolerance contract).
    pub warm_start: WarmStartConfig,
    /// Latency cost model.
    pub costs: CostModel,
    /// Simulated seconds the user takes to label one segment (`T_user`).
    pub t_user: f64,
    /// RNG seed for sampling and simulation.
    pub seed: u64,
    /// Worker threads for the data-parallel compute kernels (distance scans,
    /// batch inference, CV folds). `0` uses the host's available
    /// parallelism; `1` forces single-threaded execution. Results are
    /// bit-identical at any setting — the knob trades wall-clock only.
    ///
    /// **Process-wide:** applied via `ve_sched::parallel::set_parallelism`
    /// when a [`crate::VocalExplore`] is constructed, so the most recently
    /// constructed system's setting governs all systems in the process.
    pub compute_threads: usize,
    /// Worker threads of the `ve_sched::Executor` the async session engine
    /// submits training / evaluation / eager-extraction tasks to. The paper's
    /// evaluation runs two extraction tasks concurrently on the GPU, hence
    /// the default of 2. Unlike `compute_threads` this knob changes *when*
    /// tasks complete (and therefore measured latency), never *what* they
    /// compute.
    pub executor_workers: usize,
    /// Real seconds per simulated second for the async session engine's
    /// measured-latency mode: modeled task costs (GPU extraction, training,
    /// user think time, ...) are slept for `cost * time_scale` wall-clock
    /// seconds on the thread executing the task, so wall-clock measurements
    /// divided by `time_scale` are comparable to the paper's latency axes.
    /// The synchronous facade ignores this knob entirely.
    pub time_scale: f64,
    /// Deterministic fault-injection plan for chaos testing. `None` (the
    /// default) disables injection entirely; a plan makes feature
    /// extraction, training, and inference fail as a pure function of
    /// `(plan.seed, site, key, attempt)` — bit-identical at any worker or
    /// thread count.
    pub fault_plan: Option<FaultPlan>,
    /// Retry budget and virtual-time backoff applied to faultable
    /// operations (extraction, training, inference) by both the synchronous
    /// facade and the async session engine. The two paths share the attempt
    /// numbering, so their outcomes under a fault plan are identical.
    pub retry: RetryPolicy,
    /// Whether the `ve-obs` sinks (deterministic event ledger, metrics
    /// registry, executor timing plane) record. Defaults on; turning it off
    /// reduces per-event cost to one relaxed atomic load. Degradations are
    /// recorded regardless — they are program state, not telemetry.
    pub observability: bool,
    /// Flight-recorder bound on the event ledger: retain at most this many
    /// droppable events (most recent wins; exact per-kind drop accounting).
    /// `None` (the default) keeps the ledger unbounded. Degradations are
    /// pinned and never evicted at any capacity.
    pub recorder_capacity: Option<usize>,
}

impl VocalExploreConfig {
    /// A configuration with the paper's defaults for the given dataset
    /// characteristics.
    pub fn new(dataset: DatasetName, num_classes: usize, task: TaskKind, seed: u64) -> Self {
        Self {
            dataset,
            num_classes,
            task,
            sampling: SamplingPolicy::default(),
            feature_selection: FeatureSelectionPolicy::default(),
            strategy: SchedulerStrategy::VeFull,
            preprocess: PreprocessPolicy::None,
            extra_candidates_x: 50,
            candidate_cap: 2_000,
            min_labels_for_predictions: 5,
            feature_dim: ve_features::simulator::DEFAULT_SIM_DIM,
            train: TrainConfig::default(),
            prob_cache: true,
            warm_start: WarmStartConfig::default(),
            costs: CostModel::default(),
            t_user: 10.0,
            seed,
            compute_threads: 0,
            executor_workers: 2,
            time_scale: 2e-3,
            fault_plan: None,
            retry: RetryPolicy::new(3, 0.05, 2.0),
            observability: true,
            recorder_capacity: None,
        }
    }

    /// Convenience constructor reading the dataset's characteristics.
    pub fn for_dataset(dataset: &Dataset, seed: u64) -> Self {
        Self::new(
            dataset.spec.name,
            dataset.vocabulary.len(),
            dataset.spec.task,
            seed,
        )
    }

    /// Overrides the sampling policy.
    pub fn with_sampling(mut self, sampling: SamplingPolicy) -> Self {
        self.sampling = sampling;
        self
    }

    /// Overrides the feature-selection policy.
    pub fn with_feature_selection(mut self, policy: FeatureSelectionPolicy) -> Self {
        self.feature_selection = policy;
        self
    }

    /// Overrides the scheduling strategy.
    pub fn with_strategy(mut self, strategy: SchedulerStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the preprocessing policy.
    pub fn with_preprocess(mut self, preprocess: PreprocessPolicy) -> Self {
        self.preprocess = preprocess;
        self
    }

    /// Overrides `X`, the number of extra candidate videos processed for
    /// active learning under the lazy strategies.
    pub fn with_extra_candidates(mut self, x: usize) -> Self {
        self.extra_candidates_x = x;
        self
    }

    /// Overrides the candidate-window cap of active selections.
    ///
    /// # Panics
    /// Panics if `cap == 0` (selection needs at least one candidate).
    pub fn with_candidate_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "candidate cap must be positive");
        self.candidate_cap = cap;
        self
    }

    /// Overrides the data-parallel worker count (`0` = host parallelism,
    /// `1` = single-threaded determinism audits).
    pub fn with_compute_threads(mut self, threads: usize) -> Self {
        self.compute_threads = threads;
        self
    }

    /// Overrides the executor worker count used by the async session engine.
    ///
    /// # Panics
    /// Panics if `workers == 0` (the executor needs at least one thread).
    pub fn with_executor_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one executor worker");
        self.executor_workers = workers;
        self
    }

    /// Enables or disables the ALM's probability cache (bit-identical either
    /// way; disabling is useful for equivalence audits and benchmarks).
    pub fn with_prob_cache(mut self, enabled: bool) -> Self {
        self.prob_cache = enabled;
        self
    }

    /// Overrides the warm-start configuration.
    pub fn with_warm_start(mut self, warm_start: WarmStartConfig) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Installs a deterministic fault-injection plan (chaos testing).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the retry budget / backoff for faultable operations.
    ///
    /// # Panics
    /// Panics if `retry.max_attempts == 0`.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        assert!(retry.max_attempts > 0, "need at least one attempt");
        self.retry = retry;
        self
    }

    /// Enables or disables the observability sinks (event ledger, metrics,
    /// executor timing plane). Selection, training, and degradation behavior
    /// are bit-identical either way.
    pub fn with_observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Bounds the event ledger to a flight-recorder ring of `capacity`
    /// droppable events (`None` = unbounded, the default). Selection,
    /// training, and degradation behavior are bit-identical either way —
    /// only how much telemetry is retained changes.
    pub fn with_recorder_capacity(mut self, capacity: Option<usize>) -> Self {
        self.recorder_capacity = capacity;
        self
    }

    /// Overrides the simulated-to-real time scale of the async session
    /// engine's measured-latency mode.
    ///
    /// # Panics
    /// Panics if the scale is not positive and finite.
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "time scale must be positive and finite"
        );
        self.time_scale = scale;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_vidsim::DatasetName;

    #[test]
    fn defaults_match_paper_settings() {
        let cfg = VocalExploreConfig::new(DatasetName::Deer, 9, TaskKind::SingleLabel, 0);
        assert_eq!(cfg.min_labels_for_predictions, 5);
        assert_eq!(cfg.t_user, 10.0);
        assert_eq!(cfg.strategy, SchedulerStrategy::VeFull);
        assert!(matches!(cfg.sampling, SamplingPolicy::VeSample(_)));
        assert!(matches!(
            cfg.feature_selection,
            FeatureSelectionPolicy::Bandit(_)
        ));
        assert_eq!(cfg.preprocess, PreprocessPolicy::None);
    }

    #[test]
    fn builder_overrides() {
        let cfg = VocalExploreConfig::new(DatasetName::K20, 20, TaskKind::SingleLabel, 1)
            .with_strategy(SchedulerStrategy::Serial)
            .with_sampling(SamplingPolicy::Fixed(ve_al::AcquisitionKind::Coreset))
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::Mvit))
            .with_preprocess(PreprocessPolicy::AllVideos)
            .with_extra_candidates(10);
        assert_eq!(cfg.strategy, SchedulerStrategy::Serial);
        assert_eq!(cfg.extra_candidates_x, 10);
        assert_eq!(cfg.preprocess, PreprocessPolicy::AllVideos);
    }

    #[test]
    fn for_dataset_reads_characteristics() {
        let ds = Dataset::scaled(DatasetName::Bdd, 0.1, 3);
        let cfg = VocalExploreConfig::for_dataset(&ds, 3);
        assert_eq!(cfg.num_classes, 6);
        assert_eq!(cfg.task, TaskKind::MultiLabel);
        assert_eq!(cfg.dataset, DatasetName::Bdd);
    }

    #[test]
    fn async_engine_knobs_default_and_override() {
        let cfg = VocalExploreConfig::new(DatasetName::Deer, 9, TaskKind::SingleLabel, 0);
        assert_eq!(
            cfg.executor_workers, 2,
            "paper runs two concurrent GPU tasks"
        );
        assert!(cfg.time_scale > 0.0);
        let cfg = cfg.with_executor_workers(4).with_time_scale(1e-4);
        assert_eq!(cfg.executor_workers, 4);
        assert_eq!(cfg.time_scale, 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one executor worker")]
    fn rejects_zero_executor_workers() {
        let _ = VocalExploreConfig::new(DatasetName::Deer, 9, TaskKind::SingleLabel, 0)
            .with_executor_workers(0);
    }

    #[test]
    fn cache_knobs_default_and_override() {
        let cfg = VocalExploreConfig::new(DatasetName::Deer, 9, TaskKind::SingleLabel, 0);
        assert!(cfg.prob_cache, "cache is bit-identical, so it defaults on");
        assert!(
            !cfg.warm_start.enabled,
            "warm-start/v1 is tolerance-contract, so it defaults off"
        );
        assert_eq!(cfg.warm_start.replay_cap, 64);
        let cfg = cfg.with_prob_cache(false).with_warm_start(WarmStartConfig {
            enabled: true,
            replay_cap: 16,
        });
        assert!(!cfg.prob_cache);
        assert!(cfg.warm_start.enabled);
        assert_eq!(cfg.warm_start.replay_cap, 16);
    }

    #[test]
    fn fault_knobs_default_off_and_override() {
        use ve_sched::fault::FaultRule;
        let cfg = VocalExploreConfig::new(DatasetName::Deer, 9, TaskKind::SingleLabel, 0);
        assert!(cfg.fault_plan.is_none(), "no faults unless asked for");
        assert_eq!(cfg.retry.max_attempts, 3);
        let plan = FaultPlan::uniform(7, FaultRule::transient(0.5, 2));
        let cfg = cfg
            .with_fault_plan(plan.clone())
            .with_retry(RetryPolicy::new(5, 0.1, 2.0));
        assert_eq!(cfg.fault_plan, Some(plan));
        assert_eq!(cfg.retry.max_attempts, 5);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn rejects_zero_retry_attempts() {
        let mut retry = RetryPolicy::none();
        retry.max_attempts = 0;
        let _ = VocalExploreConfig::new(DatasetName::Deer, 9, TaskKind::SingleLabel, 0)
            .with_retry(retry);
    }

    #[test]
    fn observability_knob_defaults_on_and_overrides() {
        let cfg = VocalExploreConfig::new(DatasetName::Deer, 9, TaskKind::SingleLabel, 0);
        assert!(cfg.observability, "sinks default on");
        let cfg = cfg.with_observability(false);
        assert!(!cfg.observability);
    }

    #[test]
    fn recorder_capacity_defaults_unbounded_and_overrides() {
        let cfg = VocalExploreConfig::new(DatasetName::Deer, 9, TaskKind::SingleLabel, 0);
        assert_eq!(cfg.recorder_capacity, None, "unbounded by default");
        let cfg = cfg.with_recorder_capacity(Some(256));
        assert_eq!(cfg.recorder_capacity, Some(256));
    }

    #[test]
    fn cost_model_training_scales_with_labels() {
        let costs = CostModel::default();
        assert!(costs.train_secs(100) > costs.train_secs(10));
        assert!((costs.train_secs(0) - costs.train_base_secs).abs() < 1e-12);
    }
}
