//! Deterministic fault injection for the async session engine.
//!
//! Production deployments of VOCALExplore face GPU extraction errors,
//! training-backend failures, and storage I/O faults. To test that the
//! session engine *degrades* instead of wedging — and to keep the repo's
//! bit-identical-replay discipline while doing so — faults are injected by a
//! seeded plan that decides failure as a **pure function** of
//! `(seed, site, key, attempt)`:
//!
//! * no wall clock and no mutable RNG stream, so the decision for a given
//!   operation is the same at any worker/thread count and on any replay;
//! * per-operation attempt numbering restarts at zero, so an operation's fate
//!   ("succeeds immediately", "succeeds after k retries", "permanently
//!   failed") is a deterministic constant of the plan — retrying the same
//!   operation later replays the identical outcome;
//! * a [`FaultRule::fail_limit`] bounds consecutive failures, which makes
//!   **fault transparency** provable: a plan whose limit is below the retry
//!   budget always succeeds within the budget, so the run's state transitions
//!   are bit-identical to a fault-free run.
//!
//! The injector itself is shared (behind an `Arc`) between the feature
//! manager, model manager, WAL, and session runner; the only mutable state is
//! a per-site injection counter kept for observability, which never feeds
//! back into decisions.

use parking_lot::Mutex;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Simulated GPU error during feature extraction (`FeatureManager`).
    FeatureExtraction,
    /// Training-backend failure (`ModelManager::train`).
    Training,
    /// Batch probability inference for sample selection.
    BatchInference,
    /// Row inference for a single segment prediction.
    RowInference,
    /// WAL record append I/O error (torn write).
    WalAppend,
    /// WAL fsync failure under `WalSync::Always`.
    WalFsync,
    /// Label-store snapshot decode failure.
    SnapshotDecode,
}

impl FaultSite {
    /// Every injection site, in declaration order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::FeatureExtraction,
        FaultSite::Training,
        FaultSite::BatchInference,
        FaultSite::RowInference,
        FaultSite::WalAppend,
        FaultSite::WalFsync,
        FaultSite::SnapshotDecode,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::FeatureExtraction => 0,
            FaultSite::Training => 1,
            FaultSite::BatchInference => 2,
            FaultSite::RowInference => 3,
            FaultSite::WalAppend => 4,
            FaultSite::WalFsync => 5,
            FaultSite::SnapshotDecode => 6,
        }
    }
}

/// Failure behavior at one site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Per-attempt failure probability in `[0, 1]`.
    pub probability: f64,
    /// Attempts at or beyond this index always succeed, bounding the number
    /// of consecutive failures any single operation can see. `None` means a
    /// key can fail at every attempt — permanent faults become possible.
    pub fail_limit: Option<u32>,
}

impl FaultRule {
    /// A rule that can fail any attempt forever (permanent faults possible).
    pub fn permanent(probability: f64) -> Self {
        Self {
            probability,
            fail_limit: None,
        }
    }

    /// A rule bounded to at most `limit` consecutive failures. With
    /// `limit <= retry_budget - 1` every operation succeeds within its
    /// budget, making the plan transparent to the final state.
    pub fn transient(probability: f64, limit: u32) -> Self {
        Self {
            probability,
            fail_limit: Some(limit),
        }
    }
}

/// A seeded, declarative fault schedule: one optional rule per site.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    rules: [Option<FaultRule>; FaultSite::ALL.len()],
}

impl FaultPlan {
    /// An empty plan (no site ever fails).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: [None; FaultSite::ALL.len()],
        }
    }

    /// Installs `rule` at `site`.
    pub fn with_rule(mut self, site: FaultSite, rule: FaultRule) -> Self {
        self.rules[site.index()] = Some(rule);
        self
    }

    /// A plan applying the same rule at every site.
    pub fn uniform(seed: u64, rule: FaultRule) -> Self {
        let mut plan = Self::new(seed);
        for site in FaultSite::ALL {
            plan.rules[site.index()] = Some(rule);
        }
        plan
    }

    /// The rule at `site`, if any.
    pub fn rule(&self, site: FaultSite) -> Option<FaultRule> {
        self.rules[site.index()]
    }

    /// Whether every installed rule has `fail_limit <= budget - 1`, i.e. the
    /// plan is provably invisible to a caller retrying `budget` times.
    pub fn transparent_under(&self, budget: u32) -> bool {
        self.rules.iter().flatten().all(|r| match r.fail_limit {
            Some(limit) => limit < budget,
            None => false,
        })
    }
}

/// One injected failure, as surfaced to typed error enums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Site the failure was injected at.
    pub site: FaultSite,
    /// Operation key the decision was hashed over.
    pub key: u64,
    /// Attempt index (0-based) that failed.
    pub attempt: u32,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected fault at {:?} (key {}, attempt {})",
            self.site, self.key, self.attempt
        )
    }
}

impl std::error::Error for InjectedFault {}

/// Decides and counts injected failures for a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-site injected-failure counters — observability only, never read by
    /// decision logic.
    injected: Mutex<[u64; FaultSite::ALL.len()]>,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            injected: Mutex::new([0; FaultSite::ALL.len()]),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether attempt `attempt` of the operation identified by `key` at
    /// `site` fails. Pure in `(plan, site, key, attempt)`; the injected
    /// counter bump is the only side effect.
    pub fn should_fail(&self, site: FaultSite, key: u64, attempt: u32) -> bool {
        let Some(rule) = self.plan.rule(site) else {
            return false;
        };
        if let Some(limit) = rule.fail_limit {
            if attempt >= limit {
                return false;
            }
        }
        let h = decision_hash(self.plan.seed, site.index() as u64, key, u64::from(attempt));
        // Top 53 bits → uniform f64 in [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let fail = unit < rule.probability;
        if fail {
            self.injected.lock()[site.index()] += 1;
        }
        fail
    }

    /// Failures injected at `site` so far.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.injected.lock()[site.index()]
    }

    /// Total failures injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.lock().iter().sum::<u64>()
    }
}

/// SplitMix64-style avalanche over the four decision inputs.
fn decision_hash(seed: u64, site: u64, key: u64, attempt: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(site.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(key.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(attempt.wrapping_add(1));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::uniform(7, FaultRule::permanent(0.5)));
        let b = FaultInjector::new(FaultPlan::uniform(7, FaultRule::permanent(0.5)));
        let c = FaultInjector::new(FaultPlan::uniform(8, FaultRule::permanent(0.5)));
        let mut differs = false;
        for key in 0..64 {
            for attempt in 0..4 {
                let site = FaultSite::FeatureExtraction;
                assert_eq!(
                    a.should_fail(site, key, attempt),
                    b.should_fail(site, key, attempt),
                    "same plan must decide identically"
                );
                // Repeat calls replay the same decision.
                assert_eq!(
                    a.should_fail(site, key, attempt),
                    b.should_fail(site, key, attempt)
                );
                if a.should_fail(site, key, attempt) != c.should_fail(site, key, attempt) {
                    differs = true;
                }
            }
        }
        assert!(differs, "different seeds must produce different schedules");
    }

    #[test]
    fn empty_plan_never_fails() {
        let inj = FaultInjector::new(FaultPlan::new(1));
        for site in FaultSite::ALL {
            for key in 0..32 {
                assert!(!inj.should_fail(site, key, 0));
            }
        }
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn fail_limit_caps_consecutive_failures() {
        let inj = FaultInjector::new(FaultPlan::uniform(3, FaultRule::transient(1.0, 2)));
        for key in 0..32 {
            assert!(inj.should_fail(FaultSite::Training, key, 0));
            assert!(inj.should_fail(FaultSite::Training, key, 1));
            assert!(
                !inj.should_fail(FaultSite::Training, key, 2),
                "attempt at the limit must succeed"
            );
        }
    }

    #[test]
    fn transparency_predicate_matches_rules() {
        assert!(FaultPlan::uniform(1, FaultRule::transient(0.9, 2)).transparent_under(3));
        assert!(!FaultPlan::uniform(1, FaultRule::transient(0.9, 3)).transparent_under(3));
        assert!(!FaultPlan::uniform(1, FaultRule::permanent(0.1)).transparent_under(100));
        assert!(
            FaultPlan::new(1).transparent_under(1),
            "no rules, no faults"
        );
    }

    #[test]
    fn probability_extremes_and_counters() {
        let always = FaultInjector::new(
            FaultPlan::new(5).with_rule(FaultSite::WalAppend, FaultRule::permanent(1.0)),
        );
        let never = FaultInjector::new(
            FaultPlan::new(5).with_rule(FaultSite::WalAppend, FaultRule::permanent(0.0)),
        );
        for key in 0..16 {
            assert!(always.should_fail(FaultSite::WalAppend, key, 0));
            assert!(!never.should_fail(FaultSite::WalAppend, key, 0));
            // Uncovered sites never fail even at probability 1.
            assert!(!always.should_fail(FaultSite::Training, key, 0));
        }
        assert_eq!(always.injected_at(FaultSite::WalAppend), 16);
        assert_eq!(always.total_injected(), 16);
        assert_eq!(never.total_injected(), 0);
    }

    #[test]
    fn moderate_probability_fails_some_but_not_all_keys() {
        let inj = FaultInjector::new(FaultPlan::uniform(11, FaultRule::permanent(0.5)));
        let fails = (0..256)
            .filter(|&k| inj.should_fail(FaultSite::RowInference, k, 0))
            .count();
        assert!(
            (64..192).contains(&fails),
            "p=0.5 over 256 keys should fail roughly half, got {fails}"
        );
    }
}
