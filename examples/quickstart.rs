//! Quickstart: point VOCALExplore at a video corpus, explore, label, and get
//! predictions — the workflow of Section 2.2.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use vocalexplore::prelude::*;

fn main() {
    // 1. A (synthetic) video corpus standing in for the user's directory of
    //    video files. Here: a scaled-down version of the Deer dataset.
    let dataset = Dataset::scaled(DatasetName::Deer, 0.2, 42);
    println!(
        "Loaded {} training videos ({} classes: {})",
        dataset.train.len(),
        dataset.vocabulary.len(),
        dataset
            .vocabulary
            .iter()
            .map(|(_, n)| n)
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 2. Create the system. No preprocessing happens here — exploration can
    //    start immediately (the "pay-as-you-go" promise).
    let config = VocalExploreConfig::for_dataset(&dataset, 42);
    let mut system = VocalExplore::new(config);
    for clip in dataset.train.videos() {
        system.add_video(clip.clone());
    }

    // 3. The user explores and labels. We stand in for the user with the
    //    ground-truth oracle the paper's own evaluation uses.
    let oracle = GroundTruthOracle::new(dataset.spec.task);
    for iteration in 1..=10 {
        let batch = system.explore(5, 1.0, None);
        println!(
            "iteration {iteration:2}: acquisition = {:?}, feature = {}, labels so far = {}",
            batch
                .acquisition
                .expect("explore always reports its acquisition"),
            system.current_extractor(),
            system.label_count(),
        );
        for seg in &batch.segments {
            if let Some(top) = seg.top_prediction() {
                println!(
                    "    {} [{:.0}s-{:.0}s] predicted: {} (p={:.2})",
                    seg.vid,
                    seg.range.start,
                    seg.range.end,
                    dataset.vocabulary.name(top.class),
                    top.probability
                );
            }
            let truth = oracle.label(&dataset.train, seg.vid, &seg.range);
            system.add_label(seg.vid, seg.range, truth);
        }
    }

    // 4. Watch a specific video with predictions attached.
    let vid = dataset.train.videos()[0].id;
    let stream = system.watch(vid, 0.0, 5.0, 1.0);
    println!("\nWatch({vid}, 0s..5s):");
    for seg in &stream.segments {
        let label = seg
            .top_prediction()
            .map(|p| {
                format!(
                    "{} (p={:.2})",
                    dataset.vocabulary.name(p.class),
                    p.probability
                )
            })
            .unwrap_or_else(|| "<no prediction yet>".to_string());
        println!(
            "    [{:.0}s-{:.0}s] {label}",
            seg.range.start, seg.range.end
        );
    }
}
