//! The timing plane: wall-clock enrichment of the event plane.
//!
//! **This is the only file in `ve-obs` allowed to read the clock** — it is
//! listed in `ve-lint`'s `WALL_CLOCK_EXEMPT_FILES`, alongside the crate-wide
//! exemption `ve-sched` already has. Everything here is *measurement*:
//! nothing downstream may branch on these numbers, and the deterministic
//! event plane never stores them. The two planes join on `span` — the
//! executor's submission counter — so a Perfetto track can show the wall
//! time of an event whose content is still a pure function of inputs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Deterministic description of a task, attached at submission. `kind` is a
/// static phase name (`"infer"`, `"train"`, `"eager"`, `"eval"`, …) and
/// `iteration` the session iteration the task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskLabel {
    pub kind: &'static str,
    pub iteration: u32,
}

impl TaskLabel {
    pub const fn new(kind: &'static str, iteration: u32) -> Self {
        Self { kind, iteration }
    }

    /// Label for legacy submission paths that do not tag their work.
    pub const fn unlabeled() -> Self {
        Self::new("task", 0)
    }
}

/// Mirror of the executor's priority classes. `ve-obs` sits below `ve-sched`
/// in the dependency graph, so it declares its own copy; the scheduler maps
/// its `Priority` into this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueueClass {
    Critical,
    Normal,
    Background,
}

impl QueueClass {
    pub const ALL: [QueueClass; 3] = [
        QueueClass::Critical,
        QueueClass::Normal,
        QueueClass::Background,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn label(self) -> &'static str {
        match self {
            QueueClass::Critical => "critical",
            QueueClass::Normal => "normal",
            QueueClass::Background => "background",
        }
    }
}

/// Wall-clock record of one executed task, joined to the event plane by
/// `span`. All times are microseconds since the plane's origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTiming {
    pub span: u64,
    pub label: TaskLabel,
    pub class: QueueClass,
    pub worker: usize,
    pub submit_us: u64,
    pub start_us: u64,
    pub end_us: u64,
}

impl TaskTiming {
    /// Time spent queued before a worker picked the task up.
    pub fn queue_wait_us(&self) -> u64 {
        self.start_us.saturating_sub(self.submit_us)
    }

    /// Time spent actually running.
    pub fn run_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Wall-clock record of one session-thread phase (e.g. the selection step),
/// measured by the caller with an already-running timer and handed in as a
/// duration — the session logic itself never reads the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    pub phase: &'static str,
    pub iteration: u32,
    pub start_us: u64,
    pub dur_us: u64,
}

struct TimingState {
    tasks: Vec<TaskTiming>,
    phases: Vec<PhaseTiming>,
}

/// The timing plane: an origin instant plus the recorded task and phase
/// timings. Cheap to consult when disabled (one relaxed atomic load).
pub struct TimingPlane {
    t0: Instant,
    enabled: AtomicBool,
    timings: Mutex<TimingState>,
}

impl TimingPlane {
    pub fn new() -> Self {
        Self {
            t0: Instant::now(),
            enabled: AtomicBool::new(true),
            timings: Mutex::new(TimingState {
                tasks: Vec::new(),
                phases: Vec::new(),
            }),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds since the plane's origin.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    pub fn record_task(&self, timing: TaskTiming) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.timings.lock().expect("obs.timings poisoned");
        state.tasks.push(timing);
    }

    /// Records a session-thread phase whose duration the caller measured
    /// with its own (pre-existing) timer.
    pub fn record_phase(&self, phase: &'static str, iteration: u32, dur_us: u64) {
        if !self.is_enabled() {
            return;
        }
        let start_us = self.now_us().saturating_sub(dur_us);
        let mut state = self.timings.lock().expect("obs.timings poisoned");
        state.phases.push(PhaseTiming {
            phase,
            iteration,
            start_us,
            dur_us,
        });
    }

    pub fn tasks(&self) -> Vec<TaskTiming> {
        self.timings
            .lock()
            .expect("obs.timings poisoned")
            .tasks
            .clone()
    }

    pub fn phases(&self) -> Vec<PhaseTiming> {
        self.timings
            .lock()
            .expect("obs.timings poisoned")
            .phases
            .clone()
    }
}

impl Default for TimingPlane {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_timing_derives_wait_and_run() {
        let t = TaskTiming {
            span: 1,
            label: TaskLabel::new("train", 3),
            class: QueueClass::Normal,
            worker: 0,
            submit_us: 10,
            start_us: 25,
            end_us: 125,
        };
        assert_eq!(t.queue_wait_us(), 15);
        assert_eq!(t.run_us(), 100);
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let plane = TimingPlane::new();
        plane.set_enabled(false);
        plane.record_task(TaskTiming {
            span: 0,
            label: TaskLabel::unlabeled(),
            class: QueueClass::Critical,
            worker: 0,
            submit_us: 0,
            start_us: 0,
            end_us: 1,
        });
        plane.record_phase("select", 0, 5);
        assert!(plane.tasks().is_empty());
        assert!(plane.phases().is_empty());
    }

    #[test]
    fn now_is_monotonic_from_origin() {
        let plane = TimingPlane::new();
        let a = plane.now_us();
        let b = plane.now_us();
        assert!(b >= a);
    }
}
