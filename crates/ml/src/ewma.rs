//! Exponential weighted moving average (EWMA) smoothing.
//!
//! Section 3.2.4: "the prototype uses exponential weighted moving average
//! (EWMA) smoothing" with a span `w`, `alpha = 2 / (w + 1)` (the paper sets
//! `w = 5`), to smooth the noisy per-step cross-validated model quality
//! before the rising bandit computes its bounds.

/// EWMA smoother parameterized by span `w` (`alpha = 2 / (w + 1)`), matching
/// pandas' `ewm(span=w, adjust=false)` semantics used by the prototype.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
    count: usize,
}

impl Ewma {
    /// Creates a smoother with the given span.
    ///
    /// # Panics
    /// Panics if `span == 0`.
    pub fn with_span(span: usize) -> Self {
        assert!(span > 0, "span must be positive");
        Self {
            alpha: 2.0 / (span as f64 + 1.0),
            value: None,
            count: 0,
        }
    }

    /// Creates a smoother directly from `alpha` in `(0, 1]`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            value: None,
            count: 0,
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of observations consumed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation and returns the updated smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(next);
        self.count += 1;
        next
    }

    /// Current smoothed value, if any observation has been consumed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Smooths a whole series, returning one smoothed value per input.
    pub fn smooth_series(span: usize, xs: &[f64]) -> Vec<f64> {
        let mut e = Ewma::with_span(span);
        xs.iter().map(|&x| e.update(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_to_alpha_conversion() {
        let e = Ewma::with_span(5);
        assert!((e.alpha() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn first_observation_passes_through() {
        let mut e = Ewma::with_span(5);
        assert_eq!(e.update(0.7), 0.7);
        assert_eq!(e.value(), Some(0.7));
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn constant_series_stays_constant() {
        let out = Ewma::smooth_series(5, &[0.4; 10]);
        assert!(out.iter().all(|&v| (v - 0.4).abs() < 1e-12));
    }

    #[test]
    fn smoothing_dampens_spikes() {
        // A single spike in an otherwise flat series should be attenuated.
        let xs = [0.5, 0.5, 0.5, 0.9, 0.5, 0.5];
        let smoothed = Ewma::smooth_series(5, &xs);
        assert!(
            smoothed[3] < 0.7,
            "spike should be dampened: {}",
            smoothed[3]
        );
        assert!(smoothed[3] > 0.5, "but still move toward the spike");
    }

    #[test]
    fn tracks_monotone_trend() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let smoothed = Ewma::smooth_series(5, &xs);
        // Smoothed series should also be increasing and lag below the input.
        for w in smoothed.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(smoothed[19] < xs[19]);
    }

    #[test]
    fn larger_span_smooths_more() {
        let xs = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let light = Ewma::smooth_series(3, &xs);
        let heavy = Ewma::smooth_series(9, &xs);
        // Variance of the heavily smoothed series must be smaller.
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&heavy) < var(&light));
    }

    #[test]
    fn known_recurrence_values() {
        // alpha = 0.5 (span = 3): v1 = 1, v2 = 0.5*0 + 0.5*1 = 0.5,
        // v3 = 0.5*1 + 0.5*0.5 = 0.75.
        let out = Ewma::smooth_series(3, &[1.0, 0.0, 1.0]);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[1] - 0.5).abs() < 1e-12);
        assert!((out[2] - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn rejects_zero_span() {
        Ewma::with_span(0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn rejects_invalid_alpha() {
        Ewma::with_alpha(1.5);
    }
}
