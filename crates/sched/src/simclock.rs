//! A resource-limited simulated clock.
//!
//! The latency numbers the paper reports depend on GPU feature-extraction
//! throughput (Table 3) and a simulated user who takes `T_user = 10` seconds
//! to label each clip. Since this repository simulates the GPU, wall-clock
//! measurements of the real executor would not reproduce the paper's latency
//! axes. The [`SimClock`] instead advances virtual time as tasks execute on a
//! fixed number of parallel slots (the evaluation runs "two extraction tasks
//! on the GPU"), which is what the Figure 2 / Figure 8 harnesses use to
//! account visible latency and background capacity.

use crate::task::Task;

/// Outcome of running one task on the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTaskOutcome {
    /// The task that ran.
    pub task: Task,
    /// Virtual time at which the task started.
    pub started_at: f64,
    /// Virtual time at which the task finished.
    pub finished_at: f64,
}

/// Simulated clock with a fixed number of parallel execution slots.
#[derive(Debug, Clone)]
pub struct SimClock {
    /// Completion time of each slot.
    slot_free_at: Vec<f64>,
    /// Current virtual time (the latest task completion or explicit advance).
    now: f64,
    history: Vec<SimTaskOutcome>,
}

impl SimClock {
    /// Creates a clock with `slots` parallel execution slots.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "need at least one execution slot");
        Self {
            slot_free_at: vec![0.0; slots],
            now: 0.0,
            history: Vec::new(),
        }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of parallel slots.
    pub fn slots(&self) -> usize {
        self.slot_free_at.len()
    }

    /// Advances virtual time to at least `t` (e.g. while the user is busy
    /// labeling). Does nothing if `t` is in the past.
    pub fn advance_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs one task on the earliest-available slot, starting no earlier than
    /// `not_before` (and no earlier than the current time), and returns its
    /// outcome. Virtual "now" advances to the task completion only if the
    /// caller later blocks on it; use [`SimClock::block_until`] for that.
    pub fn run(&mut self, task: Task, not_before: f64) -> SimTaskOutcome {
        let slot = self
            .slot_free_at
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite times"))
            .map(|(i, _)| i)
            .expect("at least one slot");
        let start = self.slot_free_at[slot].max(not_before);
        let finish = start + task.cost_secs;
        self.slot_free_at[slot] = finish;
        let outcome = SimTaskOutcome {
            task,
            started_at: start,
            finished_at: finish,
        };
        self.history.push(outcome.clone());
        outcome
    }

    /// Runs a batch of tasks (in order) starting no earlier than `not_before`
    /// and returns the time at which the whole batch has finished.
    pub fn run_batch(&mut self, tasks: Vec<Task>, not_before: f64) -> f64 {
        let mut latest: f64 = not_before.max(self.now);
        for task in tasks {
            let outcome = self.run(task, not_before);
            latest = latest.max(outcome.finished_at);
        }
        latest
    }

    /// Blocks virtual time until `t` (used when an API call must wait for a
    /// critical task to finish).
    pub fn block_until(&mut self, t: f64) {
        self.advance_to(t);
    }

    /// Completed task history.
    pub fn history(&self) -> &[SimTaskOutcome] {
        &self.history
    }

    /// Earliest time at which a new task could start.
    pub fn earliest_start(&self) -> f64 {
        self.slot_free_at
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(self.now)
    }

    /// Total busy time accumulated across all slots.
    pub fn total_busy_time(&self) -> f64 {
        self.history.iter().map(|o| o.task.cost_secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskId, TaskKind};

    fn task(id: u64, cost: f64) -> Task {
        Task::new(
            TaskId(id),
            TaskKind::FeatureExtraction,
            cost,
            format!("t{id}"),
        )
    }

    #[test]
    fn single_slot_serializes_tasks() {
        let mut clock = SimClock::new(1);
        let a = clock.run(task(0, 2.0), 0.0);
        let b = clock.run(task(1, 3.0), 0.0);
        assert_eq!((a.started_at, a.finished_at), (0.0, 2.0));
        assert_eq!((b.started_at, b.finished_at), (2.0, 5.0));
    }

    #[test]
    fn two_slots_run_in_parallel() {
        let mut clock = SimClock::new(2);
        let finish = clock.run_batch(vec![task(0, 2.0), task(1, 2.0), task(2, 2.0)], 0.0);
        // Two tasks run in parallel (finish at 2), the third starts at 2.
        assert_eq!(finish, 4.0);
        assert_eq!(clock.total_busy_time(), 6.0);
    }

    #[test]
    fn not_before_delays_start() {
        let mut clock = SimClock::new(1);
        let o = clock.run(task(0, 1.0), 5.0);
        assert_eq!(o.started_at, 5.0);
        assert_eq!(o.finished_at, 6.0);
    }

    #[test]
    fn advance_and_block() {
        let mut clock = SimClock::new(1);
        clock.advance_to(10.0);
        assert_eq!(clock.now(), 10.0);
        clock.advance_to(5.0);
        assert_eq!(clock.now(), 10.0, "time never goes backwards");
        clock.block_until(12.5);
        assert_eq!(clock.now(), 12.5);
    }

    #[test]
    fn earliest_start_accounts_for_busy_slots() {
        let mut clock = SimClock::new(2);
        clock.run(task(0, 4.0), 0.0);
        assert_eq!(clock.earliest_start(), 0.0, "second slot is still free");
        clock.run(task(1, 6.0), 0.0);
        assert_eq!(clock.earliest_start(), 4.0);
    }

    #[test]
    fn history_records_everything() {
        let mut clock = SimClock::new(2);
        clock.run_batch(vec![task(0, 1.0), task(1, 1.0)], 0.0);
        assert_eq!(clock.history().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one execution slot")]
    fn rejects_zero_slots() {
        SimClock::new(0);
    }
}
