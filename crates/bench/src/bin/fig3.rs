//! Figure 3 — F1 and `S_max` per sampling method across datasets.
//!
//! Compares the fixed acquisition functions (Random, Coreset, Cluster-Margin)
//! with the adaptive policies (VE-sample, VE-sample (CM), Freq.) on every
//! dataset, using the empirically best feature extractor per dataset as the
//! paper does (Section 5.2). Reports the final macro F1 and the final label
//! diversity `S_max` (lower = more diverse), plus the label count at which the
//! adaptive policies switched to active learning.
//!
//! Expected shape: on the uniform datasets (K20, Bears) Random ties the
//! active-learning functions; on the skewed datasets (Deer, K20 (skew),
//! Charades, BDD) Cluster-Margin improves F1 and/or `S_max`; VE-sample (CM)
//! tracks whichever is better; Freq. behaves like VE-sample (CM) but switches
//! later.
//!
//! ```text
//! cargo run --release -p ve-bench --bin fig3 [-- --full]
//! ```

use ve_bench::{
    best_extractor, print_header, print_row, sampling_variants, with_fixed_feature, with_sampling,
    Profile,
};
use ve_stats::mean;
use vocalexplore::prelude::*;

fn main() {
    let profile = Profile::from_args();
    println!(
        "Figure 3: sampling-method comparison on the best feature per dataset \
         ({} iterations x {} seeds)\n",
        profile.iterations, profile.seeds
    );

    for dataset in DatasetName::all() {
        let feature = best_extractor(dataset);
        println!("--- {dataset} (feature: {feature}) ---");
        let widths = [16, 9, 9, 20];
        print_header(&["Method", "F1", "S_max", "switch at label #"], &widths);
        for (name, sampling) in sampling_variants() {
            let mut switch_points = Vec::new();
            let mut f1s = Vec::new();
            let mut smaxes = Vec::new();
            for seed in 0..profile.seeds {
                let cfg = profile.session(dataset, seed * 101 + 7);
                let cfg = with_fixed_feature(with_sampling(cfg, sampling), feature);
                let outcome = ve_bench::run_session(cfg);
                f1s.push(outcome.mean_f1_last(3));
                smaxes.push(outcome.final_s_max());
                if let Some(r) = outcome
                    .records
                    .iter()
                    .find(|r| r.acquisition != AcquisitionKind::Random)
                {
                    switch_points.push(r.labels_total as f64);
                }
            }
            let switch = if switch_points.is_empty() {
                "-".to_string()
            } else if switch_points.len() < profile.seeds as usize {
                format!("{:.0} (some seeds never)", mean(&switch_points))
            } else {
                format!("{:.0}", mean(&switch_points))
            };
            print_row(
                &[
                    name.to_string(),
                    format!("{:.3}", mean(&f1s)),
                    format!("{:.2}", mean(&smaxes)),
                    switch,
                ],
                &widths,
            );
        }
        println!();
    }
}
