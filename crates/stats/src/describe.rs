//! Descriptive statistics used by the benchmark harness (median selection
//! step with IQR error bars for Figure 5, averaged F1 curves with IQR shading
//! for Figures 7 and 9).

/// Arithmetic mean of a slice; returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Linear-interpolated percentile, `q` in `[0, 100]`.
///
/// # Panics
/// Panics on an empty slice or an out-of-range `q`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "q must be within [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Interquartile range `(p25, p75)`.
pub fn iqr(xs: &[f64]) -> (f64, f64) {
    (percentile(xs, 25.0), percentile(xs, 75.0))
}

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Builds a summary of `xs`.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "Summary of empty slice");
        let (p25, p75) = iqr(xs);
        Self {
            count: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            p25,
            median: median(xs),
            p75,
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic example is ~2.138.
        assert!((std_dev(&xs) - 2.138).abs() < 0.01);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
    }

    #[test]
    fn iqr_of_uniform_sequence() {
        let xs: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let (lo, hi) = iqr(&xs);
        assert_eq!(lo, 3.0);
        assert_eq!(hi, 7.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!(s.p25 <= s.median && s.median <= s.p75);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }
}
