//! `vocalexplore-repro` — the workspace root package.
//!
//! This package only exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual library lives in
//! the [`vocalexplore`] crate (re-exported here for convenience) with its
//! substrates in the `ve-*` crates.

pub use vocalexplore;

/// Convenience re-export of the system prelude so integration tests and
/// examples can `use vocalexplore_repro::prelude::*`.
pub mod prelude {
    pub use vocalexplore::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_reachable() {
        use crate::prelude::*;
        let spec = ve_vidsim::DatasetSpec::paper(DatasetName::Deer);
        assert_eq!(spec.num_classes, 9);
    }
}
