//! The rule set. Each module implements one documented contract check and
//! exposes `check(ws) -> Vec<Finding>`; scoping policy lives in
//! [`crate::engine`] so ROADMAP.md and the code agree in one place.

pub mod executor_bypass;
pub mod float_order;
pub mod iteration;
pub mod locks;
pub mod panic_path;
pub mod wallclock;

use crate::workspace::SourceFile;

/// Whether the code token at `ci` starts the path pattern `a :: b`
/// (tokenized as `a` `:` `:` `b`).
pub(crate) fn is_path_pair(file: &SourceFile, ci: usize, a: &str, b: &str) -> bool {
    file.ct(ci).is_some_and(|t| t.is_ident(a))
        && file.ct(ci + 1).is_some_and(|t| t.is_punct(':'))
        && file.ct(ci + 2).is_some_and(|t| t.is_punct(':'))
        && file.ct(ci + 3).is_some_and(|t| t.is_ident(b))
}

/// Whether the code token at `ci` is a method call `.name(`; returns the
/// code-index of the opening paren.
pub(crate) fn method_call(file: &SourceFile, ci: usize, name: &str) -> Option<usize> {
    if file.ct(ci).is_some_and(|t| t.is_punct('.'))
        && file.ct(ci + 1).is_some_and(|t| t.is_ident(name))
        && file.ct(ci + 2).is_some_and(|t| t.is_punct('('))
    {
        Some(ci + 2)
    } else {
        None
    }
}

/// Rust keywords: identifiers that can precede `(` without being calls.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];
