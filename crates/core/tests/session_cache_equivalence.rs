//! Session-level proof of the `ProbabilityCache` bit-identical contract.
//!
//! The unit tests and the `acquisition_index_equivalence` properties pin the
//! cache at the selection-call level; these tests pin it end to end: two
//! complete [`AsyncSessionRunner`] sessions — identical except that one runs
//! with the probability cache enabled (the default) and one with it disabled
//! — must produce the **same label sequence and the same per-iteration
//! acquisition sequence**, for Coreset, Cluster-Margin, and rare-class
//! Uncertainty selection, at `compute_threads` 1 and 4.
//!
//! The cached sessions additionally assert that the cache actually
//! participated (hit or miss rows observed) wherever a model exists, so the
//! equivalence statement is never satisfied vacuously by a dead cache.

use ve_al::AcquisitionKind;
use ve_features::ExtractorId;
use ve_sched::SchedulerStrategy;
use ve_vidsim::DatasetName;
use vocalexplore::config::{FeatureSelectionPolicy, SamplingPolicy};
use vocalexplore::{AsyncSessionOutcome, AsyncSessionRunner, SessionConfig};

/// A small measured session: fixed extractor, VE-full, fine time scale so
/// the run is dominated by real compute, 6 iterations.
fn session_config(
    kind: AcquisitionKind,
    target: Option<usize>,
    compute_threads: usize,
    prob_cache: bool,
) -> SessionConfig {
    let mut cfg = SessionConfig::new(DatasetName::Deer, 0.08, 19)
        .with_iterations(6)
        .with_eval_every(1000);
    if let Some(class) = target {
        cfg = cfg.with_target_label(class);
    }
    cfg.system = cfg
        .system
        .with_sampling(SamplingPolicy::Fixed(kind))
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
        .with_strategy(SchedulerStrategy::VeFull)
        .with_extra_candidates(5)
        .with_compute_threads(compute_threads)
        .with_time_scale(1e-4)
        .with_prob_cache(prob_cache);
    cfg.system.train.epochs = 30;
    cfg
}

fn acquisitions(outcome: &AsyncSessionOutcome) -> Vec<AcquisitionKind> {
    outcome.iterations.iter().map(|r| r.acquisition).collect()
}

fn assert_cache_equivalence(kind: AcquisitionKind, target: Option<usize>) {
    // `compute_threads` is process-wide (set at system construction), so the
    // guard serializes against every other test mutating it.
    let _guard = ve_sched::parallel::test_parallelism_guard();
    for threads in [1usize, 4] {
        let cached = AsyncSessionRunner::new(session_config(kind, target, threads, true)).run();
        let uncached = AsyncSessionRunner::new(session_config(kind, target, threads, false)).run();
        ve_sched::parallel::set_parallelism(0);
        assert_eq!(
            cached.labels, uncached.labels,
            "{kind:?}: cache changed the label sequence at {threads} compute threads"
        );
        assert_eq!(
            acquisitions(&cached),
            acquisitions(&uncached),
            "{kind:?}: cache changed the acquisition sequence at {threads} threads"
        );
        assert_eq!(cached.final_extractor, uncached.final_extractor);
        if kind != AcquisitionKind::Coreset {
            // The equivalence must not hold vacuously: the inference-driven
            // acquisitions have to route probability rows through the cache.
            let stats = cached.prob_cache;
            assert!(
                stats.hit_rows + stats.miss_rows > 0,
                "{kind:?}: cache never consulted at {threads} threads"
            );
        }
        let off = uncached.prob_cache;
        assert_eq!(off.hit_rows + off.miss_rows, 0, "disabled cache must idle");
    }
}

#[test]
fn coreset_sessions_identical_with_and_without_cache() {
    // Coreset never consults the cache (no inference), but the session still
    // exercises the scratch-buffer reuse and the invalidate-on-index-replace
    // path; picks must be unaffected either way.
    assert_cache_equivalence(AcquisitionKind::Coreset, None);
}

#[test]
fn cluster_margin_sessions_identical_with_and_without_cache() {
    assert_cache_equivalence(AcquisitionKind::ClusterMargin, None);
}

#[test]
fn uncertainty_sessions_identical_with_and_without_cache() {
    // `Explore(label = 2)` routes every call through the rare-class
    // uncertainty sampler regardless of the configured sampling policy.
    assert_cache_equivalence(AcquisitionKind::Uncertainty, Some(2));
}
