//! Metrics registry: counters, gauges, and fixed-bucket histograms with
//! deterministic bucket math.
//!
//! All values are integers (counts, or durations in microseconds) and every
//! derived statistic — including the p50/p99 summaries — is computed with
//! integer arithmetic over fixed bucket bounds, so a snapshot is a pure
//! function of the observation multiset: no float accumulation order, no
//! environment-dependent rounding.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Fixed-bucket histogram over `u64` values. Bucket `i` counts observations
/// `v <= bounds[i]` (the first bucket they fit); values above the last bound
/// land in an implicit overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Default latency bounds: log-linear buckets from 1 µs to ~17 s — each
/// power-of-two octave is subdivided into 4 equal integer steps, so a
/// reported quantile's upper bound is within 25% of the true value (vs 100%
/// for pure powers of two). Fixed so every histogram buckets identically.
pub fn default_latency_bounds() -> Vec<u64> {
    let mut bounds = vec![1u64, 2, 3, 4];
    let mut octave = 4u64;
    while octave < 1 << 24 {
        let step = octave / 4;
        for k in 1..=4 {
            bounds.push(octave + k * step);
        }
        octave *= 2;
    }
    bounds
}

impl Histogram {
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n],
            overflow: 0,
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn with_default_bounds() -> Self {
        Self::new(default_latency_bounds())
    }

    pub fn observe(&mut self, v: u64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Quantile estimate as the upper bound of the first bucket whose
    /// cumulative count reaches `ceil(q_num/q_den * total)`. Integer math
    /// only; `quantile(1, 2)` is the p50 estimate, `quantile(99, 100)` p99.
    /// Observations past the last bound report the true maximum.
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        assert!(q_den > 0 && q_num <= q_den);
        if self.total == 0 {
            return 0;
        }
        let rank = self.total.saturating_mul(q_num).div_ceil(q_den).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds[i];
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(1, 2)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }
}

#[derive(Default)]
struct RegistryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// An immutable copy of the registry, for export and assertions.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Hand-rolled JSON rendering (no serde in this environment). Keys come
    /// out in `BTreeMap` order, so the document is deterministic.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(k));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(k));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p99\": {}}}",
                esc(k),
                h.total(),
                h.sum(), // ve-lint: allow(float-reduction-order) -- Histogram::sum is a u64 accessor, not an iterator reduction
                h.min(),
                h.max(),
                h.p50(),
                h.p99()
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Thread-safe registry. Disabled sinks cost one relaxed atomic load per
/// call site via the owner's gating; the registry itself is always live.
pub struct MetricsRegistry {
    series: Mutex<RegistryState>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self {
            series: Mutex::new(RegistryState::default()),
        }
    }

    pub fn inc(&self, name: &str, by: u64) {
        let mut state = self.series.lock().expect("obs.metrics poisoned");
        *state.counters.entry(name.to_string()).or_insert(0) += by;
    }

    pub fn set_gauge(&self, name: &str, value: i64) {
        let mut state = self.series.lock().expect("obs.metrics poisoned");
        state.gauges.insert(name.to_string(), value);
    }

    /// Raises a gauge to `value` if it is below it (high-water semantics).
    pub fn raise_gauge(&self, name: &str, value: i64) {
        let mut state = self.series.lock().expect("obs.metrics poisoned");
        let g = state.gauges.entry(name.to_string()).or_insert(i64::MIN);
        if *g < value {
            *g = value;
        }
    }

    pub fn observe(&self, name: &str, value: u64) {
        let mut state = self.series.lock().expect("obs.metrics poisoned");
        state
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::with_default_bounds)
            .observe(value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        let state = self.series.lock().expect("obs.metrics poisoned");
        state.counters.get(name).copied().unwrap_or(0)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.series.lock().expect("obs.metrics poisoned");
        MetricsSnapshot {
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state.histograms.clone(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_use_integer_bucket_math() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for _ in 0..50 {
            h.observe(5);
        }
        for _ in 0..49 {
            h.observe(50);
        }
        h.observe(5000); // overflow
        assert_eq!(h.total(), 100);
        assert_eq!(h.p50(), 10); // rank 50 lands in the first bucket
        assert_eq!(h.quantile(99, 100), 100); // rank 99 in the second
        assert_eq!(h.quantile(1, 1), 5000); // overflow reports the true max
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn histogram_is_a_pure_function_of_the_observation_multiset() {
        let mut a = Histogram::with_default_bounds();
        let mut b = Histogram::with_default_bounds();
        for v in [3u64, 900, 17, 17, 250_000] {
            a.observe(v);
        }
        for v in [250_000u64, 17, 3, 900, 17] {
            b.observe(v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn registry_snapshot_round_trips_and_renders() {
        let reg = MetricsRegistry::new();
        reg.inc("fm.cache_hits", 3);
        reg.inc("fm.cache_hits", 2);
        reg.set_gauge("queue.depth_hwm.critical", 7);
        reg.observe("train.run_us", 1234);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["fm.cache_hits"], 5);
        assert_eq!(snap.gauges["queue.depth_hwm.critical"], 7);
        assert_eq!(snap.histograms["train.run_us"].total(), 1);
        let json = snap.render_json();
        assert!(json.contains("\"fm.cache_hits\": 5"));
        assert!(json.contains("\"p50\""));
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::with_default_bounds();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn default_bounds_are_log_linear_and_strictly_increasing() {
        let bounds = default_latency_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds.first().copied(), Some(1));
        assert_eq!(bounds.last().copied(), Some(1 << 24));
        // 4 subdivisions per octave: each bound is at most 1.25× the
        // previous one (from 4 up), so a quantile's reported upper bound
        // over-states the true value by at most 25%.
        for w in bounds.windows(2) {
            if w[0] >= 4 {
                assert!(w[1] * 4 <= w[0] * 5, "gap too wide: {} -> {}", w[0], w[1]);
            }
        }
        // The motivating case: a true ~5100 µs median must report within
        // ~20%, not the old power-of-two 8192.
        let mut h = Histogram::with_default_bounds();
        for _ in 0..100 {
            h.observe(5100);
        }
        assert_eq!(h.p50(), 5120);
    }

    #[test]
    fn quantile_at_exact_bucket_boundary_reports_that_bound() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        // A value exactly on a bound belongs to that bucket (`v <= b`).
        h.observe(10);
        h.observe(100);
        assert_eq!(h.quantile(1, 2), 10); // rank 1 of 2
        assert_eq!(h.quantile(1, 1), 100); // rank 2 of 2
    }

    #[test]
    fn all_overflow_quantiles_report_true_max_not_a_bound() {
        let mut h = Histogram::new(vec![10, 100]);
        h.observe(5000);
        h.observe(7000);
        // Every rank falls past the last bound: the overflow bucket must
        // report the observed maximum, never a fabricated bound.
        assert_eq!(h.p50(), 7000);
        assert_eq!(h.p99(), 7000);
        assert_eq!(h.quantile(1, 1), h.max());
    }

    #[test]
    fn full_quantile_is_the_highest_nonempty_bucket_bound() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        // No overflow: quantile(1,1) is the upper bound of the highest
        // non-empty bucket.
        assert_eq!(h.quantile(1, 1), 1000);
        assert_eq!(h.max(), 500);
    }

    #[test]
    fn render_json_is_key_sorted_and_insertion_order_independent() {
        let build = |names: &[&str]| {
            let reg = MetricsRegistry::new();
            for n in names {
                reg.inc(n, 1);
                reg.set_gauge(n, 2);
                reg.observe(n, 3);
            }
            reg.snapshot().render_json()
        };
        let a = build(&["zeta", "alpha", "mid"]);
        let b = build(&["mid", "zeta", "alpha"]);
        assert_eq!(a, b, "rendering must not depend on insertion order");
        let alpha = a.find("\"alpha\"").unwrap();
        let mid = a.find("\"mid\"").unwrap();
        let zeta = a.find("\"zeta\"").unwrap();
        assert!(alpha < mid && mid < zeta, "keys must render sorted");
    }
}
