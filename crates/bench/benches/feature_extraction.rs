//! Microbenchmarks for the simulated Feature Manager: per-clip embedding
//! generation (the in-process stand-in for `T_f`) and the lookup path the
//! Model Manager takes on a cache hit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ve_features::{ExtractorId, FeatureSimulator};
use ve_storage::StorageManager;
use ve_vidsim::{Dataset, DatasetName, TimeRange};
use vocalexplore::FeatureManager;

fn bench_feature_extraction(c: &mut Criterion) {
    let dataset = Dataset::scaled(DatasetName::Deer, 0.2, 5);
    let mut group = c.benchmark_group("feature_extraction");

    for extractor in [ExtractorId::R3d, ExtractorId::Clip] {
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 5);
        let clip = dataset.train.videos()[0].clone();
        group.bench_with_input(
            BenchmarkId::new("extract_clip", extractor.to_string()),
            &extractor,
            |b, &e| b.iter(|| black_box(sim.extract_clip(e, &clip))),
        );
    }

    // Cache hit path through the FeatureManager.
    let sim = FeatureSimulator::new(DatasetName::Deer, 9, 5);
    let fm = FeatureManager::new(sim, StorageManager::new());
    let clip = &dataset.train.videos()[0];
    fm.ensure_clip(ExtractorId::R3d, clip).unwrap();
    group.bench_function("feature_for_cached", |b| {
        b.iter(|| {
            black_box(fm.feature_for(
                ExtractorId::R3d,
                &dataset.train,
                clip.id,
                &TimeRange::new(3.0, 4.0),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_feature_extraction);
criterion_main!(benches);
