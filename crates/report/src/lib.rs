//! `ve-report` — the perf-regression sentinel.
//!
//! The five committed `BENCH_*.json` artifacts carry the paper's headline
//! claims (718× HAC, Serial > VE-partial > VE-full, flat warm+cache cost).
//! This crate turns each claim into a machine-checked expectation: a
//! checked-in `BENCH_contract.json` declares per-metric direction and
//! tolerance ([`contract`]), and [`Sentinel::check`] evaluates a fresh
//! quick-bench run against the committed baselines under those rules. CI
//! runs `ve-report --check` as a hard gate, like `ve-lint`.
//!
//! Std-only and single-threaded by policy: the gate must build offline and
//! must never be the thing that breaks the build, and all concurrency in
//! this repository flows through `ve_sched::Executor` — which a gate binary
//! has no business spinning up. The findings log behind
//! [`Sentinel`] is a plain mutex (`report.findings` in `ve-lint`'s lock
//! registry) so the sentinel stays `Sync` for embedders.

pub mod contract;
pub mod json;

pub use contract::{parse_contract, Contract, Rule, RuleKind, Source, CONTRACT_SCHEMA};
pub use json::{parse as parse_json, Json};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// Parsed artifacts by file name. Absent entries (file not on disk) become
/// violations for the rules that need them — a bench that stopped emitting
/// its artifact is itself a regression.
pub type Artifacts = BTreeMap<String, Json>;

/// One broken expectation. `subject` names the artifact and metric; the
/// message states observed vs allowed and quotes the rule's reason.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub artifact: String,
    pub subject: String,
    pub message: String,
}

/// Outcome of one contract evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// Rules evaluated to a verdict (pass or violation).
    pub checked: usize,
    /// Rules skipped, with why (quick-mode mismatch, allowed-missing metric).
    pub skipped: Vec<String>,
    pub violations: Vec<Violation>,
    /// Per-rule findings log, in contract order.
    pub log: Vec<String>,
}

impl CheckReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for line in &self.log {
            let _ = writeln!(out, "  {line}");
        }
        for skip in &self.skipped {
            let _ = writeln!(out, "  skip {skip}");
        }
        for v in &self.violations {
            let _ = writeln!(out, "VIOLATION {} — {}", v.subject, v.message);
        }
        let _ = writeln!(
            out,
            "ve-report: {} — {} rule(s) checked, {} skipped, {} violation(s)",
            if self.is_clean() { "PASS" } else { "FAIL" },
            self.checked,
            self.skipped.len(),
            self.violations.len()
        );
        out
    }

    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"checked\": {},", self.checked);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"schema\": \"vocalexplore/report_check/v1\",\n");
        out.push_str("  \"skipped\": [");
        for (i, s) in self.skipped.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\"", esc(s));
        }
        out.push_str(if self.skipped.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"artifact\": \"{}\", \"message\": \"{}\", \"subject\": \"{}\"}}",
                esc(&v.artifact),
                esc(&v.message),
                esc(&v.subject)
            );
        }
        out.push_str(if self.violations.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// The sentinel: evaluates a [`Contract`] over fresh and baseline artifact
/// sets, accumulating a findings log behind a mutex so concurrent embedders
/// (none today; the binary is single-threaded by policy) stay safe.
#[derive(Default)]
pub struct Sentinel {
    findings: Mutex<Vec<String>>,
}

impl Sentinel {
    pub fn new() -> Self {
        Self::default()
    }

    fn note(&self, line: String) {
        self.findings
            .lock()
            .expect("report.findings poisoned")
            .push(line);
    }

    /// Evaluates every rule. `fresh` is the just-run bench output; for the
    /// self-check mode (`ve-report --check` with no directories) both maps
    /// are the committed artifacts and every ratio is exactly 1.
    pub fn check(
        &self,
        contract: &Contract,
        fresh: &Artifacts,
        baseline: &Artifacts,
    ) -> CheckReport {
        let mut report = CheckReport::default();
        self.check_schemas(contract, fresh, "fresh", &mut report);
        if fresh != baseline {
            self.check_schemas(contract, baseline, "baseline", &mut report);
        }
        for rule in &contract.rules {
            self.check_rule(rule, fresh, baseline, &mut report);
        }
        report.log = self
            .findings
            .lock()
            .expect("report.findings poisoned")
            .clone();
        report
    }

    /// Every referenced artifact present in a set must carry a
    /// `vocalexplore/...` schema marker — the writer contract of
    /// `ve_bench::emit`.
    fn check_schemas(
        &self,
        contract: &Contract,
        artifacts: &Artifacts,
        which: &str,
        report: &mut CheckReport,
    ) {
        for name in contract.artifacts() {
            if let Some(doc) = artifacts.get(&name) {
                match doc.get("schema").and_then(Json::as_str) {
                    Some(s) if s.starts_with("vocalexplore/") => {
                        self.note(format!("ok schema {which} {name} ({s})"));
                    }
                    other => report.violations.push(Violation {
                        artifact: name.clone(),
                        subject: format!("{name} :: schema"),
                        message: format!(
                            "{which} artifact schema marker is {other:?}; every bench artifact \
                             must declare a `vocalexplore/...` schema"
                        ),
                    }),
                }
            }
        }
    }

    fn check_rule(
        &self,
        rule: &Rule,
        fresh: &Artifacts,
        baseline: &Artifacts,
        report: &mut CheckReport,
    ) {
        let subject = rule.subject();
        let violate = |report: &mut CheckReport, message: String| {
            report.violations.push(Violation {
                artifact: rule.artifact.clone(),
                subject: subject.clone(),
                message: format!("{message} ({})", rule.reason),
            });
        };
        // Which document(s) the rule reads.
        let doc_for = |source: Source| -> Option<&Json> {
            match source {
                Source::Fresh => fresh.get(&rule.artifact),
                Source::Baseline => baseline.get(&rule.artifact),
            }
        };
        // A metric read that distinguishes "absent/null" from "present".
        let read = |doc: &Json, metric: &str| -> Option<f64> {
            doc.path(metric)
                .filter(|v| !v.is_null())
                .and_then(Json::as_f64)
        };

        match &rule.kind {
            RuleKind::Min(bound) | RuleKind::Max(bound) => {
                let source = rule.source;
                let Some(doc) = doc_for(source) else {
                    report.checked += 1;
                    violate(report, format!("{:?} artifact file is missing", source));
                    return;
                };
                let Some(value) = read(doc, &rule.metric) else {
                    if rule.allow_missing {
                        report
                            .skipped
                            .push(format!("{subject}: metric absent/null (allowed)"));
                    } else {
                        report.checked += 1;
                        violate(report, "metric is missing or null".to_string());
                    }
                    return;
                };
                report.checked += 1;
                let ok = match rule.kind {
                    RuleKind::Min(_) => value >= *bound,
                    _ => value <= *bound,
                };
                if ok {
                    self.note(format!(
                        "ok {} {} = {value} vs {bound}",
                        rule.kind.name(),
                        subject
                    ));
                } else {
                    let dir = if matches!(rule.kind, RuleKind::Min(_)) {
                        "<"
                    } else {
                        ">"
                    };
                    violate(report, format!("value {value} {dir} allowed {bound}"));
                }
            }
            RuleKind::RatioMax(bound) | RuleKind::RatioMin(bound) => {
                let (Some(fresh_doc), Some(base_doc)) =
                    (fresh.get(&rule.artifact), baseline.get(&rule.artifact))
                else {
                    report.checked += 1;
                    violate(report, "artifact file is missing".to_string());
                    return;
                };
                // Like-for-like only: a quick fresh run against a full-mode
                // baseline says nothing about regression.
                let fresh_quick = fresh_doc.get("quick").and_then(Json::as_bool);
                let base_quick = base_doc.get("quick").and_then(Json::as_bool);
                if fresh_quick != base_quick {
                    report.skipped.push(format!(
                        "{subject}: quick modes differ (fresh {fresh_quick:?} vs baseline {base_quick:?})"
                    ));
                    return;
                }
                let (fresh_v, base_v) =
                    match (read(fresh_doc, &rule.metric), read(base_doc, &rule.metric)) {
                        (Some(f), Some(b)) => (f, b),
                        _ if rule.allow_missing => {
                            report
                                .skipped
                                .push(format!("{subject}: metric absent/null (allowed)"));
                            return;
                        }
                        _ => {
                            report.checked += 1;
                            violate(report, "metric is missing or null".to_string());
                            return;
                        }
                    };
                if base_v <= 0.0 {
                    report.skipped.push(format!(
                        "{subject}: baseline {base_v} is not a usable divisor"
                    ));
                    return;
                }
                report.checked += 1;
                let ratio = fresh_v / base_v;
                let ok = match rule.kind {
                    RuleKind::RatioMax(_) => ratio <= *bound,
                    _ => ratio >= *bound,
                };
                if ok {
                    self.note(format!(
                        "ok {} {} = {fresh_v} / {base_v} = {ratio:.4} vs {bound}",
                        rule.kind.name(),
                        subject
                    ));
                } else {
                    let dir = if matches!(rule.kind, RuleKind::RatioMax(_)) {
                        ">"
                    } else {
                        "<"
                    };
                    violate(
                        report,
                        format!(
                            "fresh {fresh_v} / baseline {base_v} = {ratio:.4} {dir} allowed {bound}"
                        ),
                    );
                }
            }
            RuleKind::OrderDesc(metrics) => {
                let Some(doc) = fresh.get(&rule.artifact) else {
                    report.checked += 1;
                    violate(report, "fresh artifact file is missing".to_string());
                    return;
                };
                let mut values = Vec::new();
                for metric in metrics {
                    match read(doc, metric) {
                        Some(v) => values.push((metric, v)),
                        None if rule.allow_missing => {
                            report
                                .skipped
                                .push(format!("{subject}: `{metric}` absent/null (allowed)"));
                            return;
                        }
                        None => {
                            report.checked += 1;
                            violate(report, format!("`{metric}` is missing or null"));
                            return;
                        }
                    }
                }
                report.checked += 1;
                for pair in values.windows(2) {
                    let ((a_name, a), (b_name, b)) = (&pair[0], &pair[1]);
                    if a <= b {
                        violate(
                            report,
                            format!("`{a_name}` = {a} must stay strictly above `{b_name}` = {b}"),
                        );
                        return;
                    }
                }
                self.note(format!("ok order_desc {subject}"));
            }
        }
    }
}

/// Loads every artifact the contract references from `dir`. Files that do
/// not exist are simply absent (the checker turns that into a violation for
/// the rules that need them); files that exist but do not parse are hard
/// errors.
pub fn load_artifacts(dir: &Path, contract: &Contract) -> Result<Artifacts, String> {
    let mut artifacts = Artifacts::new();
    for name in contract.artifacts() {
        let path = dir.join(&name);
        if !path.is_file() {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        artifacts.insert(name, doc);
    }
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contract(rules: &str) -> Contract {
        parse_contract(&format!(
            "{{\"schema\": \"{CONTRACT_SCHEMA}\", \"rules\": [{rules}]}}"
        ))
        .unwrap()
    }

    fn artifacts(name: &str, body: &str) -> Artifacts {
        let mut a = Artifacts::new();
        a.insert(name.to_string(), parse_json(body).unwrap());
        a
    }

    #[test]
    fn min_rule_passes_and_fails_naming_the_metric() {
        let c = contract(
            r#"{"artifact": "BENCH_training.json", "kind": "min", "metric": "cache_hit_rate",
                "value": 0.4, "reason": "cache must stay useful"}"#,
        );
        let good = artifacts(
            "BENCH_training.json",
            r#"{"schema": "vocalexplore/bench_training/v1", "cache_hit_rate": 0.4794}"#,
        );
        let report = Sentinel::new().check(&c, &good, &good);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.checked, 1);

        let bad = artifacts(
            "BENCH_training.json",
            r#"{"schema": "vocalexplore/bench_training/v1", "cache_hit_rate": 0.1}"#,
        );
        let report = Sentinel::new().check(&c, &bad, &bad);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert!(v.subject.contains("cache_hit_rate"), "{}", v.subject);
        assert!(v.message.contains("0.1"), "{}", v.message);
        assert!(v.message.contains("cache must stay useful"));
    }

    #[test]
    fn ratio_rule_compares_fresh_to_baseline_like_for_like() {
        let c = contract(
            r#"{"artifact": "BENCH_latency.json", "kind": "ratio_max",
                "metric": "strategies.ve_full.m", "value": 1.3,
                "reason": "lower-is-better visible latency"}"#,
        );
        let base = artifacts(
            "BENCH_latency.json",
            r#"{"schema": "vocalexplore/bench_latency/v2", "quick": true,
                "strategies": {"ve_full": {"m": 0.725}}}"#,
        );
        let ok_fresh = artifacts(
            "BENCH_latency.json",
            r#"{"schema": "vocalexplore/bench_latency/v2", "quick": true,
                "strategies": {"ve_full": {"m": 0.9}}}"#,
        );
        assert!(Sentinel::new().check(&c, &ok_fresh, &base).is_clean());

        let slow_fresh = artifacts(
            "BENCH_latency.json",
            r#"{"schema": "vocalexplore/bench_latency/v2", "quick": true,
                "strategies": {"ve_full": {"m": 1.5}}}"#,
        );
        let report = Sentinel::new().check(&c, &slow_fresh, &base);
        assert_eq!(report.violations.len(), 1);
        assert!(
            report.violations[0].message.contains("2.0"),
            "{}",
            report.violations[0].message
        );

        // Quick-mode mismatch: skipped, not checked.
        let full_fresh = artifacts(
            "BENCH_latency.json",
            r#"{"schema": "vocalexplore/bench_latency/v2", "quick": false,
                "strategies": {"ve_full": {"m": 9.9}}}"#,
        );
        let report = Sentinel::new().check(&c, &full_fresh, &base);
        assert!(report.is_clean());
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].contains("quick modes differ"));
    }

    #[test]
    fn order_rule_enforces_strict_descent() {
        let c = contract(
            r#"{"artifact": "BENCH_latency.json", "kind": "order_desc",
                "metrics": ["s.serial", "s.partial", "s.full"],
                "reason": "the headline ordering"}"#,
        );
        let good = artifacts(
            "BENCH_latency.json",
            r#"{"schema": "vocalexplore/bench_latency/v2",
                "s": {"serial": 2.4, "partial": 1.2, "full": 0.7}}"#,
        );
        assert!(Sentinel::new().check(&c, &good, &good).is_clean());
        let inverted = artifacts(
            "BENCH_latency.json",
            r#"{"schema": "vocalexplore/bench_latency/v2",
                "s": {"serial": 2.4, "partial": 1.2, "full": 1.2}}"#,
        );
        let report = Sentinel::new().check(&c, &inverted, &inverted);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("s.partial"));
        assert!(report.violations[0].message.contains("s.full"));
    }

    #[test]
    fn missing_artifact_and_missing_metric_are_violations_unless_allowed() {
        let c = contract(
            r#"{"artifact": "BENCH_x.json", "kind": "min", "metric": "m", "value": 1,
                "reason": "r"},
               {"artifact": "BENCH_x.json", "kind": "min", "metric": "absent", "value": 1,
                "allow_missing": true, "reason": "r"}"#,
        );
        let empty = Artifacts::new();
        let report = Sentinel::new().check(&c, &empty, &empty);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);

        let present = artifacts(
            "BENCH_x.json",
            r#"{"schema": "vocalexplore/bench_x/v1", "m": 2, "absent": null}"#,
        );
        let report = Sentinel::new().check(&c, &present, &present);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn schema_marker_is_required_on_referenced_artifacts() {
        let c = contract(
            r#"{"artifact": "BENCH_x.json", "kind": "min", "metric": "m", "value": 1,
                "reason": "r"}"#,
        );
        let unmarked = artifacts("BENCH_x.json", r#"{"m": 2}"#);
        let report = Sentinel::new().check(&c, &unmarked, &unmarked);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].subject.contains("schema"));
    }

    #[test]
    fn reports_render_deterministically() {
        let c = contract(
            r#"{"artifact": "BENCH_x.json", "kind": "max", "metric": "m", "value": 1,
                "reason": "r"}"#,
        );
        let a = artifacts(
            "BENCH_x.json",
            r#"{"schema": "vocalexplore/bench_x/v1", "m": 5}"#,
        );
        let r1 = Sentinel::new().check(&c, &a, &a);
        let r2 = Sentinel::new().check(&c, &a, &a);
        assert_eq!(r1.render_human(), r2.render_human());
        assert_eq!(r1.render_json(), r2.render_json());
        assert!(r1.render_json().contains("\"clean\": false"));
        assert!(r1.render_human().contains("FAIL"));
    }
}
