//! Random sampling — the cheap default acquisition function.
//!
//! Random needs only video metadata (no features, no model), so it is the
//! strategy `VE-sample` starts with: it has zero preprocessing cost and is
//! known to be competitive on datasets without class skew.

use rand::seq::SliceRandom;
use rand::Rng;

/// Selects `budget` distinct indices uniformly at random from
/// `0..num_candidates`. If `budget >= num_candidates`, every index is
/// returned (in shuffled order).
pub fn random_selection<R: Rng + ?Sized>(
    num_candidates: usize,
    budget: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..num_candidates).collect();
    indices.shuffle(rng);
    indices.truncate(budget.min(num_candidates));
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn selects_requested_budget_without_duplicates() {
        let mut rng = StdRng::seed_from_u64(1);
        let sel = random_selection(100, 10, &mut rng);
        assert_eq!(sel.len(), 10);
        let unique: HashSet<_> = sel.iter().collect();
        assert_eq!(unique.len(), 10);
        assert!(sel.iter().all(|&i| i < 100));
    }

    #[test]
    fn budget_larger_than_pool_returns_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let sel = random_selection(5, 50, &mut rng);
        assert_eq!(sel.len(), 5);
        let unique: HashSet<_> = sel.iter().collect();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn empty_pool_returns_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(random_selection(0, 5, &mut rng).is_empty());
        assert!(random_selection(10, 0, &mut rng).is_empty());
    }

    #[test]
    fn selection_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 20];
        for _ in 0..2_000 {
            for i in random_selection(20, 5, &mut rng) {
                counts[i] += 1;
            }
        }
        // Each index should be picked about 2000 * 5/20 = 500 times.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (400..620).contains(&c),
                "index {i} picked {c} times, expected ~500"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_selection(50, 8, &mut StdRng::seed_from_u64(9));
        let b = random_selection(50, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
