//! Microbenchmarks for the acquisition functions (`T_s` tasks).
//!
//! The paper's latency argument rests on sample selection being cheap
//! relative to feature extraction; these benchmarks measure the per-call cost
//! of Random, Coreset, and Cluster-Margin selection at candidate pool sizes
//! from the paper's hundreds up to the 20k-window pools the contiguous
//! [`ve_ml::FeatureBlock`] kernels are built for (B = 5, 64-dimensional
//! features), plus the Lance–Williams HAC used by the high-fidelity
//! Cluster-Margin variant.
//!
//! `ve-bench`'s `bench_acquisition` binary emits the same measurements as
//! machine-readable JSON (`BENCH_acquisition.json`) for tracking the perf
//! trajectory across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use ve_al::{
    cluster_margin_selection, coreset_selection, hac_average_linkage, random_selection,
    ClusterMarginConfig,
};
use ve_ml::FeatureBlock;

fn make_pool(n: usize, dim: usize, seed: u64) -> (FeatureBlock, FeatureBlock) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut feats = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        feats.push(rng.gen::<f32>() * 2.0 - 1.0);
    }
    let mut probs = Vec::with_capacity(n * 2);
    for _ in 0..n {
        let a: f32 = rng.gen();
        probs.push(a);
        probs.push(1.0 - a);
    }
    (
        FeatureBlock::from_vec(n, dim, feats),
        FeatureBlock::from_vec(n, 2, probs),
    )
}

fn bench_acquisition(c: &mut Criterion) {
    let mut group = c.benchmark_group("acquisition");
    group.sample_size(15);
    for &pool in &[1_000usize, 5_000, 20_000] {
        let (feats, probs) = make_pool(pool, 64, 7);
        let labeled_idx: Vec<usize> = (0..20).collect();
        let labeled = feats.gather(&labeled_idx);

        group.bench_with_input(BenchmarkId::new("random", pool), &pool, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(random_selection(n, 5, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("coreset", pool), &pool, |b, _| {
            b.iter(|| black_box(coreset_selection(&feats, &labeled, 5)))
        });
        group.bench_with_input(BenchmarkId::new("cluster_margin", pool), &pool, |b, _| {
            let cfg = ClusterMarginConfig::default();
            b.iter(|| black_box(cluster_margin_selection(&feats, &probs, 5, &cfg)))
        });
    }
    for &n in &[500usize, 1_000] {
        let (points, _) = make_pool(n, 64, 11);
        group.bench_with_input(BenchmarkId::new("hac_lance_williams", n), &n, |b, _| {
            b.iter(|| black_box(hac_average_linkage(&points, 50)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_acquisition);
criterion_main!(benches);
