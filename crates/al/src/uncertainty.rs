//! Rare-category uncertainty sampling for `Explore(label = a)` calls.
//!
//! Following Mullapudi et al. (ICCV 2021), as adopted by the paper
//! (Section 3.1.2): let `n_a` be the number of segments labeled with the
//! requested activity `a` and `n_o` the number labeled with any other
//! activity. While the class is still rare (`n_a < n_o`) the sampler returns
//! the segments the model is *most confident* contain `a` (to quickly grow
//! the positive set); once the class is no longer rare (`n_a >= n_o`) it
//! returns the segments the model is *most uncertain* about (probability
//! closest to 0.5) to refine the boundary.

/// Selects `budget` candidate indices given the model's probability that each
/// candidate shows the requested class.
///
/// * `class_probs[i]` — predicted probability that candidate `i` contains the
///   target class.
/// * `n_positive` / `n_negative` — label counts `n_a` and `n_o` collected so
///   far for the target class and all other classes respectively.
pub fn uncertainty_selection(
    class_probs: &[f32],
    n_positive: u64,
    n_negative: u64,
    budget: usize,
) -> Vec<usize> {
    if class_probs.is_empty() || budget == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..class_probs.len()).collect();
    if n_positive < n_negative {
        // Rare phase: most confident positives first.
        order.sort_by(|&a, &b| {
            class_probs[b]
                .partial_cmp(&class_probs[a])
                .expect("NaN probability")
        });
    } else {
        // Common phase: most uncertain first (closest to 0.5).
        order.sort_by(|&a, &b| {
            let da = (class_probs[a] - 0.5).abs();
            let db = (class_probs[b] - 0.5).abs();
            da.partial_cmp(&db).expect("NaN probability")
        });
    }
    order.truncate(budget.min(class_probs.len()));
    order
}

/// [`uncertainty_selection`] fed directly from a probability block (one row
/// per candidate, one column per class) as produced by the Model Manager's
/// batch prediction.
///
/// With an empty block (no trained model) every candidate scores `0.5`
/// (maximal uncertainty). With a trained model, a class index beyond the
/// block's columns scores `0.0` — "the model sees no evidence of this
/// class" — which in the rare phase surfaces nothing confidently and in the
/// common phase treats every candidate alike. Both rules replicate the
/// ALM's original behaviour exactly.
pub fn uncertainty_selection_from_probs(
    probs: &ve_ml::FeatureBlock,
    class: usize,
    n_candidates: usize,
    n_positive: u64,
    n_negative: u64,
    budget: usize,
) -> Vec<usize> {
    let class_probs: Vec<f32> = if probs.is_empty() {
        vec![0.5; n_candidates]
    } else {
        assert_eq!(
            probs.rows(),
            n_candidates,
            "probability rows must match candidates"
        );
        (0..probs.rows())
            .map(|i| probs.row(i).get(class).copied().unwrap_or(0.0))
            .collect()
    };
    uncertainty_selection(&class_probs, n_positive, n_negative, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_phase_picks_most_confident() {
        let probs = vec![0.1, 0.9, 0.5, 0.8, 0.2];
        // n_a < n_o -> confident-first.
        let picks = uncertainty_selection(&probs, 2, 10, 2);
        assert_eq!(picks, vec![1, 3]);
    }

    #[test]
    fn common_phase_picks_most_uncertain() {
        let probs = vec![0.1, 0.9, 0.52, 0.8, 0.47];
        // n_a >= n_o -> uncertainty-first.
        let picks = uncertainty_selection(&probs, 10, 5, 2);
        assert_eq!(picks, vec![2, 4]);
    }

    #[test]
    fn equal_counts_use_uncertainty() {
        let probs = vec![0.99, 0.01, 0.5];
        let picks = uncertainty_selection(&probs, 3, 3, 1);
        assert_eq!(picks, vec![2]);
    }

    #[test]
    fn budget_capped_and_unique() {
        let probs = vec![0.3, 0.6, 0.7];
        let picks = uncertainty_selection(&probs, 0, 0, 10);
        assert_eq!(picks.len(), 3);
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn empty_inputs() {
        assert!(uncertainty_selection(&[], 0, 0, 5).is_empty());
        assert!(uncertainty_selection(&[0.5], 0, 0, 0).is_empty());
    }

    #[test]
    fn from_probs_block_extracts_the_class_column() {
        let probs =
            ve_ml::FeatureBlock::from_nested(&[vec![0.1, 0.9], vec![0.6, 0.4], vec![0.2, 0.8]]);
        // Rare phase for class 1: most confident positives first.
        let picks = uncertainty_selection_from_probs(&probs, 1, 3, 0, 10, 2);
        assert_eq!(picks, vec![0, 2]);
        // Missing model: every candidate at 0.5, order preserved by stable
        // sort on equal keys.
        let empty = ve_ml::FeatureBlock::empty(0);
        let picks = uncertainty_selection_from_probs(&empty, 1, 3, 10, 0, 2);
        assert_eq!(picks.len(), 2);
        // Class beyond the block's columns scores 0.0 for every candidate.
        let picks = uncertainty_selection_from_probs(&probs, 7, 3, 0, 10, 1);
        assert_eq!(picks.len(), 1);
    }

    #[test]
    fn phase_switch_changes_ordering() {
        let probs = vec![0.95, 0.55];
        let rare = uncertainty_selection(&probs, 1, 5, 1);
        let common = uncertainty_selection(&probs, 5, 1, 1);
        assert_eq!(rare, vec![0], "rare phase favors the confident positive");
        assert_eq!(common, vec![1], "common phase favors the uncertain one");
    }
}
