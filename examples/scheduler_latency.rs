//! Task-scheduler latency: Serial vs `VE-partial` vs `VE-full` (Section 4).
//!
//! The same exploration workload is run under the three scheduling
//! strategies. Model quality stays essentially the same, but the user-visible
//! latency per iteration collapses from tens of seconds (Serial, which blocks
//! on feature extraction, training, and feature evaluation) to roughly one
//! second (`VE-full`, which hides everything except sample selection and
//! inference behind the user's labeling time).
//!
//! Run with:
//! ```text
//! cargo run --release --example scheduler_latency
//! ```

use vocalexplore::prelude::*;
use vocalexplore::FeatureSelectionPolicy;

fn main() {
    println!("Scheduling strategies on K20 (skew), 30 Explore iterations, B = 5, T_user = 10 s\n");
    println!(
        "{:<12} {:>10} {:>16} {:>14}",
        "strategy", "mean F1", "visible latency", "per iteration"
    );
    println!("{}", "-".repeat(56));

    for strategy in SchedulerStrategy::all() {
        let mut session = SessionConfig::new(DatasetName::K20Skew, 0.3, 3)
            .with_iterations(30)
            .with_eval_every(6);
        session.system = session
            .system
            .with_strategy(strategy)
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::Mvit))
            .with_extra_candidates(50);
        session.system.train.epochs = 60;
        let outcome = SessionRunner::new(session).run();
        let total = outcome.cumulative_visible_latency();
        println!(
            "{:<12} {:>10.3} {:>14.1} s {:>12.2} s",
            strategy.to_string(),
            outcome.mean_f1_last(3),
            total,
            total / outcome.records.len() as f64,
        );
    }

    println!(
        "\nVE-full keeps model quality while reducing visible latency by more than an \
         order of magnitude — the paper's ~1 second per iteration."
    );
}
