//! Per-(dataset, extractor) signal profiles.
//!
//! Figure 4 of the paper shows that the usefulness of each pretrained
//! extractor varies by dataset: video models (R3D, MViT) dominate on Deer
//! where activities cannot be recognized from a single frame, MViT is the
//! clear winner on K20 (skew) and Charades, the CLIP variants win on BDD
//! (object recognition from single frames), several extractors tie on the
//! uniform K20 and Bears datasets, and the random-weight feature is always
//! near-useless. The profiles below encode that ordering as a scalar
//! *quality* per pair, which the simulator converts into class-centroid
//! separation in embedding space. The exact numbers are not meaningful —
//! only the per-dataset ordering and rough gaps matter, because that is what
//! drives both model F1 and the rising-bandit selection.

use crate::extractors::ExtractorId;
use ve_vidsim::DatasetName;

/// Geometry of the synthetic embedding space for one (dataset, extractor)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalProfile {
    /// Scalar quality in `[0, 1]`; drives class separation.
    pub quality: f64,
    /// Standard deviation of the per-dimension class-centroid offsets on
    /// informative dimensions.
    pub class_separation: f64,
    /// Standard deviation of per-segment noise (all dimensions).
    pub noise_std: f64,
    /// Fraction of embedding dimensions that carry class signal.
    pub informative_frac: f64,
    /// Standard deviation of a per-video offset applied to informative
    /// dimensions, so segments of the same video are correlated (what makes
    /// diversity-aware sampling matter).
    pub per_video_jitter: f64,
}

impl SignalProfile {
    /// Builds a profile from a scalar quality.
    pub fn from_quality(quality: f64) -> Self {
        assert!((0.0..=1.0).contains(&quality), "quality must be in [0, 1]");
        Self {
            quality,
            class_separation: 0.75 * quality,
            noise_std: 1.0,
            informative_frac: 0.35,
            per_video_jitter: 0.8,
        }
    }

    /// The profile for a (dataset, extractor) pair, reproducing the Figure 4
    /// ordering.
    pub fn for_pair(dataset: DatasetName, extractor: ExtractorId) -> Self {
        let quality = quality_for(dataset, extractor);
        Self::from_quality(quality)
    }
}

/// Scalar quality for each (dataset, extractor) pair; see module docs.
pub fn quality_for(dataset: DatasetName, extractor: ExtractorId) -> f64 {
    use DatasetName::*;
    use ExtractorId::*;
    match (dataset, extractor) {
        // Deer: motion matters, video models win decisively.
        (Deer, R3d) => 0.92,
        (Deer, Mvit) => 0.88,
        (Deer, Clip) => 0.52,
        (Deer, ClipPooled) => 0.56,

        // K20 (uniform Kinetics subset): MViT / CLIP variants all strong,
        // R3D a step behind.
        (K20, R3d) => 0.62,
        (K20, Mvit) => 0.84,
        (K20, Clip) => 0.80,
        (K20, ClipPooled) => 0.86,

        // K20 (skew): MViT is the single correct choice.
        (K20Skew, R3d) => 0.54,
        (K20Skew, Mvit) => 0.88,
        (K20Skew, Clip) => 0.56,
        (K20Skew, ClipPooled) => 0.60,

        // Charades: many verb classes, MViT ahead of the rest.
        (Charades, R3d) => 0.38,
        (Charades, Mvit) => 0.72,
        (Charades, Clip) => 0.42,
        (Charades, ClipPooled) => 0.44,

        // Bears: single-frame recognizable, image and video transformers tie.
        (Bears, R3d) => 0.68,
        (Bears, Mvit) => 0.84,
        (Bears, Clip) => 0.86,
        (Bears, ClipPooled) => 0.88,

        // BDD: object recognition, CLIP variants best — but all candidates
        // are close early on, which is why feature selection is hardest here
        // (Table 4 correctness 0.50–0.69).
        (Bdd, R3d) => 0.48,
        (Bdd, Mvit) => 0.52,
        (Bdd, Clip) => 0.62,
        (Bdd, ClipPooled) => 0.60,

        // Randomized weights never carry signal.
        (_, Random) => 0.02,
    }
}

/// The set of extractors the paper treats as "correct" selections per dataset
/// when measuring feature-selection correctness (Section 5.3).
pub fn correct_extractors(dataset: DatasetName) -> Vec<ExtractorId> {
    use DatasetName::*;
    use ExtractorId::*;
    match dataset {
        Deer => vec![R3d, Mvit],
        K20 => vec![Mvit, Clip, ClipPooled],
        K20Skew => vec![Mvit],
        Charades => vec![Mvit],
        Bears => vec![Mvit, Clip, ClipPooled],
        Bdd => vec![Clip, ClipPooled],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_feature_is_always_worst() {
        for d in DatasetName::all() {
            let random_q = quality_for(d, ExtractorId::Random);
            for e in ExtractorId::all() {
                if e != ExtractorId::Random {
                    assert!(quality_for(d, e) > random_q, "{e} must beat Random on {d}");
                }
            }
        }
    }

    #[test]
    fn correct_extractors_have_top_quality() {
        // Every "correct" extractor must have quality within 0.05 of the best
        // for its dataset; every non-correct, non-Random extractor must be
        // strictly below the best.
        for d in DatasetName::all() {
            let best = ExtractorId::all()
                .iter()
                .map(|&e| quality_for(d, e))
                .fold(f64::MIN, f64::max);
            for e in correct_extractors(d) {
                assert!(
                    quality_for(d, e) >= best - 0.06,
                    "{e} should be near-best on {d}"
                );
            }
        }
    }

    #[test]
    fn figure4_orderings_hold() {
        use DatasetName::*;
        use ExtractorId::*;
        // Deer: video models beat image models.
        assert!(quality_for(Deer, R3d) > quality_for(Deer, Clip));
        assert!(quality_for(Deer, Mvit) > quality_for(Deer, ClipPooled));
        // K20 (skew) and Charades: MViT is the single best.
        for d in [K20Skew, Charades] {
            for e in [R3d, Clip, ClipPooled, Random] {
                assert!(quality_for(d, Mvit) > quality_for(d, e), "MViT best on {d}");
            }
        }
        // BDD: CLIP variants beat the video models.
        assert!(quality_for(Bdd, Clip) > quality_for(Bdd, Mvit));
        assert!(quality_for(Bdd, ClipPooled) > quality_for(Bdd, R3d));
    }

    #[test]
    fn bdd_gap_is_small() {
        // BDD is the hard case for feature selection: the best and the
        // runner-up non-correct feature must be close.
        use ExtractorId::*;
        let best = quality_for(DatasetName::Bdd, Clip);
        let next = quality_for(DatasetName::Bdd, Mvit);
        assert!(best - next < 0.15);
    }

    #[test]
    fn profile_derivation() {
        let p = SignalProfile::from_quality(0.8);
        assert!((p.class_separation - 0.6).abs() < 1e-12);
        assert_eq!(p.noise_std, 1.0);
        let q = SignalProfile::for_pair(DatasetName::Deer, ExtractorId::R3d);
        assert!(q.quality > 0.9);
    }

    #[test]
    #[should_panic(expected = "quality must be in [0, 1]")]
    fn rejects_out_of_range_quality() {
        SignalProfile::from_quality(1.5);
    }
}
