//! `ve-bench` — the experiment harness that regenerates every table and
//! figure of the paper's evaluation (Section 5).
//!
//! Each binary under `src/bin/` reproduces one artifact:
//!
//! | binary   | paper artifact | what it prints |
//! |----------|----------------|----------------|
//! | `table2` | Table 2        | dataset inventory (classes, skew, corpus sizes) |
//! | `table3` | Table 3        | feature extractors (type, architecture, dim, throughput) |
//! | `fig2`   | Figure 2       | average F1 vs cumulative visible latency after 100 Explore steps |
//! | `fig3`   | Figure 3       | F1 and `S_max` per iteration for each sampling method |
//! | `fig4`   | Figure 4       | F1 per feature extractor (and Concat) per dataset |
//! | `table4` | Table 4        | feature-selection correctness at `T = 20` and `T = 50` |
//! | `fig5`   | Figure 5       | median feature-selection step (+ IQR) |
//! | `fig6`   | Figure 6       | rising-bandit bound evolution on K20 |
//! | `fig7`   | Figure 7       | F1 of VE-select vs Best / Worst / VE-sample-Best |
//! | `fig8`   | Figure 8       | model quality and latency of the VE-variants |
//! | `fig9`   | Figure 9       | feature selection under 5 / 10 / 20 % label noise |
//!
//! Every binary accepts `--full` to run at larger corpus scale, more
//! iterations, and more seeds (closer to the paper's setup, at the cost of a
//! longer runtime); the default "quick" profile finishes in seconds to a few
//! minutes per figure and preserves the qualitative shape of every result.

use vocalexplore::prelude::*;
use vocalexplore::{FeatureSelectionPolicy, SamplingPolicy, VocalExploreConfig};

pub mod emit;

/// Run-scale profile shared by the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Fraction of the paper's corpus sizes to generate.
    pub scale: f64,
    /// Number of `Explore` iterations per session.
    pub iterations: usize,
    /// Seeds (= independent repetitions) to average over.
    pub seeds: u64,
    /// Training epochs for the linear probes.
    pub epochs: usize,
    /// Evaluate F1 every this many iterations.
    pub eval_every: usize,
}

impl Profile {
    /// The quick profile (default).
    pub fn quick() -> Self {
        Self {
            scale: 0.3,
            iterations: 60,
            seeds: 3,
            epochs: 60,
            eval_every: 5,
        }
    }

    /// The full profile (`--full`).
    pub fn full() -> Self {
        Self {
            scale: 1.0,
            iterations: 100,
            seeds: 5,
            epochs: 120,
            eval_every: 5,
        }
    }

    /// Chooses the profile from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::quick()
        }
    }

    /// Builds a session config for this profile.
    ///
    /// The two largest corpora are generated at a reduced fraction of the
    /// profile scale (Charades: ×0.4, K20: ×0.6) so that sweeps over all six
    /// datasets stay balanced in wall-clock time; the exploration dynamics
    /// only depend on the first few hundred labeled segments, not the corpus
    /// tail.
    pub fn session(&self, dataset: DatasetName, seed: u64) -> SessionConfig {
        let factor = match dataset {
            DatasetName::Charades => 0.4,
            DatasetName::K20 => 0.6,
            _ => 1.0,
        };
        let mut cfg = SessionConfig::new(dataset, (self.scale * factor).min(1.0), seed)
            .with_iterations(self.iterations)
            .with_eval_every(self.eval_every);
        cfg.system.train.epochs = self.epochs;
        cfg
    }
}

/// Convenience: run one session and return its outcome.
pub fn run_session(cfg: SessionConfig) -> SessionOutcome {
    SessionRunner::new(cfg).run()
}

/// Runs the same configuration across seeds and averages the final F1 and
/// cumulative visible latency.
pub fn run_averaged(
    profile: &Profile,
    dataset: DatasetName,
    configure: impl Fn(SessionConfig) -> SessionConfig,
) -> AveragedOutcome {
    let mut f1 = Vec::new();
    let mut latency = Vec::new();
    let mut s_max = Vec::new();
    let mut selected = Vec::new();
    let mut selected_at = Vec::new();
    for seed in 0..profile.seeds {
        let cfg = configure(profile.session(dataset, seed * 101 + 7));
        let outcome = run_session(cfg);
        f1.push(outcome.mean_f1_last(3));
        latency.push(outcome.cumulative_visible_latency());
        s_max.push(outcome.final_s_max());
        selected.push(outcome.final_extractor);
        if let Some(step) = outcome.feature_selected_at {
            selected_at.push(step as f64);
        }
    }
    AveragedOutcome {
        final_f1: ve_stats::mean(&f1),
        final_f1_std: ve_stats::std_dev(&f1),
        cumulative_visible_latency: ve_stats::mean(&latency),
        final_s_max: ve_stats::mean(&s_max),
        selected_extractors: selected,
        median_selection_step: if selected_at.is_empty() {
            None
        } else {
            Some(ve_stats::median(&selected_at))
        },
    }
}

/// Seed-averaged summary of a configuration.
#[derive(Debug, Clone)]
pub struct AveragedOutcome {
    /// Mean (over seeds) of the final macro F1 (last 3 evaluations).
    pub final_f1: f64,
    /// Standard deviation of the final macro F1 across seeds.
    pub final_f1_std: f64,
    /// Mean cumulative visible latency in seconds.
    pub cumulative_visible_latency: f64,
    /// Mean final `S_max`.
    pub final_s_max: f64,
    /// The extractor each seed ended up using.
    pub selected_extractors: Vec<ExtractorId>,
    /// Median iteration at which the bandit converged (if it did).
    pub median_selection_step: Option<f64>,
}

/// Named sampling-method variants used by Figures 2, 3, and 7.
pub fn sampling_variants() -> Vec<(&'static str, SamplingPolicy)> {
    vec![
        ("Random", SamplingPolicy::Fixed(AcquisitionKind::Random)),
        ("Coreset", SamplingPolicy::Fixed(AcquisitionKind::Coreset)),
        (
            "Cluster-Margin",
            SamplingPolicy::Fixed(AcquisitionKind::ClusterMargin),
        ),
        (
            "VE-sample",
            SamplingPolicy::VeSample(ve_al::VeSampleConfig::coreset()),
        ),
        (
            "VE-sample (CM)",
            SamplingPolicy::VeSample(ve_al::VeSampleConfig::cluster_margin()),
        ),
        (
            "Freq.",
            SamplingPolicy::VeSample(ve_al::VeSampleConfig::frequency(1.0)),
        ),
    ]
}

/// The empirically best fixed extractor per dataset (Section 5.2 uses these
/// when comparing sampling methods on "the best feature").
pub fn best_extractor(dataset: DatasetName) -> ExtractorId {
    match dataset {
        DatasetName::Deer => ExtractorId::R3d,
        DatasetName::K20 => ExtractorId::ClipPooled,
        DatasetName::K20Skew => ExtractorId::Mvit,
        DatasetName::Charades => ExtractorId::Mvit,
        DatasetName::Bears => ExtractorId::ClipPooled,
        DatasetName::Bdd => ExtractorId::Clip,
    }
}

/// The extractors the paper accepts as "correct" per dataset (Table 4).
pub fn correct_extractors(dataset: DatasetName) -> Vec<ExtractorId> {
    ve_features::profiles::correct_extractors(dataset)
}

/// Applies a fixed feature extractor to a session config.
pub fn with_fixed_feature(mut cfg: SessionConfig, extractor: ExtractorId) -> SessionConfig {
    cfg.system = cfg
        .system
        .with_feature_selection(FeatureSelectionPolicy::Fixed(extractor));
    cfg
}

/// Applies a sampling policy to a session config.
pub fn with_sampling(mut cfg: SessionConfig, sampling: SamplingPolicy) -> SessionConfig {
    cfg.system = cfg.system.with_sampling(sampling);
    cfg
}

/// Applies a scheduling strategy.
pub fn with_strategy(mut cfg: SessionConfig, strategy: SchedulerStrategy) -> SessionConfig {
    cfg.system = cfg.system.with_strategy(strategy);
    cfg
}

/// Applies a system-config transformation.
pub fn with_system(
    mut cfg: SessionConfig,
    f: impl FnOnce(VocalExploreConfig) -> VocalExploreConfig,
) -> SessionConfig {
    cfg.system = f(cfg.system);
    cfg
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}", w = w))
        .collect();
    println!("| {} |", row.join(" | "));
}

/// Prints a Markdown-style table header with separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        let q = Profile::quick();
        let f = Profile::full();
        assert!(f.scale > q.scale);
        assert!(f.iterations >= q.iterations);
        assert!(f.seeds >= q.seeds);
    }

    #[test]
    fn best_extractor_is_in_the_correct_set() {
        for d in DatasetName::all() {
            assert!(
                correct_extractors(d).contains(&best_extractor(d)),
                "best extractor for {d} must be a correct choice"
            );
        }
    }

    #[test]
    fn sampling_variants_cover_the_figure3_legend() {
        let names: Vec<&str> = sampling_variants().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "Random",
                "Coreset",
                "Cluster-Margin",
                "VE-sample",
                "VE-sample (CM)",
                "Freq."
            ]
        );
    }

    #[test]
    fn session_builder_applies_profile() {
        let p = Profile::quick();
        let cfg = p.session(DatasetName::Deer, 1);
        assert_eq!(cfg.iterations, p.iterations);
        assert_eq!(cfg.system.train.epochs, p.epochs);
    }
}
