//! A tiny self-describing binary codec used by the snapshot format.
//!
//! The format is deliberately simple: little-endian fixed-width integers and
//! floats, length-prefixed strings and vectors. Writing it by hand keeps the
//! storage substrate dependency-free; the [`Reader`] performs bounds checks
//! and reports truncation as [`StorageError::Corrupt`] rather than panicking.

use crate::error::StorageError;

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether anything has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` (little-endian bits).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` (little-endian bits).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, xs: &[f32]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_f32(x);
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, xs: &[u64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_u64(x);
        }
    }
}

/// Bounds-checked binary reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of the buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt(format!(
                "expected {n} more bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32`.
    pub fn get_f32(&mut self) -> Result<f32, StorageError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StorageError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StorageError::Corrupt(format!("invalid utf-8: {e}")))
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, StorageError> {
        let len = self.get_u32()? as usize;
        let mut out = Vec::with_capacity(len.min(self.remaining() / 4 + 1));
        for _ in 0..len {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, StorageError> {
        let len = self.get_u32()? as usize;
        let mut out = Vec::with_capacity(len.min(self.remaining() / 8 + 1));
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_str("hello world");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -2.25);
        assert_eq!(r.get_str().unwrap(), "hello world");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn round_trip_vectors() {
        let mut w = Writer::new();
        w.put_f32_slice(&[0.25, -1.0, 3.5]);
        w.put_u64_slice(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_f32_vec().unwrap(), vec![0.25, -1.0, 3.5]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn truncated_buffer_errors_instead_of_panicking() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(matches!(r.get_u64(), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_str(), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn huge_declared_length_does_not_overallocate() {
        // A corrupt length prefix of u32::MAX must fail cleanly.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_f32_vec().is_err());
    }

    #[test]
    fn writer_capacity_and_len() {
        let mut w = Writer::with_capacity(16);
        assert!(w.is_empty());
        w.put_u32(1);
        assert_eq!(w.len(), 4);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arbitrary_f32_vec_round_trips(xs in proptest::collection::vec(-1e6f32..1e6, 0..200)) {
                let mut w = Writer::new();
                w.put_f32_slice(&xs);
                let bytes = w.into_bytes();
                let mut r = Reader::new(&bytes);
                prop_assert_eq!(r.get_f32_vec().unwrap(), xs);
            }

            #[test]
            fn arbitrary_strings_round_trip(s in "\\PC{0,64}") {
                let mut w = Writer::new();
                w.put_str(&s);
                let bytes = w.into_bytes();
                let mut r = Reader::new(&bytes);
                prop_assert_eq!(r.get_str().unwrap(), s);
            }

            #[test]
            fn reader_never_panics_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
                let mut r = Reader::new(&bytes);
                // Whatever happens, these must return Ok or Err, not panic.
                let _ = r.get_u32();
                let _ = r.get_str();
                let _ = r.get_f32_vec();
                let _ = r.get_u64();
            }
        }
    }
}
