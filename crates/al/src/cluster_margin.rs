//! Cluster-Margin sampling (Citovsky et al., NeurIPS 2021) — the prototype's
//! default active-learning acquisition function.
//!
//! Cluster-Margin combines uncertainty and diversity: take the `k_m · B`
//! unlabeled candidates with the smallest prediction margin (difference
//! between the top-two class probabilities), group them into clusters in
//! feature space, and pick candidates round-robin across clusters in
//! ascending-cluster-size order so no single dense region dominates the
//! batch. The original paper clusters once with HAC; this implementation
//! uses a small deterministic k-means over the margin-filtered set, which
//! serves the same purpose at the candidate-set sizes VOCALExplore works
//! with (tens to a few hundred vectors per `Explore` call).

use ve_ml::tensor::squared_distance;

/// Configuration for Cluster-Margin.
#[derive(Debug, Clone, Copy)]
pub struct ClusterMarginConfig {
    /// Margin-pool multiplier: the `k_m · budget` lowest-margin candidates
    /// enter the clustering stage (paper uses a pool ~10× the batch).
    pub margin_pool_multiplier: usize,
    /// Number of clusters used for the diversity stage, as a multiple of the
    /// budget (clamped to the pool size).
    pub clusters_per_budget: usize,
    /// k-means iterations (small and fixed; exactness is not required).
    pub kmeans_iters: usize,
}

impl Default for ClusterMarginConfig {
    fn default() -> Self {
        Self {
            margin_pool_multiplier: 10,
            clusters_per_budget: 2,
            kmeans_iters: 10,
        }
    }
}

/// Selects `budget` candidate indices with Cluster-Margin sampling.
///
/// * `features` — candidate feature vectors.
/// * `probs` — per-candidate class-probability vectors from the latest model
///   (`features.len()` rows). When the model has not been trained yet
///   (`probs` empty or rows empty), the margin stage degenerates to treating
///   every candidate as maximally uncertain, leaving a purely
///   diversity-driven selection.
///
/// # Panics
/// Panics if `probs` is non-empty but has a different length than `features`.
pub fn cluster_margin_selection(
    features: &[Vec<f32>],
    probs: &[Vec<f32>],
    budget: usize,
    cfg: &ClusterMarginConfig,
) -> Vec<usize> {
    if features.is_empty() || budget == 0 {
        return Vec::new();
    }
    if !probs.is_empty() {
        assert_eq!(
            probs.len(),
            features.len(),
            "probability rows must match candidates"
        );
    }

    // Stage 1: margin filtering.
    let margins: Vec<f64> = (0..features.len())
        .map(|i| {
            if probs.is_empty() || probs[i].len() < 2 {
                0.0 // unknown probabilities -> treat as maximally uncertain
            } else {
                margin(&probs[i])
            }
        })
        .collect();
    let pool_size = (cfg.margin_pool_multiplier.max(1) * budget).min(features.len());
    let mut order: Vec<usize> = (0..features.len()).collect();
    order.sort_by(|&a, &b| margins[a].partial_cmp(&margins[b]).expect("NaN margin"));
    let pool: Vec<usize> = order.into_iter().take(pool_size).collect();

    // Stage 2: cluster the pool for diversity.
    let k = (cfg.clusters_per_budget.max(1) * budget).min(pool.len()).max(1);
    let assignments = kmeans_assign(features, &pool, k, cfg.kmeans_iters);

    // Stage 3: round-robin over clusters, ascending by cluster size, picking
    // the lowest-margin unpicked member of each cluster.
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pool_pos, &cand_idx) in pool.iter().enumerate() {
        clusters[assignments[pool_pos]].push(cand_idx);
    }
    for cluster in &mut clusters {
        cluster.sort_by(|&a, &b| margins[a].partial_cmp(&margins[b]).expect("NaN margin"));
    }
    clusters.retain(|c| !c.is_empty());
    clusters.sort_by_key(|c| c.len());

    let mut selected = Vec::with_capacity(budget);
    let mut cursor = vec![0usize; clusters.len()];
    while selected.len() < budget.min(pool.len()) {
        let mut progressed = false;
        for (ci, cluster) in clusters.iter().enumerate() {
            if selected.len() >= budget {
                break;
            }
            if cursor[ci] < cluster.len() {
                selected.push(cluster[cursor[ci]]);
                cursor[ci] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    selected
}

/// Margin of a probability vector: difference between its two largest values.
/// A vector with fewer than two entries is treated as fully confident (its
/// single probability is the margin).
fn margin(p: &[f32]) -> f64 {
    let mut top = f32::NEG_INFINITY;
    let mut second = 0.0f32;
    for &v in p {
        if v > top {
            second = if top.is_finite() { top } else { 0.0 };
            top = v;
        } else if v > second {
            second = v;
        }
    }
    if !top.is_finite() {
        return 0.0;
    }
    (top - second).max(0.0) as f64
}

/// Deterministic k-means over the pooled candidates; returns the cluster
/// assignment of each pool member. Initial centroids are chosen by a
/// farthest-point sweep (k-means++ without randomness).
fn kmeans_assign(
    features: &[Vec<f32>],
    pool: &[usize],
    k: usize,
    iters: usize,
) -> Vec<usize> {
    let k = k.min(pool.len()).max(1);
    // Farthest-point initialization starting from the pool's first element.
    let mut centroid_ids = vec![pool[0]];
    while centroid_ids.len() < k {
        let next = pool
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let da = centroid_ids
                    .iter()
                    .map(|&c| squared_distance(&features[a], &features[c]))
                    .fold(f32::INFINITY, f32::min);
                let db = centroid_ids
                    .iter()
                    .map(|&c| squared_distance(&features[b], &features[c]))
                    .fold(f32::INFINITY, f32::min);
                da.partial_cmp(&db).expect("NaN distance")
            })
            .expect("pool not empty");
        if centroid_ids.contains(&next) {
            break;
        }
        centroid_ids.push(next);
    }
    let dim = features[pool[0]].len();
    let mut centroids: Vec<Vec<f32>> = centroid_ids
        .iter()
        .map(|&i| features[i].clone())
        .collect();
    let mut assignment = vec![0usize; pool.len()];

    for _ in 0..iters.max(1) {
        // Assign.
        for (pos, &cand) in pool.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (ci, c) in centroids.iter().enumerate() {
                let d = squared_distance(&features[cand], c);
                if d < best_d {
                    best_d = d;
                    best = ci;
                }
            }
            assignment[pos] = best;
        }
        // Update.
        let mut sums = vec![vec![0.0f32; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (pos, &cand) in pool.iter().enumerate() {
            let a = assignment[pos];
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(&features[cand]) {
                *s += v;
            }
        }
        for (ci, c) in centroids.iter_mut().enumerate() {
            if counts[ci] > 0 {
                let inv = 1.0 / counts[ci] as f32;
                for (dst, s) in c.iter_mut().zip(&sums[ci]) {
                    *dst = s * inv;
                }
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Candidates in two well-separated clusters with synthetic class
    /// probabilities: cluster A is certain, cluster B is uncertain.
    fn setup() -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut feats = Vec::new();
        let mut probs = Vec::new();
        for i in 0..10 {
            feats.push(vec![0.0 + i as f32 * 0.01, 0.0]);
            probs.push(vec![0.95, 0.05]); // confident
        }
        for i in 0..10 {
            feats.push(vec![10.0 + i as f32 * 0.01, 0.0]);
            probs.push(vec![0.52, 0.48]); // uncertain
        }
        (feats, probs)
    }

    #[test]
    fn prefers_low_margin_candidates() {
        let (feats, probs) = setup();
        // Use a margin pool of 2 × budget = 10 so the margin filter actually
        // bites with only 20 candidates (with the default 10× multiplier the
        // pool would be the whole candidate set).
        let cfg = ClusterMarginConfig {
            margin_pool_multiplier: 2,
            ..ClusterMarginConfig::default()
        };
        let picks = cluster_margin_selection(&feats, &probs, 5, &cfg);
        assert_eq!(picks.len(), 5);
        // Every pick must come from the uncertain cluster (indices 10..20):
        // the 10 lowest-margin candidates are exactly those.
        assert!(
            picks.iter().all(|&i| i >= 10),
            "all picks should be uncertain: {picks:?}"
        );
    }

    #[test]
    fn spreads_picks_across_clusters_when_margins_tie() {
        // All candidates equally uncertain -> diversity stage should spread
        // selections across the two spatial clusters.
        let mut feats = Vec::new();
        for i in 0..10 {
            feats.push(vec![0.0 + i as f32 * 0.01, 0.0]);
        }
        for i in 0..10 {
            feats.push(vec![10.0 + i as f32 * 0.01, 0.0]);
        }
        let probs = vec![vec![0.5, 0.5]; 20];
        let picks = cluster_margin_selection(&feats, &probs, 4, &ClusterMarginConfig::default());
        let left = picks.iter().filter(|&&i| i < 10).count();
        let right = picks.len() - left;
        assert!(left >= 1 && right >= 1, "picks should span both clusters: {picks:?}");
    }

    #[test]
    fn works_without_model_probabilities() {
        let (feats, _) = setup();
        let picks = cluster_margin_selection(&feats, &[], 6, &ClusterMarginConfig::default());
        assert_eq!(picks.len(), 6);
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), picks.len());
    }

    #[test]
    fn budget_larger_than_pool() {
        let (feats, probs) = setup();
        let picks = cluster_margin_selection(&feats, &probs, 100, &ClusterMarginConfig::default());
        assert_eq!(picks.len(), 20);
    }

    #[test]
    fn empty_inputs() {
        assert!(cluster_margin_selection(&[], &[], 5, &ClusterMarginConfig::default()).is_empty());
        let (feats, probs) = setup();
        assert!(cluster_margin_selection(&feats, &probs, 0, &ClusterMarginConfig::default())
            .is_empty());
    }

    #[test]
    fn margin_computation() {
        assert!((margin(&[0.7, 0.2, 0.1]) - 0.5).abs() < 1e-6);
        assert!((margin(&[0.5, 0.5]) - 0.0).abs() < 1e-6);
        // Single-entry vectors are treated as fully confident.
        assert!((margin(&[1.0]) - 1.0).abs() < 1e-6);
        // Empty vectors are treated as maximally uncertain.
        assert_eq!(margin(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability rows must match")]
    fn rejects_mismatched_probs() {
        cluster_margin_selection(
            &[vec![0.0, 1.0], vec![1.0, 0.0]],
            &[vec![0.5, 0.5]],
            1,
            &ClusterMarginConfig::default(),
        );
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn valid_unique_selections(
                n in 1usize..40,
                budget in 1usize..10,
                seed_vals in proptest::collection::vec(-5.0f32..5.0, 40 * 3),
            ) {
                let feats: Vec<Vec<f32>> = (0..n)
                    .map(|i| seed_vals[i * 3..i * 3 + 3].to_vec())
                    .collect();
                let picks =
                    cluster_margin_selection(&feats, &[], budget, &ClusterMarginConfig::default());
                prop_assert!(picks.len() <= budget.min(n));
                let unique: std::collections::HashSet<_> = picks.iter().collect();
                prop_assert_eq!(unique.len(), picks.len());
                prop_assert!(picks.iter().all(|&i| i < n));
            }
        }
    }
}
