//! Microbenchmarks for the skew-detection tests run by `VE-sample` after
//! every labeling batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ve_stats::{frequency_test_p_value, SkewDetector, SkewTest};

fn bench_skew_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("skew_tests");
    for &labels in &[25u64, 100, 500] {
        // Zipf-ish counts over 9 classes scaled to the target label total.
        let base = [40u64, 20, 12, 9, 7, 5, 4, 2, 1];
        let total: u64 = base.iter().sum();
        let counts: Vec<u64> = base.iter().map(|&c| c * labels / total).collect();

        group.bench_with_input(
            BenchmarkId::new("anderson_darling", labels),
            &labels,
            |b, _| {
                let detector = SkewDetector::new(SkewTest::AndersonDarling { alpha: 0.001 });
                b.iter(|| black_box(detector.p_value(&counts)))
            },
        );
        group.bench_with_input(BenchmarkId::new("frequency", labels), &labels, |b, _| {
            b.iter(|| black_box(frequency_test_p_value(&counts, 1.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skew_tests);
criterion_main!(benches);
