//! Workspace discovery and the per-file source model the rules consume.
//!
//! `ve-lint` is workspace-aware: it parses the root `Cargo.toml` member list
//! (with a purpose-built reader — no TOML crate in this environment), maps
//! each member to its package name, and lexes every `src/**/*.rs` file.
//!
//! Scope decisions, documented here because they are policy:
//!
//! * **Only `src/` is scanned.** The determinism and concurrency contracts
//!   bind shipped library code; `tests/`, `benches/`, and `examples/`
//!   deliberately panic, spawn threads, and measure wall-clock time.
//! * **`#[cfg(test)]` / `#[test]` items inside `src/` are excluded** for the
//!   same reason (computed per-file as a set of test-only lines).
//! * **`crates/compat/*` members are skipped entirely**: they are offline
//!   stand-ins for external crates (`rand`, `parking_lot`, …) and carry the
//!   external API's idioms, not this repository's contracts.

use crate::lexer::{lex, Token};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One lexed source file, with everything the rules need precomputed.
pub struct SourceFile {
    /// Package name of the crate the file belongs to (e.g. `ve-al`).
    pub crate_name: String,
    /// Path relative to the workspace root (e.g. `crates/al/src/lib.rs`),
    /// always with `/` separators so reports and baselines are portable.
    pub rel_path: String,
    /// Raw source lines (1-based access via `line_text`).
    pub lines: Vec<String>,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order. Rules
    /// pattern-match over this view so comments never split a pattern.
    pub code: Vec<usize>,
    /// Lines that belong to `#[cfg(test)]` / `#[test]` items.
    pub test_lines: BTreeSet<u32>,
}

impl SourceFile {
    /// Builds a source file model from raw text (the entry point both for
    /// real files and for the fixture tests).
    pub fn from_source(crate_name: &str, rel_path: &str, source: &str) -> Self {
        let tokens = lex(source);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut file = Self {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            lines: source.lines().map(str::to_string).collect(),
            tokens,
            code,
            test_lines: BTreeSet::new(),
        };
        file.test_lines = file.compute_test_lines();
        file
    }

    /// The trimmed text of a 1-based line (empty for out-of-range lines).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// The code token (comments skipped) at code-index `ci`.
    pub fn ct(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&i| &self.tokens[i])
    }

    /// Whether the 1-based line is inside a test-only item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// Finds the code-index of the matching closing delimiter for the opener
    /// at code-index `open` (`(`/`)`, `[`/`]`, `{`/`}`). Returns the last
    /// token on unbalanced input rather than panicking.
    pub fn matching_close(&self, open: usize) -> usize {
        let (o, c) = match self.ct(open).map(|t| t.text.as_str()) {
            Some("(") => ('(', ')'),
            Some("[") => ('[', ']'),
            Some("{") => ('{', '}'),
            _ => return open,
        };
        let mut depth = 0i64;
        let mut ci = open;
        while let Some(t) = self.ct(ci) {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return ci;
                }
            }
            ci += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// Marks the line spans of `#[cfg(test)]`-gated and `#[test]` items.
    fn compute_test_lines(&self) -> BTreeSet<u32> {
        let mut lines = BTreeSet::new();
        let mut ci = 0usize;
        while ci + 1 < self.code.len() {
            let is_attr = self.ct(ci).is_some_and(|t| t.is_punct('#'))
                && self.ct(ci + 1).is_some_and(|t| t.is_punct('['));
            if !is_attr {
                ci += 1;
                continue;
            }
            let close = self.matching_close(ci + 1);
            let body: Vec<&Token> = (ci + 2..close).filter_map(|j| self.ct(j)).collect();
            let is_test_attr = match body.first() {
                Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
                Some(t) if t.is_ident("test") && body.len() == 1 => true,
                _ => false,
            };
            if !is_test_attr {
                ci = close + 1;
                continue;
            }
            // Skip any further stacked attributes, then consume the item:
            // to the matching `}` of its first brace, or to `;` if the item
            // has no body (e.g. a gated `use`).
            let mut j = close + 1;
            while self.ct(j).is_some_and(|t| t.is_punct('#'))
                && self.ct(j + 1).is_some_and(|t| t.is_punct('['))
            {
                j = self.matching_close(j + 1) + 1;
            }
            let mut end = j;
            while let Some(t) = self.ct(end) {
                if t.is_punct(';') {
                    break;
                }
                if t.is_punct('{') {
                    end = self.matching_close(end);
                    break;
                }
                end += 1;
            }
            let start_line = self.ct(ci).map(|t| t.line).unwrap_or(1);
            let end_line = self
                .ct(end.min(self.code.len().saturating_sub(1)))
                .map(|t| t.line)
                .unwrap_or(start_line);
            for l in start_line..=end_line {
                lines.insert(l);
            }
            ci = end + 1;
        }
        lines
    }
}

/// The lexed workspace: every in-scope source file.
pub struct WorkspaceModel {
    pub files: Vec<SourceFile>,
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Extracts the `members = [ … ]` entries from the root manifest.
fn parse_members(manifest: &str) -> Vec<String> {
    let Some(start) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open) = manifest[start..].find('[').map(|i| start + i) else {
        return Vec::new();
    };
    let Some(close) = manifest[open..].find(']').map(|i| open + i) else {
        return Vec::new();
    };
    manifest[open + 1..close]
        .split(',')
        .filter_map(|entry| {
            let entry = entry.trim();
            let unquoted = entry.strip_prefix('"')?.strip_suffix('"')?;
            Some(unquoted.to_string())
        })
        .collect()
}

/// Reads `name = "…"` from the `[package]` section of a crate manifest.
fn parse_package_name(manifest: &str) -> Option<String> {
    let pkg = manifest.find("[package]")?;
    for line in manifest[pkg..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('[') && !line.starts_with("[package") {
            break;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Some(v.to_string());
            }
        }
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Discovers and lexes the workspace rooted at `root`.
pub fn load_workspace(root: &Path) -> Result<WorkspaceModel, String> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let mut files = Vec::new();
    // The root package (workspace manifest doubles as a package manifest).
    let mut crate_dirs: Vec<(String, PathBuf)> = Vec::new();
    if let Some(name) = parse_package_name(&manifest) {
        crate_dirs.push((name, root.to_path_buf()));
    }
    for member in parse_members(&manifest) {
        // Offline stand-ins for external crates carry external idioms, not
        // this repository's contracts.
        if member.starts_with("crates/compat/") {
            continue;
        }
        let dir = root.join(&member);
        let member_manifest = dir.join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&member_manifest) else {
            continue;
        };
        let Some(name) = parse_package_name(&text) else {
            continue;
        };
        crate_dirs.push((name, dir));
    }
    for (name, dir) in crate_dirs {
        let src = dir.join("src");
        let mut paths = Vec::new();
        collect_rs_files(&src, &mut paths);
        for path in paths {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::from_source(&name, &rel, &text));
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(WorkspaceModel { files })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_from_manifest_snippet() {
        let manifest = r#"
[workspace]
members = [
    "crates/stats",
    "crates/compat/rand",
]
[package]
name = "root-pkg"
"#;
        assert_eq!(
            parse_members(manifest),
            vec!["crates/stats".to_string(), "crates/compat/rand".to_string()]
        );
        assert_eq!(parse_package_name(manifest).as_deref(), Some("root-pkg"));
    }

    #[test]
    fn cfg_test_items_are_marked_as_test_lines() {
        let src = "fn live() { x(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y(); }\n}\nfn also_live() {}\n";
        let f = SourceFile::from_source("c", "f.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_attr_with_stacked_attributes() {
        let src = "#[test]\n#[allow(dead_code)]\nfn t() {\n    boom();\n}\nfn live() {}\n";
        let f = SourceFile::from_source("c", "f.rs", src);
        for l in 1..=5 {
            assert!(f.is_test_line(l), "line {l}");
        }
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_all_test_is_recognized() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn t() { boom() }\nfn live() {}\n";
        let f = SourceFile::from_source("c", "f.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn matching_close_is_total_on_unbalanced_input() {
        let f = SourceFile::from_source("c", "f.rs", "fn f( {");
        // Does not panic; returns the last token index.
        let _ = f.matching_close(2);
    }
}
