//! The deterministic event plane: a ledger of `(iteration, event)` pairs,
//! unbounded by default, with an optional ring-buffer capacity mode.
//!
//! **Contract.** Event *content* must be a pure function of the session's
//! inputs — no wall-clock readings, thread ids, or pointer-derived values.
//! Recording *order* within an iteration is allowed to vary with scheduling
//! (a training task and an eager extraction may finish in either order), so
//! equality claims are made over the [`EventLedger::canonical`] form:
//! iteration-major, then the event type's total order. Because the
//! per-iteration event *multiset* is parallelism-invariant, the canonical
//! sequence is bit-comparable across worker/thread counts and across the
//! synchronous and asynchronous session paths.
//!
//! **Flight-recorder mode.** [`EventLedger::with_capacity`] bounds the
//! ledger to the most recent `C` droppable events. Eviction is
//! oldest-first in recording order, with exact per-kind accounting
//! ([`EventLedger::dropped_by_kind`], keyed by [`EventKind::kind`]).
//! Events recorded through [`EventLedger::record_always`] are *pinned*:
//! they are program state (the degradation view is built on them) and are
//! never evicted, so retained memory is bounded by `C + pinned`. While the
//! total recorded count stays within `C`, a bounded ledger is bit-identical
//! to an unbounded one — the capacity only matters under pressure.
//!
//! The raw recording order is still meaningful on a single path: the
//! degradation ledger exposed by `vocalexplore` is a cursor-based *view*
//! over this plane ([`EventLedger::drain_filter_map`]), preserving the exact
//! `Vec<Degradation>` ordering older code promised.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Names an event's kind for drop accounting. The returned string must be a
/// pure function of the variant (not its payload) so per-kind totals are
/// comparable across runs.
pub trait EventKind {
    fn kind(&self) -> &'static str;
}

struct Item<E> {
    iteration: u32,
    event: E,
    /// Recorded via `record_always`: never evicted by the ring buffer.
    pinned: bool,
}

struct LedgerState<E> {
    items: Vec<Item<E>>,
    /// Index of the first item not yet returned by `drain_filter_map`.
    drain_cursor: usize,
    /// Number of retained non-pinned items (the population the capacity
    /// bound applies to).
    droppable: usize,
    /// Exact per-kind eviction counts (empty while within capacity).
    dropped: BTreeMap<&'static str, u64>,
}

/// Thread-safe event ledger. `E` is the concrete event enum of the
/// instrumented system; its `Ord` defines the canonical intra-iteration
/// order (derive it with the variants listed in phase order).
pub struct EventLedger<E> {
    ledger: Mutex<LedgerState<E>>,
    enabled: AtomicBool,
    /// `None` = unbounded (the default); `Some(c)` = flight-recorder mode.
    capacity: Option<usize>,
}

impl<E: Clone + Ord + EventKind> EventLedger<E> {
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A bounded ledger retaining at most `capacity` droppable events (the
    /// most recent ones, in recording order) plus every pinned event.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(Some(capacity))
    }

    fn build(capacity: Option<usize>) -> Self {
        Self {
            ledger: Mutex::new(LedgerState {
                items: Vec::new(),
                drain_cursor: 0,
                droppable: 0,
                dropped: BTreeMap::new(),
            }),
            enabled: AtomicBool::new(true),
            capacity,
        }
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Turns recording on or off. `record_always` ignores this — events that
    /// double as program state (degradations) must survive a disabled sink.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event under the given iteration tag (no-op when disabled).
    /// In capacity mode this may evict the oldest droppable event.
    pub fn record(&self, iteration: u32, event: E) {
        if !self.is_enabled() {
            return;
        }
        self.push(iteration, event, false);
    }

    /// Records regardless of the enabled flag — for events that are also
    /// program state (the degradation view is built on these). Pinned:
    /// never evicted by the ring buffer.
    pub fn record_always(&self, iteration: u32, event: E) {
        self.push(iteration, event, true);
    }

    fn push(&self, iteration: u32, event: E, pinned: bool) {
        let mut state = self.ledger.lock().expect("obs.ledger poisoned");
        state.items.push(Item {
            iteration,
            event,
            pinned,
        });
        if !pinned {
            state.droppable += 1;
            if let Some(cap) = self.capacity {
                while state.droppable > cap {
                    evict_oldest_droppable(&mut state);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.ledger.lock().expect("obs.ledger poisoned").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events evicted by the ring buffer (0 while within capacity).
    pub fn dropped_total(&self) -> u64 {
        self.ledger
            .lock()
            .expect("obs.ledger poisoned")
            .dropped
            .values()
            .sum::<u64>()
    }

    /// Exact eviction counts per [`EventKind::kind`], sorted by kind name.
    /// For any run: retained-per-kind + dropped-per-kind equals the counts
    /// an unbounded ledger would hold.
    pub fn dropped_by_kind(&self) -> Vec<(&'static str, u64)> {
        self.ledger
            .lock()
            .expect("obs.ledger poisoned")
            .dropped
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// The retained ledger in raw recording order.
    pub fn snapshot(&self) -> Vec<(u32, E)> {
        self.ledger
            .lock()
            .expect("obs.ledger poisoned")
            .items
            .iter()
            .map(|it| (it.iteration, it.event.clone()))
            .collect()
    }

    /// The canonical form: stable-sorted by `(iteration, event)`. Two runs
    /// with identical per-iteration event multisets have identical canonical
    /// sequences — this is the form equality is asserted on.
    pub fn canonical(&self) -> Vec<(u32, E)> {
        let mut items = self.snapshot();
        items.sort();
        items
    }

    /// Returns `f(event)` for every not-yet-drained event where `f` is
    /// `Some`, in recording order, and advances the drain cursor past
    /// everything recorded so far. This is how a legacy "drain the ledger"
    /// API becomes a view over the event plane. Pinned events are never
    /// evicted, so a view over pinned events (degradations) is lossless
    /// even in capacity mode.
    pub fn drain_filter_map<T>(&self, f: impl Fn(&E) -> Option<T>) -> Vec<T> {
        let mut state = self.ledger.lock().expect("obs.ledger poisoned");
        let from = state.drain_cursor;
        state.drain_cursor = state.items.len();
        state.items[from..]
            .iter()
            .filter_map(|it| f(&it.event))
            .collect()
    }
}

/// Removes the oldest non-pinned item, charging its kind. Keeps the drain
/// cursor pointing at the same logical event: an eviction below the cursor
/// shifts it left; an eviction at or above it silently loses a not-yet-
/// drained droppable event (by design — only pinned views are lossless).
fn evict_oldest_droppable<E: EventKind>(state: &mut LedgerState<E>) {
    let idx = state
        .items
        .iter()
        .position(|it| !it.pinned)
        .expect("droppable count > 0 implies a droppable item");
    let item = state.items.remove(idx);
    state.droppable -= 1;
    *state.dropped.entry(item.event.kind()).or_insert(0) += 1;
    if idx < state.drain_cursor {
        state.drain_cursor -= 1;
    }
}

impl<E: Clone + Ord + EventKind> Default for EventLedger<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl EventKind for (u8, &'static str) {
        fn kind(&self) -> &'static str {
            self.1
        }
    }

    impl EventKind for i32 {
        fn kind(&self) -> &'static str {
            if *self >= 0 {
                "pos"
            } else {
                "neg"
            }
        }
    }

    #[test]
    fn canonical_is_iteration_major_then_event_order() {
        let ledger: EventLedger<(u8, &'static str)> = EventLedger::new();
        ledger.record(2, (1, "train"));
        ledger.record(1, (0, "select"));
        ledger.record(2, (0, "select"));
        ledger.record(1, (1, "train"));
        assert_eq!(
            ledger.canonical(),
            vec![
                (1, (0, "select")),
                (1, (1, "train")),
                (2, (0, "select")),
                (2, (1, "train")),
            ]
        );
        // Raw order is untouched.
        assert_eq!(ledger.snapshot()[0], (2, (1, "train")));
    }

    #[test]
    fn drain_view_preserves_recording_order_and_cursor() {
        let ledger: EventLedger<i32> = EventLedger::new();
        ledger.record(0, 3);
        ledger.record(0, -1);
        ledger.record(0, 2);
        let firsts = ledger.drain_filter_map(|e| if *e > 0 { Some(*e) } else { None });
        assert_eq!(firsts, vec![3, 2]);
        ledger.record(1, 5);
        assert_eq!(ledger.drain_filter_map(|e| Some(*e)), vec![5]);
        assert_eq!(ledger.drain_filter_map(|e| Some(*e)), Vec::<i32>::new());
        // The full ledger is still intact for export.
        assert_eq!(ledger.len(), 4);
    }

    #[test]
    fn disabled_ledger_drops_events_but_keeps_record_always() {
        let ledger: EventLedger<i32> = EventLedger::new();
        ledger.set_enabled(false);
        ledger.record(0, 1);
        ledger.record_always(0, 2);
        assert_eq!(ledger.snapshot(), vec![(0, 2)]);
    }

    #[test]
    fn ring_within_capacity_matches_unbounded_exactly() {
        let bounded: EventLedger<i32> = EventLedger::with_capacity(4);
        let unbounded: EventLedger<i32> = EventLedger::new();
        for (it, e) in [(0, 2), (0, -1), (1, 7), (1, 3)] {
            bounded.record(it, e);
            unbounded.record(it, e);
        }
        assert_eq!(bounded.snapshot(), unbounded.snapshot());
        assert_eq!(bounded.canonical(), unbounded.canonical());
        assert_eq!(bounded.dropped_total(), 0);
        assert!(bounded.dropped_by_kind().is_empty());
    }

    #[test]
    fn ring_evicts_oldest_droppable_with_exact_accounting() {
        let ledger: EventLedger<i32> = EventLedger::with_capacity(2);
        ledger.record(0, 1); // pos
        ledger.record(0, -2); // neg
        ledger.record(1, 3); // pos: evicts `1`
        ledger.record(1, 4); // pos: evicts `-2`
        assert_eq!(ledger.snapshot(), vec![(1, 3), (1, 4)]);
        assert_eq!(ledger.dropped_total(), 2);
        assert_eq!(ledger.dropped_by_kind(), vec![("neg", 1), ("pos", 1)]);
    }

    #[test]
    fn ring_never_evicts_pinned_events() {
        let ledger: EventLedger<i32> = EventLedger::with_capacity(1);
        ledger.record_always(0, -7);
        ledger.record(0, 1);
        ledger.record(1, 2); // evicts `1`, not the pinned `-7`
        ledger.record_always(1, -8);
        assert_eq!(ledger.snapshot(), vec![(0, -7), (1, 2), (1, -8)]);
        assert_eq!(ledger.dropped_by_kind(), vec![("pos", 1)]);
        // The pinned-event view (how degradations are drained) is lossless.
        let negs = ledger.drain_filter_map(|e| if *e < 0 { Some(*e) } else { None });
        assert_eq!(negs, vec![-7, -8]);
    }

    #[test]
    fn ring_eviction_below_drain_cursor_keeps_view_consistent() {
        let ledger: EventLedger<i32> = EventLedger::with_capacity(2);
        ledger.record(0, 1);
        ledger.record(0, 2);
        // Drain everything recorded so far.
        assert_eq!(ledger.drain_filter_map(|e| Some(*e)), vec![1, 2]);
        // This eviction removes an already-drained item below the cursor;
        // the next drain must return only the new event, not re-show `2`.
        ledger.record(1, 3);
        assert_eq!(ledger.drain_filter_map(|e| Some(*e)), vec![3]);
        assert_eq!(ledger.snapshot(), vec![(0, 2), (1, 3)]);
    }
}
