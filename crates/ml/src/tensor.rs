//! A minimal row-major dense matrix used by the linear models.
//!
//! The Model Manager's training problems are small (a few hundred labeled
//! clips × a few hundred feature dimensions), so a straightforward dense
//! representation with cache-friendly row-major loops is all that is needed —
//! no BLAS dependency.

/// Row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Creates a matrix whose rows are copies of the given slices.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Appends one row to the matrix.
    ///
    /// # Panics
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "row length does not match columns");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Reserves capacity for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols);
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0f32; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(self.row(r), x);
        }
        out
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Adds `other * s` element-wise in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Squared Frobenius norm.
    pub fn frobenius_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics (in debug builds) if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two vectors.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two vectors.
pub fn distance(a: &[f32], b: &[f32]) -> f32 {
    squared_distance(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn matvec_identity_like() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(m.matvec(&[2.0, 3.0]), vec![2.0, 3.0, 5.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.row(0), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.row(0), &[12.0, 24.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.frobenius_sq(), 25.0);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn from_vec_rejects_bad_shape() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_dims() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
