//! The frequency-based skew test from Appendix A of the paper.
//!
//! A class distribution `p ∈ Δ_k` is declared *imbalanced* when
//! `min_i p_i < 1 / (m·k)` for a multiplicative threshold `m ≥ 1`. Given an
//! empirical count vector `C` with `n = Σ_i C_i`, the worst-case false
//! discovery rate of declaring "imbalanced" when `φ(C) = min_i C_i ≤ t` is
//! bounded by
//!
//! ```text
//! p-value ≤ k · P[ Binomial(n, 1/(m·k)) ≤ min_i C_i ]
//! ```
//!
//! which is exactly the quantity the paper's prototype computes as
//! `k * scipy.stats.binom.cdf(min(C), n, 1/(m*k))`.

use crate::numeric::binomial_cdf;

/// Computes the Appendix-A p-value bound for the observed class counts.
///
/// * `counts` — per-class label counts collected so far. Classes the user has
///   defined but not yet labeled count as zeros and *should be included*: a
///   zero count is the strongest possible evidence of imbalance once `n` is
///   large.
/// * `m` — multiplicative threshold (`m = 1` means "any class rarer than the
///   perfectly balanced share" counts as imbalanced); the paper also
///   evaluates `m = 1.5`, which requires a larger imbalance ratio before the
///   distribution qualifies as skewed.
///
/// Returns a value in `[0, 1]` (the bound is clamped; the raw bound
/// `k * cdf` can exceed 1 when there is no evidence of skew).
pub fn frequency_test_p_value(counts: &[u64], m: f64) -> f64 {
    assert!(!counts.is_empty(), "counts must be non-empty");
    assert!(m >= 1.0, "multiplicative threshold m must be >= 1");
    let k = counts.len() as u64;
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 1.0;
    }
    let min_count = *counts.iter().min().expect("non-empty");
    let p = 1.0 / (m * k as f64);
    (k as f64 * binomial_cdf(min_count, n, p)).min(1.0)
}

/// Stateful wrapper with a fixed threshold, mirroring how the ALM holds one
/// configured test per exploration session.
#[derive(Debug, Clone, Copy)]
pub struct FrequencyTest {
    /// Multiplicative threshold `m` (lower bound on the imbalance ratio).
    pub m: f64,
    /// Significance level below which the distribution is declared skewed.
    pub alpha: f64,
}

impl Default for FrequencyTest {
    fn default() -> Self {
        // The paper's default configuration uses m = 1 and the same strict
        // significance level as the Anderson–Darling test.
        Self {
            m: 1.0,
            alpha: 0.001,
        }
    }
}

impl FrequencyTest {
    /// Creates a test with threshold `m` and significance level `alpha`.
    pub fn new(m: f64, alpha: f64) -> Self {
        assert!(m >= 1.0, "m must be >= 1");
        assert!((0.0..1.0).contains(&alpha), "alpha must be in (0, 1)");
        Self { m, alpha }
    }

    /// Returns the p-value bound for the observed counts.
    pub fn p_value(&self, counts: &[u64]) -> f64 {
        frequency_test_p_value(counts, self.m)
    }

    /// Returns `true` when the observed counts are declared skewed.
    pub fn is_skewed(&self, counts: &[u64]) -> bool {
        self.p_value(counts) <= self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_counts_are_not_skewed() {
        let counts = vec![50, 50, 50, 50];
        assert!(frequency_test_p_value(&counts, 1.0) > 0.05);
        assert!(!FrequencyTest::default().is_skewed(&counts));
    }

    #[test]
    fn missing_class_with_many_labels_is_skewed() {
        // 300 labels, one class never observed: strong evidence of imbalance.
        let counts = vec![150, 100, 50, 0];
        assert!(FrequencyTest::default().is_skewed(&counts));
    }

    #[test]
    fn missing_class_with_few_labels_is_not_skewed() {
        // Only 6 labels over 4 classes: a zero count is expected by chance.
        let counts = vec![3, 2, 1, 0];
        assert!(!FrequencyTest::default().is_skewed(&counts));
    }

    #[test]
    fn slight_imbalance_never_flagged_even_with_many_labels() {
        // The key property from Section 3.1: a 51/49-style split is NOT
        // declared skewed by the frequency test (at the paper's strict
        // alpha = 0.001) even with a large sample, unlike Anderson–Darling
        // whose p-value shrinks toward zero with n.
        let counts = vec![5_100u64, 4_900];
        let p = frequency_test_p_value(&counts, 1.0);
        assert!(
            p > 0.001,
            "frequency test must not flag near-balanced data at alpha=0.001: p={p}"
        );
        // With any threshold m > 1/(2*0.49) the minority share (0.49) sits
        // above 1/(m*k), so the bound stays at ~1 even in the limit of
        // infinite labels.
        let huge: Vec<u64> = vec![510_000, 490_000];
        let p_m15 = frequency_test_p_value(&huge, 1.5);
        assert!(
            p_m15 > 0.9,
            "with m=1.5 a 51/49 split must never look skewed: p={p_m15}"
        );
    }

    #[test]
    fn larger_m_raises_the_bar_for_declaring_skew() {
        // Larger m shrinks the reference frequency 1/(m·k), so the binomial
        // mean drops and the observed minimum count looks *less* surprising:
        // the p-value bound grows and skew is declared later. (m is a lower
        // bound on the imbalance ratio a distribution must exceed to count as
        // skewed.)
        let counts = vec![60, 30, 8, 2];
        let p_m1 = frequency_test_p_value(&counts, 1.0);
        let p_m15 = frequency_test_p_value(&counts, 1.5);
        assert!(
            p_m15 >= p_m1,
            "larger m should not decrease the p-value: {p_m15} vs {p_m1}"
        );
    }

    #[test]
    fn p_value_clamped_to_one() {
        let counts = vec![2, 2, 2, 2, 2, 2, 2, 2, 2, 2];
        let p = frequency_test_p_value(&counts, 1.0);
        assert!(p <= 1.0);
    }

    #[test]
    fn zero_total_count_returns_one() {
        assert_eq!(frequency_test_p_value(&[0, 0, 0], 1.0), 1.0);
    }

    #[test]
    fn p_value_decreases_as_evidence_accumulates() {
        // Same proportions (Zipf-ish), growing n: the bound should shrink.
        let small: Vec<u64> = vec![20, 6, 3, 1];
        let large: Vec<u64> = small.iter().map(|c| c * 20).collect();
        let p_small = frequency_test_p_value(&small, 1.0);
        let p_large = frequency_test_p_value(&large, 1.0);
        assert!(p_large < p_small);
    }

    #[test]
    #[should_panic(expected = "m must be >= 1")]
    fn rejects_invalid_threshold() {
        frequency_test_p_value(&[1, 2, 3], 0.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_counts() {
        frequency_test_p_value(&[], 1.0);
    }

    #[test]
    fn matches_formula_directly() {
        // p-value = k * P[Binomial(n, 1/(mk)) <= min(C)]
        let counts = vec![40u64, 25, 10, 5];
        let n: u64 = counts.iter().sum();
        let k = counts.len() as f64;
        let expected = (k * crate::numeric::binomial_cdf(5, n, 1.0 / k)).min(1.0);
        let got = frequency_test_p_value(&counts, 1.0);
        assert!((expected - got).abs() < 1e-12);
    }
}
