//! Eager feature-extraction planning (`VE-full`, Section 4.2).
//!
//! While the user labels the current batch (`B · T_user` seconds of idle
//! compute), `VE-full` schedules low-priority `T_f⁻` tasks that extract
//! features from randomly chosen unlabeled videos. The prototype batches
//! `|s| = 10` videos per scheduling round to amortize pipeline setup, and
//! schedules one `T_f⁻` task per (video, candidate feature) pair — so the
//! fewer candidate features remain, the faster the covered set `S` grows.
//! A guardrail caps the total number of videos processed eagerly so the user
//! does not pay for GPU time they will never benefit from.

/// Plan for one labeling window.
#[derive(Debug, Clone, PartialEq)]
pub struct EagerExtractionPlan {
    /// Number of videos to extract this round.
    pub videos: usize,
    /// Total `T_f⁻` tasks (videos × candidate features).
    pub tasks: usize,
    /// Estimated GPU seconds those tasks need.
    pub estimated_secs: f64,
    /// Whether the guardrail stopped further eager extraction.
    pub stopped_by_guardrail: bool,
}

/// Planner for eager feature extraction.
#[derive(Debug, Clone)]
pub struct EagerPlanner {
    /// Batch of videos scheduled per round (`|s|`, prototype: 10).
    pub batch_videos: usize,
    /// Maximum fraction of the corpus to process eagerly (guardrail; 1.0
    /// disables the guardrail).
    pub max_fraction_of_corpus: f64,
    processed_videos: usize,
}

impl Default for EagerPlanner {
    fn default() -> Self {
        Self {
            batch_videos: 10,
            max_fraction_of_corpus: 1.0,
            processed_videos: 0,
        }
    }
}

impl EagerPlanner {
    /// Creates a planner with the prototype's defaults (`|s| = 10`, no
    /// guardrail).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the guardrail as a fraction of the corpus.
    ///
    /// # Panics
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn with_guardrail(mut self, max_fraction_of_corpus: f64) -> Self {
        assert!(
            max_fraction_of_corpus > 0.0 && max_fraction_of_corpus <= 1.0,
            "guardrail fraction must be in (0, 1]"
        );
        self.max_fraction_of_corpus = max_fraction_of_corpus;
        self
    }

    /// Number of videos already processed eagerly.
    pub fn processed_videos(&self) -> usize {
        self.processed_videos
    }

    /// Plans the next round of eager extraction.
    ///
    /// * `unprocessed_videos` — videos that still lack features for the
    ///   surviving candidate extractors.
    /// * `corpus_size` — total number of videos (for the guardrail).
    /// * `candidate_features` — candidate extractors still alive (`k`).
    /// * `per_video_secs` — estimated extraction cost per (video, feature).
    /// * `queue_has_foreground_work` — `VE-full` only schedules eager tasks
    ///   when the task queue is otherwise empty.
    pub fn plan(
        &mut self,
        unprocessed_videos: usize,
        corpus_size: usize,
        candidate_features: usize,
        per_video_secs: f64,
        queue_has_foreground_work: bool,
    ) -> EagerExtractionPlan {
        if queue_has_foreground_work || candidate_features == 0 {
            return EagerExtractionPlan {
                videos: 0,
                tasks: 0,
                estimated_secs: 0.0,
                stopped_by_guardrail: false,
            };
        }
        let cap = guardrail_cap(corpus_size, self.max_fraction_of_corpus);
        if self.processed_videos >= cap {
            return EagerExtractionPlan {
                videos: 0,
                tasks: 0,
                estimated_secs: 0.0,
                stopped_by_guardrail: true,
            };
        }
        let remaining_budget = cap - self.processed_videos;
        let videos = self
            .batch_videos
            .min(unprocessed_videos)
            .min(remaining_budget);
        self.processed_videos += videos;
        let tasks = videos * candidate_features;
        EagerExtractionPlan {
            videos,
            tasks,
            estimated_secs: tasks as f64 * per_video_secs,
            stopped_by_guardrail: false,
        }
    }
}

/// The guardrail's video budget for a corpus.
///
/// A plain `(corpus * fraction).floor()` is wrong in two ways: binary
/// floating-point error can land just *below* the exact product (e.g.
/// `0.29 * 100 = 28.999999999999996`, flooring to 28 instead of 29), and at
/// small corpora the floor can reach 0, silently disabling eager extraction
/// even though the guardrail is enabled. The cap therefore floors with an
/// epsilon and admits at least one video for any non-empty corpus.
fn guardrail_cap(corpus_size: usize, fraction: f64) -> usize {
    let cap = (corpus_size as f64 * fraction + 1e-9).floor() as usize;
    cap.clamp(usize::from(corpus_size > 0), corpus_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_batch_of_ten_videos_per_round() {
        let mut p = EagerPlanner::new();
        let plan = p.plan(1000, 1000, 5, 0.3, false);
        assert_eq!(plan.videos, 10);
        assert_eq!(plan.tasks, 50);
        assert!((plan.estimated_secs - 15.0).abs() < 1e-9);
        assert!(!plan.stopped_by_guardrail);
    }

    #[test]
    fn fewer_candidate_features_means_fewer_tasks() {
        // Once the bandit converges to one feature, the same labeling window
        // covers 5x more videos per unit of GPU time.
        let mut p5 = EagerPlanner::new();
        let mut p1 = EagerPlanner::new();
        let plan5 = p5.plan(1000, 1000, 5, 0.3, false);
        let plan1 = p1.plan(1000, 1000, 1, 0.3, false);
        assert_eq!(plan5.videos, plan1.videos);
        assert_eq!(plan1.tasks * 5, plan5.tasks);
    }

    #[test]
    fn defers_to_foreground_work() {
        let mut p = EagerPlanner::new();
        let plan = p.plan(1000, 1000, 5, 0.3, true);
        assert_eq!(plan.videos, 0);
        assert_eq!(p.processed_videos(), 0);
    }

    #[test]
    fn stops_when_corpus_is_exhausted() {
        let mut p = EagerPlanner::new();
        let plan = p.plan(3, 1000, 2, 0.3, false);
        assert_eq!(plan.videos, 3);
        let plan = p.plan(0, 1000, 2, 0.3, false);
        assert_eq!(plan.videos, 0);
    }

    #[test]
    fn guardrail_caps_total_processed_videos() {
        let mut p = EagerPlanner::new().with_guardrail(0.02); // 2% of 1000 = 20 videos
        let mut total = 0;
        let mut stopped = false;
        for _ in 0..10 {
            let plan = p.plan(1000, 1000, 1, 0.3, false);
            total += plan.videos;
            if plan.stopped_by_guardrail {
                stopped = true;
                break;
            }
        }
        assert_eq!(total, 20);
        assert!(stopped);
        assert_eq!(p.processed_videos(), 20);
    }

    #[test]
    fn zero_candidates_schedules_nothing() {
        let mut p = EagerPlanner::new();
        let plan = p.plan(100, 100, 0, 0.3, false);
        assert_eq!(plan.tasks, 0);
    }

    #[test]
    #[should_panic(expected = "guardrail fraction")]
    fn rejects_invalid_guardrail() {
        EagerPlanner::new().with_guardrail(0.0);
    }

    #[test]
    fn guardrail_cap_is_exact_despite_binary_rounding() {
        // 0.29 is not representable in binary: 0.29 * 100 evaluates to
        // 28.999999999999996, which a plain floor truncates to 28. The exact
        // answer is 29 — regression for the off-by-one.
        assert_eq!(guardrail_cap(100, 0.29), 29);
        assert_eq!(guardrail_cap(1000, 0.02), 20);
        assert_eq!(guardrail_cap(100, 1.0), 100);
        // Fractions that do not land on an integer still floor.
        assert_eq!(guardrail_cap(100, 0.295), 29);
        assert_eq!(guardrail_cap(10, 0.29), 2);
    }

    #[test]
    fn guardrail_admits_at_least_one_video_on_tiny_corpora() {
        // corpus 3 at 10%: exact product is 0.3 — a bare floor would cap at
        // 0 and silently disable eager extraction for the whole session.
        assert_eq!(guardrail_cap(3, 0.1), 1);
        assert_eq!(guardrail_cap(1, 0.5), 1);
        // ... but an empty corpus admits nothing.
        assert_eq!(guardrail_cap(0, 0.5), 0);
        let mut p = EagerPlanner::new().with_guardrail(0.1);
        let plan = p.plan(3, 3, 1, 0.3, false);
        assert_eq!(plan.videos, 1, "tiny corpus still gets one eager video");
        let plan = p.plan(2, 3, 1, 0.3, false);
        assert!(plan.stopped_by_guardrail);
    }

    #[test]
    fn guardrail_cap_exact_boundary_regression() {
        // The planner must process exactly 29 videos under a 29% guardrail on
        // a 100-video corpus — not 28 (floor of the rounded-down product).
        let mut p = EagerPlanner::new().with_guardrail(0.29);
        let mut total = 0;
        for _ in 0..10 {
            let plan = p.plan(100, 100, 1, 0.3, false);
            total += plan.videos;
            if plan.stopped_by_guardrail {
                break;
            }
        }
        assert_eq!(total, 29);
    }
}
