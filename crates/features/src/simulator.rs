//! Deterministic synthetic embedding generation.
//!
//! For a given dataset the simulator fixes, per extractor, a set of class
//! centroids over the informative dimensions. The embedding of a video
//! segment is the mean of the centroids of its ground-truth classes plus a
//! per-video offset and per-segment noise — all generated deterministically
//! from the segment's latent content seed, so extracting the same feature
//! twice yields bit-identical vectors (a frozen pretrained model is a pure
//! function of its input).

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use crate::extractors::{ExtractorId, ExtractorSpec};
use crate::profiles::SignalProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use ve_stats::BoxMuller;
use ve_vidsim::{DatasetName, TimeRange, VideoClip, VideoId};

/// One extracted feature vector: `(fid, vid, start, end, vector)` in the
/// paper's notation (Section 3.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    /// Which extractor produced the vector.
    pub extractor: ExtractorId,
    /// Source video.
    pub vid: VideoId,
    /// Time span of the window the vector describes.
    pub range: TimeRange,
    /// The embedding.
    pub data: Vec<f32>,
}

/// Simulated Feature Manager backend for one dataset.
#[derive(Debug, Clone)]
pub struct FeatureSimulator {
    dataset: DatasetName,
    num_classes: usize,
    dim: usize,
    seed: u64,
    /// Per extractor: per class centroid (lazily built, deterministic).
    centroids: HashMap<ExtractorId, Vec<Vec<f32>>>,
    profiles: HashMap<ExtractorId, SignalProfile>,
}

/// Default embedding dimensionality used by the simulator.
///
/// The real extractors produce 512- or 768-dimensional embeddings (Table 3);
/// the simulator defaults to 64 dimensions so that the hundreds of linear
/// probes trained during a full experiment sweep stay fast. The relative
/// behaviour (which extractor wins, how fast models improve with labels) is
/// governed by the [`SignalProfile`]s, not the raw dimensionality; use
/// [`FeatureSimulator::with_paper_dims`] to run with Table 3 dimensions.
pub const DEFAULT_SIM_DIM: usize = 64;

impl FeatureSimulator {
    /// Creates a simulator for the given dataset with [`DEFAULT_SIM_DIM`]
    /// dimensions per extractor.
    pub fn new(dataset: DatasetName, num_classes: usize, seed: u64) -> Self {
        Self::with_dim(dataset, num_classes, seed, DEFAULT_SIM_DIM)
    }

    /// Creates a simulator with a custom embedding dimensionality (applied to
    /// every extractor).
    pub fn with_dim(dataset: DatasetName, num_classes: usize, seed: u64, dim: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(dim >= 4, "dimensionality too small to be meaningful");
        let mut sim = Self {
            dataset,
            num_classes,
            dim,
            seed,
            centroids: HashMap::new(),
            profiles: HashMap::new(),
        };
        for e in ExtractorId::all() {
            sim.profiles.insert(e, SignalProfile::for_pair(dataset, e));
            sim.centroids.insert(e, sim.build_centroids(e));
        }
        sim
    }

    /// Creates a simulator that uses the Table 3 dimensionalities
    /// (512 / 768 per extractor). The largest spec dimension is used for all
    /// extractors' centroid tables; each vector is truncated to its
    /// extractor's spec dimension on extraction.
    pub fn with_paper_dims(dataset: DatasetName, num_classes: usize, seed: u64) -> Self {
        let max_dim = ExtractorId::all()
            .iter()
            .map(|e| e.spec().dim)
            .max()
            .unwrap_or(DEFAULT_SIM_DIM);
        Self::with_dim(dataset, num_classes, seed, max_dim)
    }

    /// Dataset this simulator belongs to.
    pub fn dataset(&self) -> DatasetName {
        self.dataset
    }

    /// Number of classes in the vocabulary.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Embedding dimensionality of a single extractor's vectors.
    pub fn dim(&self, extractor: ExtractorId) -> usize {
        self.dim.min(self.spec(extractor).dim.max(self.dim))
    }

    /// Dimensionality of the concatenation of all extractors ("Concat" in
    /// Figure 4).
    pub fn concat_dim(&self) -> usize {
        ExtractorId::all().iter().map(|&e| self.dim(e)).sum()
    }

    /// The Table 3 spec of an extractor.
    pub fn spec(&self, extractor: ExtractorId) -> ExtractorSpec {
        extractor.spec()
    }

    /// The signal profile used for an extractor on this dataset.
    pub fn profile(&self, extractor: ExtractorId) -> SignalProfile {
        self.profiles[&extractor]
    }

    /// Simulated GPU seconds to extract one extractor's features from a clip.
    pub fn extraction_seconds(&self, extractor: ExtractorId, clip: &VideoClip) -> f64 {
        self.spec(extractor).extraction_seconds(clip.duration)
    }

    /// Extracts the feature vector for a specific window of a clip.
    ///
    /// The window is snapped to the ground-truth segment containing its
    /// midpoint, which mirrors how the real FM associates each embedding with
    /// the time span of its input frames.
    pub fn extract(
        &self,
        extractor: ExtractorId,
        clip: &VideoClip,
        range: &TimeRange,
    ) -> FeatureVector {
        let mid = range.midpoint().min(clip.duration - 1e-9).max(0.0);
        let segment = clip
            .segment_at(mid)
            .unwrap_or_else(|| &clip.segments[clip.segments.len() - 1]);
        let data = self.embed(extractor, clip.id, segment.latent_seed, &segment.classes);
        FeatureVector {
            extractor,
            vid: clip.id,
            range: *range,
            data,
        }
    }

    /// Extracts one feature vector per ground-truth-aligned window of the
    /// clip (the FM's behaviour when asked to process a whole video).
    pub fn extract_clip(&self, extractor: ExtractorId, clip: &VideoClip) -> Vec<FeatureVector> {
        clip.segments
            .iter()
            .map(|seg| FeatureVector {
                extractor,
                vid: clip.id,
                range: seg.range,
                data: self.embed(extractor, clip.id, seg.latent_seed, &seg.classes),
            })
            .collect()
    }

    /// Extracts the concatenation of all extractors for a window ("Concat").
    pub fn extract_concat(&self, clip: &VideoClip, range: &TimeRange) -> FeatureVector {
        let mut data = Vec::with_capacity(self.concat_dim());
        for e in ExtractorId::all() {
            data.extend(self.extract(e, clip, range).data);
        }
        FeatureVector {
            extractor: ExtractorId::Mvit, // placeholder id; concat is not a Table 3 row
            vid: clip.id,
            range: *range,
            data,
        }
    }

    fn build_centroids(&self, extractor: ExtractorId) -> Vec<Vec<f32>> {
        let profile = SignalProfile::for_pair(self.dataset, extractor);
        let informative = ((self.dim as f64 * profile.informative_frac).round() as usize).max(1);
        let mut centroids = Vec::with_capacity(self.num_classes);
        for class in 0..self.num_classes {
            let seed = mix(self.seed, extractor.index() as u64, class as u64 + 1);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut bm = BoxMuller::new();
            let mut c = vec![0.0f32; self.dim];
            for v in c.iter_mut().take(informative) {
                *v = bm.sample_with(&mut rng, 0.0, profile.class_separation) as f32;
            }
            centroids.push(c);
        }
        // Calibrate the realized geometry: with few classes the *sampled*
        // mean pairwise centroid distance can deviate substantially from the
        // separation the profile asked for (random draw luck), which scrambles
        // the Figure 4 orderings the profiles are supposed to encode. Rescale
        // the centroid cloud so its mean pairwise squared distance equals the
        // expectation `2 · informative · separation²` exactly.
        if centroids.len() >= 2 {
            let mut total = 0.0f64;
            let mut pairs = 0usize;
            for i in 0..centroids.len() {
                for j in (i + 1)..centroids.len() {
                    total += centroids[i]
                        .iter()
                        .zip(&centroids[j])
                        .map(|(a, b)| {
                            let d = (a - b) as f64;
                            d * d
                        })
                        .sum::<f64>();
                    pairs += 1;
                }
            }
            let realized = total / pairs as f64;
            let expected =
                2.0 * informative as f64 * profile.class_separation * profile.class_separation;
            if realized > 1e-12 {
                let scale = (expected / realized).sqrt() as f32;
                for c in &mut centroids {
                    for v in c.iter_mut() {
                        *v *= scale;
                    }
                }
            }
        }
        centroids
    }

    /// Generates the embedding for a segment with the given latent seed and
    /// ground-truth classes.
    fn embed(
        &self,
        extractor: ExtractorId,
        vid: VideoId,
        latent_seed: u64,
        classes: &[usize],
    ) -> Vec<f32> {
        let profile = self.profiles[&extractor];
        let centroids = &self.centroids[&extractor];
        let informative = ((self.dim as f64 * profile.informative_frac).round() as usize).max(1);

        let mut data = vec![0.0f32; self.dim];
        // Mean of the present classes' centroids.
        if !classes.is_empty() {
            for &c in classes {
                if c < centroids.len() {
                    for (d, v) in data.iter_mut().zip(&centroids[c]) {
                        *d += v;
                    }
                }
            }
            let inv = 1.0 / classes.len() as f32;
            for d in &mut data {
                *d *= inv;
            }
        }
        // Per-video offset on informative dims (correlates segments of the
        // same video).
        let mut vid_rng = StdRng::seed_from_u64(mix(self.seed, extractor.index() as u64, vid.0));
        let mut bm_vid = BoxMuller::new();
        for d in data.iter_mut().take(informative) {
            *d += bm_vid.sample_with(&mut vid_rng, 0.0, profile.per_video_jitter) as f32;
        }
        // Per-segment noise on all dims.
        let mut seg_rng = StdRng::seed_from_u64(mix(latent_seed, extractor.index() as u64, 0x5eed));
        let mut bm_seg = BoxMuller::new();
        for d in data.iter_mut() {
            *d += bm_seg.sample_with(&mut seg_rng, 0.0, profile.noise_std) as f32;
        }
        data
    }
}

fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_ml::{cross_validate, CrossValConfig};
    use ve_vidsim::{Dataset, GroundTruthOracle, Oracle, TaskKind};

    fn deer() -> Dataset {
        Dataset::scaled(DatasetName::Deer, 0.15, 3)
    }

    #[test]
    fn extraction_is_deterministic() {
        let ds = deer();
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 42);
        let clip = &ds.train.videos()[0];
        let r = TimeRange::new(0.0, 1.0);
        let a = sim.extract(ExtractorId::R3d, clip, &r);
        let b = sim.extract(ExtractorId::R3d, clip, &r);
        assert_eq!(a, b);
    }

    #[test]
    fn different_extractors_give_different_vectors() {
        let ds = deer();
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 42);
        let clip = &ds.train.videos()[0];
        let r = TimeRange::new(0.0, 1.0);
        let a = sim.extract(ExtractorId::R3d, clip, &r);
        let b = sim.extract(ExtractorId::Clip, clip, &r);
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn extract_clip_yields_one_vector_per_segment() {
        let ds = deer();
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 42);
        let clip = &ds.train.videos()[0];
        let fvs = sim.extract_clip(ExtractorId::Mvit, clip);
        assert_eq!(fvs.len(), clip.segments.len());
        assert!(fvs
            .iter()
            .all(|f| f.data.len() == sim.dim(ExtractorId::Mvit)));
    }

    #[test]
    fn concat_dimension_is_sum_of_extractor_dims() {
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 42);
        let ds = deer();
        let clip = &ds.train.videos()[0];
        let cat = sim.extract_concat(clip, &TimeRange::new(0.0, 1.0));
        assert_eq!(cat.data.len(), sim.concat_dim());
    }

    #[test]
    fn informative_extractor_beats_random_feature_on_cv() {
        // Train linear probes on oracle-labeled windows and check the
        // cross-validated macro F1 ordering matches the profile ordering —
        // this is the property every downstream experiment relies on.
        let ds = deer();
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 7);
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);

        let mut labels = Vec::new();
        let mut feats_r3d = Vec::new();
        let mut feats_random = Vec::new();
        let mut feats_clip = Vec::new();
        for clip in ds.train.videos().iter().take(120) {
            let r = TimeRange::new(0.0, 1.0);
            let label = oracle.label(&ds.train, clip.id, &r);
            if label.is_empty() {
                continue;
            }
            labels.push(label[0]);
            feats_r3d.push(sim.extract(ExtractorId::R3d, clip, &r).data);
            feats_random.push(sim.extract(ExtractorId::Random, clip, &r).data);
            feats_clip.push(sim.extract(ExtractorId::Clip, clip, &r).data);
        }
        let cfg = CrossValConfig::default();
        let f1_r3d = cross_validate(&feats_r3d, &labels, 9, &cfg).unwrap();
        let f1_random = cross_validate(&feats_random, &labels, 9, &cfg).unwrap();
        let f1_clip = cross_validate(&feats_clip, &labels, 9, &cfg).unwrap();
        assert!(
            f1_r3d > f1_clip && f1_clip > f1_random,
            "expected R3D > CLIP > Random on Deer, got {f1_r3d:.3} / {f1_clip:.3} / {f1_random:.3}"
        );
        assert!(
            f1_random < 0.35,
            "random feature should be near chance: {f1_random:.3}"
        );
        // With ~120 labels on the heavily skewed Deer dataset the paper's own
        // F1 curves sit in the 0.35–0.55 band (Figure 3a); require R3D to be
        // clearly above chance here.
        assert!(
            f1_r3d > 0.4,
            "R3D should be clearly informative: {f1_r3d:.3}"
        );
    }

    #[test]
    fn extraction_cost_follows_table3() {
        let ds = deer();
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 1);
        let clip = &ds.train.videos()[0];
        let r3d = sim.extraction_seconds(ExtractorId::R3d, clip);
        let mvit = sim.extraction_seconds(ExtractorId::Mvit, clip);
        assert!(r3d < mvit, "R3D has higher throughput, so lower cost");
        assert!((r3d - 1.0 / 4.03).abs() < 1e-9);
    }

    #[test]
    fn segments_of_same_video_are_correlated() {
        let ds = deer();
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 11);
        // Compare mean pairwise distance within a video vs across videos for
        // windows with the same ground-truth class.
        let clips = ds.train.videos();
        let a = sim.extract(ExtractorId::R3d, &clips[0], &TimeRange::new(0.0, 1.0));
        let b = sim.extract(ExtractorId::R3d, &clips[0], &TimeRange::new(5.0, 6.0));
        let dist_same = dist(&a.data, &b.data);
        // Average distance to windows of other videos.
        let mut dist_other = 0.0;
        let mut n = 0;
        for clip in clips.iter().skip(1).take(20) {
            let c = sim.extract(ExtractorId::R3d, clip, &TimeRange::new(0.0, 1.0));
            dist_other += dist(&a.data, &c.data);
            n += 1;
        }
        dist_other /= n as f64;
        assert!(
            dist_same < dist_other,
            "within-video windows should be closer: {dist_same:.3} vs {dist_other:.3}"
        );
    }

    fn dist(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| ((x - y) * (x - y)) as f64)
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    #[should_panic(expected = "dimensionality too small")]
    fn rejects_tiny_dimension() {
        FeatureSimulator::with_dim(DatasetName::Deer, 9, 0, 2);
    }
}
