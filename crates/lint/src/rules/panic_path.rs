//! `panic-in-task-path`: panics reachable from closures submitted to
//! `ve_sched::Executor`.
//!
//! **Contract.** Executor tasks run on worker threads behind
//! `catch_unwind`; a panic there marks the task failed and (PR 2) keeps the
//! counters consistent — but the *work is silently lost* and, for
//! `submit_with_handle`, the panic re-raises on the joining thread far from
//! its cause. Task closures must surface failure as typed errors through
//! `TaskHandle`, so every `unwrap`/`expect`/`panic!` reachable from a submit
//! site is a latent dropped-iteration bug.
//!
//! **Analysis.** Roots are the argument spans of `.submit(…)` /
//! `.submit_with_handle(…)`. The direct closure text is scanned for panic
//! markers and slice indexing; calls out of the closure are resolved through
//! a workspace-wide `fn`-name index (same-crate definitions preferred) and
//! traversed to a fixed depth. Name-based resolution overshoots homonyms, so
//! common std method names are stoplisted and slice indexing is only checked
//! in the direct closure, where there is no ambiguity about what runs.

use crate::engine::{Finding, RULE_PANIC_IN_TASK_PATH};
use crate::lexer::TokenKind;
use crate::rules::{method_call, KEYWORDS};
use crate::workspace::{SourceFile, WorkspaceModel};
use std::collections::{BTreeMap, BTreeSet};

/// Traversal depth cap: submit-site closure = depth 0.
const MAX_DEPTH: usize = 16;

/// Method/function names never resolved through the index: overwhelmingly
/// std inherent/trait methods whose workspace homonyms (if any) would make
/// the taint wildly imprecise.
const STOPLIST: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_sub",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "concat",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "drop",
    "entry",
    "enumerate",
    "eq",
    "err",
    "exp",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "from",
    "from_bits",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "or_insert",
    "or_insert_with",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "recv",
    "remove",
    "repeat",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "send",
    "signum",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "sqrt",
    "starts_with",
    "sum",
    "swap",
    "take",
    "to_bits",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// Panic-marker macros (`name!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `Qualifier::method(…)` calls whose qualifier is a std type are std
/// constructors/associated fns (`Arc::new`, `Vec::with_capacity`), not
/// workspace functions — resolving them by bare name would alias them onto
/// unrelated workspace `fn new`s.
const STD_QUALIFIERS: &[&str] = &[
    "Arc",
    "AtomicBool",
    "AtomicU64",
    "AtomicUsize",
    "BTreeMap",
    "BTreeSet",
    "Box",
    "Cell",
    "Condvar",
    "Cow",
    "Duration",
    "HashMap",
    "HashSet",
    "Instant",
    "Mutex",
    "Option",
    "Ordering",
    "Path",
    "PathBuf",
    "Rc",
    "RefCell",
    "Result",
    "RwLock",
    "String",
    "SystemTime",
    "Vec",
    "VecDeque",
    "char",
    "f32",
    "f64",
    "i32",
    "i64",
    "str",
    "thread",
    "u32",
    "u64",
    "usize",
];

/// One `fn` definition: where its body lives.
struct FnDef {
    file: usize,
    /// Code-index span of the body, `{` ..= `}` inclusive.
    body: (usize, usize),
}

/// A marker occurrence to report.
struct Marker {
    file: usize,
    line: u32,
    col: u32,
    what: String,
}

pub fn check(ws: &WorkspaceModel) -> Vec<Finding> {
    let index = build_fn_index(ws);
    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, u32, u32)> = BTreeSet::new();

    for (fi, file) in ws.files.iter().enumerate() {
        for ci in 0..file.code.len() {
            let submit = ["submit", "submit_with_handle"]
                .iter()
                .find_map(|m| method_call(file, ci, m).map(|open| (*m, open)));
            let Some((method, open)) = submit else {
                continue;
            };
            let root_tok = file.ct(ci + 1).expect("pattern matched");
            if file.is_test_line(root_tok.line) {
                continue;
            }
            let close = file.matching_close(open);
            let root = format!("{}:{}", file.rel_path, root_tok.line);

            // Walk the call graph out of the submit-argument span.
            let mut markers: Vec<Marker> = Vec::new();
            let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
            let mut frontier: Vec<(usize, (usize, usize), Vec<String>)> =
                vec![(fi, (open, close), Vec::new())];
            let mut depth = 0usize;
            while !frontier.is_empty() && depth <= MAX_DEPTH {
                let mut next = Vec::new();
                for (sfi, span, chain) in frontier {
                    let sf = &ws.files[sfi];
                    let mut callees = BTreeSet::new();
                    scan_span(
                        sf,
                        sfi,
                        span,
                        depth == 0,
                        &chain,
                        &mut markers,
                        &mut callees,
                    );
                    for callee in callees {
                        let defs = resolve(&index, ws, &callee, &sf.crate_name);
                        for def in defs {
                            if visited.insert((def.file, def.body.0)) {
                                let mut chain = chain.clone();
                                chain.push(callee.clone());
                                next.push((def.file, def.body, chain));
                            }
                        }
                    }
                }
                frontier = next;
                depth += 1;
            }

            for m in markers {
                let mf = &ws.files[m.file];
                if !reported.insert((mf.rel_path.clone(), m.line, m.col)) {
                    continue;
                }
                out.push(Finding::new(
                    RULE_PANIC_IN_TASK_PATH,
                    mf,
                    m.line,
                    m.col,
                    format!(
                        "{} reachable from executor `.{method}(…)` at {root}: task \
                         closures run behind `catch_unwind` — a panic here silently drops \
                         the task's work; surface failure as a typed error through \
                         `TaskHandle` instead",
                        m.what,
                    ),
                ));
            }
        }
    }
    out
}

/// Scans one code-index span for panic markers and callees.
fn scan_span(
    file: &SourceFile,
    fi: usize,
    span: (usize, usize),
    direct: bool,
    chain: &[String],
    markers: &mut Vec<Marker>,
    callees: &mut BTreeSet<String>,
) {
    let via = if chain.is_empty() {
        String::new()
    } else {
        format!(" (via `{}`)", chain.join("` → `"))
    };
    for ci in span.0..=span.1.min(file.code.len().saturating_sub(1)) {
        let Some(tok) = file.ct(ci) else { break };
        if file.is_test_line(tok.line) {
            continue;
        }
        // `.unwrap(` / `.expect(`.
        for m in ["unwrap", "expect"] {
            if method_call(file, ci, m).is_some() {
                let t = file.ct(ci + 1).expect("matched");
                markers.push(Marker {
                    file: fi,
                    line: t.line,
                    col: t.col,
                    what: format!("`.{m}()`{via}"),
                });
            }
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
        if tok.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&tok.text.as_str())
            && file.ct(ci + 1).is_some_and(|t| t.is_punct('!'))
        {
            markers.push(Marker {
                file: fi,
                line: tok.line,
                col: tok.col,
                what: format!("`{}!`{via}", tok.text),
            });
        }
        // Slice indexing `expr[i]` — only in the direct closure, where
        // name-resolution ambiguity cannot have routed us somewhere wrong.
        if direct && tok.is_punct('[') {
            let prev = ci.checked_sub(1).and_then(|p| file.ct(p));
            let is_index = prev.is_some_and(|p| {
                (p.kind == TokenKind::Ident && !KEYWORDS.contains(&p.text.as_str()))
                    || p.is_punct(')')
                    || p.is_punct(']')
            });
            if is_index {
                markers.push(Marker {
                    file: fi,
                    line: tok.line,
                    col: tok.col,
                    what: "slice indexing (panics out of bounds)".to_string(),
                });
            }
        }
        // Callees: `name(` that is not a keyword, macro, or definition.
        if tok.kind == TokenKind::Ident
            && file.ct(ci + 1).is_some_and(|t| t.is_punct('('))
            && !KEYWORDS.contains(&tok.text.as_str())
            && !STOPLIST.contains(&tok.text.as_str())
            && !["unwrap", "expect"].contains(&tok.text.as_str())
        {
            // Not a definition site (`fn name(`), and not a std associated
            // fn (`Arc::new(`).
            let is_def = ci
                .checked_sub(1)
                .and_then(|p| file.ct(p))
                .is_some_and(|p| p.is_ident("fn"));
            let std_qualified = ci >= 3
                && file.ct(ci - 1).is_some_and(|t| t.is_punct(':'))
                && file.ct(ci - 2).is_some_and(|t| t.is_punct(':'))
                && file
                    .ct(ci - 3)
                    .is_some_and(|t| STD_QUALIFIERS.contains(&t.text.as_str()));
            if !is_def && !std_qualified {
                callees.insert(tok.text.clone());
            }
        }
    }
}

/// Workspace-wide `fn` index: name → definitions.
fn build_fn_index(ws: &WorkspaceModel) -> BTreeMap<String, Vec<FnDef>> {
    let mut index: BTreeMap<String, Vec<FnDef>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let mut ci = 0usize;
        while ci + 1 < file.code.len() {
            if !file.ct(ci).is_some_and(|t| t.is_ident("fn")) {
                ci += 1;
                continue;
            }
            let Some(name_tok) = file.ct(ci + 1) else {
                break;
            };
            if name_tok.kind != TokenKind::Ident {
                ci += 1;
                continue;
            }
            // Body = first `{` after the signature (`;` means no body).
            let mut j = ci + 2;
            let mut body = None;
            while let Some(t) = file.ct(j) {
                if t.is_punct(';') {
                    break;
                }
                if t.is_punct('{') {
                    body = Some((j, file.matching_close(j)));
                    break;
                }
                j += 1;
            }
            if let Some(body) = body {
                index
                    .entry(name_tok.text.clone())
                    .or_default()
                    .push(FnDef { file: fi, body });
                ci = body.0 + 1; // Nested fns inside the body still get found.
            } else {
                ci = j + 1;
            }
        }
    }
    index
}

/// Resolves a callee name: definitions in the caller's crate if any exist,
/// otherwise every definition in the workspace.
fn resolve<'i>(
    index: &'i BTreeMap<String, Vec<FnDef>>,
    ws: &WorkspaceModel,
    name: &str,
    caller_crate: &str,
) -> Vec<&'i FnDef> {
    let Some(defs) = index.get(name) else {
        return Vec::new();
    };
    let same_crate: Vec<&FnDef> = defs
        .iter()
        .filter(|d| ws.files[d.file].crate_name == caller_crate)
        .collect();
    if same_crate.is_empty() {
        defs.iter().collect()
    } else {
        same_crate
    }
}
