//! `ve-features` — the Feature Manager substrate: simulated pretrained
//! feature extractors.
//!
//! The paper's Feature Manager runs GPU inference with five candidate
//! pretrained models (Table 3) — R3D, MViT, CLIP, CLIP (Pooled), and a
//! random-weight transformer — and hands the resulting per-window embedding
//! vectors to the Active Learning Manager and Model Manager. Neither the
//! pretrained weights nor a GPU are available here, so this crate simulates
//! the extractors:
//!
//! * each `(dataset, extractor)` pair has a [`SignalProfile`] (class-centroid
//!   separation, noise level, fraction of informative dimensions) calibrated
//!   so the *relative ordering* of extractors per dataset matches Figure 4
//!   (R3D/MViT best on Deer, MViT best on K20 (skew)/Charades, CLIP variants
//!   best on BDD, the Random feature always uninformative);
//! * embeddings are deterministic functions of the segment's latent content
//!   seed, so repeated extraction returns identical vectors — exactly like
//!   running a frozen pretrained model twice; and
//! * extraction *cost* follows Table 3's measured throughputs, which is what
//!   the Task Scheduler experiments (Figures 2 and 8) depend on.

pub mod extractors;
pub mod profiles;
pub mod simulator;

pub use extractors::{ExtractorId, ExtractorSpec, InputType, EXTRACTOR_COUNT};
pub use profiles::SignalProfile;
pub use simulator::{FeatureSimulator, FeatureVector};
