//! CLI for the `ve-report` perf-regression gate. Exit status 0 = all
//! contract rules hold; 1 = at least one violated (the report names the
//! metric); 2 = usage/environment error (unreadable contract, malformed
//! artifact).

use std::path::PathBuf;
use std::process::ExitCode;

use ve_report::{load_artifacts, parse_contract, Sentinel};

const USAGE: &str = "\
ve-report: perf-regression sentinel over BENCH_*.json artifacts

USAGE:
    ve-report [--check] [--fresh-dir PATH] [--baseline-dir PATH]
              [--contract PATH] [--json]

OPTIONS:
    --check              evaluate the contract (default action)
    --fresh-dir PATH     directory with the just-run bench artifacts
                         (default: current directory)
    --baseline-dir PATH  directory with the committed baseline artifacts
                         (default: same as --fresh-dir, i.e. self-check)
    --contract PATH      contract file (default: <fresh-dir>/BENCH_contract.json)
    --json               machine-readable report on stdout
    --help               this text
";

fn main() -> ExitCode {
    let mut fresh_dir = PathBuf::from(".");
    let mut baseline_dir: Option<PathBuf> = None;
    let mut contract_path: Option<PathBuf> = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--json" => json = true,
            "--fresh-dir" => match args.next() {
                Some(p) => fresh_dir = PathBuf::from(p),
                None => return usage_error("--fresh-dir needs a path"),
            },
            "--baseline-dir" => match args.next() {
                Some(p) => baseline_dir = Some(PathBuf::from(p)),
                None => return usage_error("--baseline-dir needs a path"),
            },
            "--contract" => match args.next() {
                Some(p) => contract_path = Some(PathBuf::from(p)),
                None => return usage_error("--contract needs a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let baseline_dir = baseline_dir.unwrap_or_else(|| fresh_dir.clone());
    let contract_path = contract_path.unwrap_or_else(|| fresh_dir.join("BENCH_contract.json"));

    let contract_text = match std::fs::read_to_string(&contract_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ve-report: cannot read {}: {e}", contract_path.display());
            return ExitCode::from(2);
        }
    };
    let contract = match parse_contract(&contract_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ve-report: {}: {e}", contract_path.display());
            return ExitCode::from(2);
        }
    };

    let fresh = match load_artifacts(&fresh_dir, &contract) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ve-report: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = if baseline_dir == fresh_dir {
        fresh.clone()
    } else {
        match load_artifacts(&baseline_dir, &contract) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("ve-report: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let report = Sentinel::new().check(&contract, &fresh, &baseline);
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("ve-report: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
