//! Machine-readable scheduler-latency benchmark: writes `BENCH_latency.json`.
//!
//! Runs one measured labeling session per scheduling strategy on the async
//! session engine (real `ve_sched::Executor` threads, scaled wall-clock task
//! costs) and records the *measured* median visible latency per iteration
//! next to the analytic model's prediction — the paper's Figure 6 with real
//! concurrency instead of a formula:
//!
//! ```text
//! cargo run --release -p ve-bench --bin bench_latency [-- --quick]
//! ```
//!
//! `--quick` runs fewer iterations on a smaller corpus with a shorter think
//! time (CI keeps the JSON fresh with it); the default setting runs the
//! paper-shaped session (`B = 5`, `T_user = 10 s`, bandit feature selection).
//! The binary asserts the Figure 6 ordering (Serial > VE-partial > VE-full)
//! on the measured medians before writing the artifact.

use ve_bench::emit::{Artifact, Value};
use vocalexplore::prelude::*;

struct StrategyRow {
    name: &'static str,
    measured_median_visible_secs: f64,
    modeled_median_visible_secs: f64,
    total_measured_visible_secs: f64,
    total_spill_wall_secs: f64,
    tasks_submitted: u64,
    tasks_failed: u64,
    /// Paper-notation per-phase wall totals from the `ve-obs` timing plane:
    /// selection (`T_s`), feature extraction (`T_f`), model training
    /// (`T_m`), and inference (`T_i`) seconds. Serial runs extraction and
    /// training inline, so its `T_f`/`T_m` task groups are legitimately
    /// empty (zero).
    phase_secs: [f64; 4],
}

/// Sums the timing plane into `[T_s, T_f, T_m, T_i]` seconds: the `select`
/// session phase plus the run time of the `eager`, `train`, and `infer`
/// executor task groups.
fn phase_breakdown(outcome: &AsyncSessionOutcome) -> [f64; 4] {
    let t_s: u64 = outcome
        .phases
        .iter()
        .filter(|p| p.phase == "select")
        .map(|p| p.dur_us)
        .sum();
    let task_total = |kind: &str| -> u64 {
        outcome
            .timings
            .iter()
            .filter(|t| t.label.kind == kind)
            .map(|t| t.run_us())
            .sum()
    };
    [
        t_s as f64 / 1e6,
        task_total("eager") as f64 / 1e6,
        task_total("train") as f64 / 1e6,
        task_total("infer") as f64 / 1e6,
    ]
}

fn run_strategy(strategy: SchedulerStrategy, quick: bool) -> StrategyRow {
    // The coarser quick-mode time scale widens the wall-clock gap between
    // strategies so the ordering assertion stays robust on loaded CI runners
    // (the real, unscaled in-process compute does not shrink with the scale).
    let (scale, iterations, time_scale) = if quick {
        (0.08, 6, 2e-2)
    } else {
        (0.15, 12, 1e-2)
    };
    let mut cfg = SessionConfig::new(DatasetName::Deer, scale, 42)
        .with_iterations(iterations)
        .with_eval_every(10_000); // latency benchmark: skip per-iteration F1
    cfg.system = cfg
        .system
        .with_strategy(strategy)
        .with_time_scale(time_scale);
    if quick {
        // Smaller session: fixed feature (no bandit CV), short think time.
        cfg.system = cfg
            .system
            .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
            .with_extra_candidates(5);
        cfg.system.t_user = 4.0;
        cfg.system.train.epochs = 40;
    }
    let outcome = AsyncSessionRunner::new(cfg).run();
    eprintln!(
        "{:<12} measured median {:>7.2}s  modeled {:>7.2}s  ({} tasks, {} failed, spill {:.2}s wall)",
        strategy.to_string(),
        outcome.median_measured_visible(),
        outcome.median_modeled_visible(),
        outcome.executor.submitted,
        outcome.executor.failed,
        outcome.total_spill_wall(),
    );
    assert_eq!(outcome.executor.pending(), 0, "executor failed to drain");
    StrategyRow {
        name: match strategy {
            SchedulerStrategy::Serial => "serial",
            SchedulerStrategy::VePartial => "ve_partial",
            SchedulerStrategy::VeFull => "ve_full",
            SchedulerStrategy::VeFullSpeculative => "ve_full_speculative",
        },
        measured_median_visible_secs: outcome.median_measured_visible(),
        modeled_median_visible_secs: outcome.median_modeled_visible(),
        total_measured_visible_secs: outcome.total_measured_visible(),
        total_spill_wall_secs: outcome.total_spill_wall(),
        tasks_submitted: outcome.executor.submitted,
        tasks_failed: outcome.executor.failed,
        phase_secs: phase_breakdown(&outcome),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows: Vec<StrategyRow> = SchedulerStrategy::all()
        .into_iter()
        .map(|s| run_strategy(s, quick))
        .collect();

    // Figure 6 must hold on the measured numbers before the artifact is
    // worth committing.
    assert!(
        rows[0].measured_median_visible_secs > rows[1].measured_median_visible_secs
            && rows[1].measured_median_visible_secs > rows[2].measured_median_visible_secs,
        "measured ordering Serial > VE-partial > VE-full violated: {:.2} / {:.2} / {:.2}",
        rows[0].measured_median_visible_secs,
        rows[1].measured_median_visible_secs,
        rows[2].measured_median_visible_secs,
    );

    let strategies = Value::obj(rows.iter().map(|r| {
        (
            r.name,
            Value::obj([
                (
                    "measured_median_visible_secs",
                    Value::f64(r.measured_median_visible_secs, 3),
                ),
                (
                    "modeled_median_visible_secs",
                    Value::f64(r.modeled_median_visible_secs, 3),
                ),
                (
                    "total_measured_visible_secs",
                    Value::f64(r.total_measured_visible_secs, 3),
                ),
                (
                    "total_spill_wall_secs",
                    Value::f64(r.total_spill_wall_secs, 3),
                ),
                ("tasks_submitted", Value::u64(r.tasks_submitted)),
                ("tasks_failed", Value::u64(r.tasks_failed)),
                (
                    "phases",
                    Value::obj([
                        ("t_s_secs", Value::f64(r.phase_secs[0], 3)),
                        ("t_f_secs", Value::f64(r.phase_secs[1], 3)),
                        ("t_m_secs", Value::f64(r.phase_secs[2], 3)),
                        ("t_i_secs", Value::f64(r.phase_secs[3], 3)),
                    ]),
                ),
            ]),
        )
    }));
    Artifact::new("vocalexplore/bench_latency/v2", quick)
        .field("strategies", strategies)
        .write("BENCH_latency.json");
}
