//! Hyperparameter sensitivity of the rising-bandit feature selection
//! (Section 5.3, final paragraph).
//!
//! Sweeps the EWMA span `w ∈ {3, 5, 7}`, the slope window `C ∈ {5, 7}`, and
//! the horizon `T ∈ {20, 50}` on two representative datasets (Deer: easy,
//! BDD: hard) and reports feature-selection correctness per setting.
//! Expected shape: correctness stays high across the whole grid for Deer
//! (the paper reports ≥ 95 % for all datasets except BDD), while BDD stays
//! mediocre regardless of the hyperparameters (0.68–0.88 in the paper).
//!
//! ```text
//! cargo run --release -p ve-bench --bin sensitivity [-- --full]
//! ```

use ve_bench::{correct_extractors, print_header, print_row, Profile};
use vocalexplore::prelude::*;
use vocalexplore::FeatureSelectionPolicy;

fn main() {
    let profile = Profile::from_args();
    let trials: u64 = if std::env::args().any(|a| a == "--full") {
        12
    } else {
        6
    };
    println!(
        "Rising-bandit hyperparameter sensitivity ({} trials per cell)\n",
        trials
    );

    let datasets = [DatasetName::Deer, DatasetName::Bdd];
    let widths = [8, 4, 4, 12, 12];
    print_header(&["w", "C", "T", "Deer", "BDD"], &widths);

    for w in [3usize, 5, 7] {
        for c in [5usize, 7] {
            for t in [20usize, 50] {
                let mut cells = vec![w.to_string(), c.to_string(), t.to_string()];
                for dataset in datasets {
                    let correct_set = correct_extractors(dataset);
                    let mut correct = 0usize;
                    for trial in 0..trials {
                        let mut cfg = profile.session(dataset, trial * 977 + 13);
                        cfg.system =
                            cfg.system
                                .with_feature_selection(FeatureSelectionPolicy::Bandit(
                                    RisingBanditConfig {
                                        horizon: t,
                                        slope_window: c,
                                        smoothing_span: w,
                                        ..RisingBanditConfig::default()
                                    },
                                ));
                        let outcome = ve_bench::run_session(cfg);
                        if correct_set.contains(&outcome.final_extractor) {
                            correct += 1;
                        }
                    }
                    cells.push(format!("{:.2}", correct as f64 / trials as f64));
                }
                print_row(&cells, &widths);
            }
        }
    }
    println!(
        "\nExpected shape: Deer correctness is high and flat across the grid; BDD stays\n\
         mediocre for every setting (its candidate features are too close early on)."
    );
}
