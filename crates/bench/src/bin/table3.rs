//! Table 3 — candidate feature extractors.
//!
//! Prints each extractor's input type, architecture, pretraining corpus,
//! embedding dimensionality, and throughput (10-second videos per second),
//! plus the derived per-clip extraction latency the Task Scheduler's cost
//! model uses.
//!
//! ```text
//! cargo run --release -p ve-bench --bin table3
//! ```

use ve_bench::{print_header, print_row};
use ve_features::{ExtractorId, InputType};

fn main() {
    println!("Table 3: Features used by VOCALExplore\n");
    let widths = [14, 6, 12, 16, 5, 6, 16];
    print_header(
        &[
            "Feature",
            "Type",
            "Architecture",
            "Pretrained",
            "Dim",
            "Tput.",
            "Secs / 10 s clip",
        ],
        &widths,
    );
    for e in ExtractorId::all() {
        let spec = e.spec();
        print_row(
            &[
                e.to_string(),
                match spec.input {
                    InputType::Video => "Video",
                    InputType::Image => "Image",
                }
                .to_string(),
                spec.architecture.to_string(),
                spec.pretrained.unwrap_or("None").to_string(),
                spec.dim.to_string(),
                format!("{:.2}", spec.throughput_videos_per_sec),
                format!("{:.3}", spec.extraction_seconds(10.0)),
            ],
            &widths,
        );
    }
    println!(
        "\nThroughput is the number of 10-second videos processed per second while running two\n\
         extraction tasks on the GPU (paper measurement); the last column is the per-clip cost\n\
         the simulated Task Scheduler charges for one T_f task."
    );
}
