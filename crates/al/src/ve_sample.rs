//! The `VE-sample` acquisition-function selection policy (Section 3.1.2).
//!
//! `VE-sample` casts acquisition-function selection as a binary decision
//! between cheap Random sampling and a more expensive active-learning
//! function. It starts with Random (no preprocessing, good on uniform data),
//! watches the per-class label counts after every batch, and switches — once
//! and permanently — to the configured active-learning function when the
//! observed distribution is sufficiently skewed. The skew test is the
//! k-sample Anderson–Darling test with `p <= 0.001` by default, or the
//! Appendix-A frequency test (`Freq.` in Figure 3).

use ve_stats::{SkewDetector, SkewTest};

/// Which acquisition function the policy has currently selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquisitionKind {
    /// Uniform random sampling over unlabeled candidates.
    Random,
    /// Greedy k-center Coreset sampling.
    Coreset,
    /// Cluster-Margin sampling (the prototype's default AL function).
    ClusterMargin,
    /// Rare-class uncertainty sampling (only used for `Explore(label=a)`).
    Uncertainty,
}

impl std::fmt::Display for AcquisitionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AcquisitionKind::Random => "Random",
            AcquisitionKind::Coreset => "Coreset",
            AcquisitionKind::ClusterMargin => "Cluster-Margin",
            AcquisitionKind::Uncertainty => "Uncertainty",
        };
        f.write_str(s)
    }
}

/// Configuration of the `VE-sample` policy.
#[derive(Debug, Clone, Copy)]
pub struct VeSampleConfig {
    /// The active-learning function to switch to once skew is detected
    /// (`VE-sample` uses Coreset; `VE-sample (CM)` uses Cluster-Margin, which
    /// is the default because it "always performs at least as well").
    pub active_function: AcquisitionKind,
    /// The statistical test used to decide skew.
    pub skew_test: SkewTest,
    /// Minimum number of labels before the skew test is evaluated.
    pub min_labels: usize,
}

impl Default for VeSampleConfig {
    fn default() -> Self {
        Self {
            active_function: AcquisitionKind::ClusterMargin,
            skew_test: SkewTest::AndersonDarling { alpha: 0.001 },
            min_labels: 10,
        }
    }
}

impl VeSampleConfig {
    /// The `VE-sample` variant of the paper (switches to Coreset).
    pub fn coreset() -> Self {
        Self {
            active_function: AcquisitionKind::Coreset,
            ..Self::default()
        }
    }

    /// The `VE-sample (CM)` variant (switches to Cluster-Margin). This is the
    /// default.
    pub fn cluster_margin() -> Self {
        Self::default()
    }

    /// The `Freq.` variant: Cluster-Margin with the Appendix-A frequency test.
    pub fn frequency(m: f64) -> Self {
        Self {
            active_function: AcquisitionKind::ClusterMargin,
            skew_test: SkewTest::Frequency { m, alpha: 0.001 },
            ..Self::default()
        }
    }
}

/// Stateful `VE-sample` policy.
#[derive(Debug, Clone)]
pub struct VeSample {
    config: VeSampleConfig,
    detector: SkewDetector,
    switched_at: Option<usize>,
}

impl Default for VeSample {
    fn default() -> Self {
        Self::new(VeSampleConfig::default())
    }
}

impl VeSample {
    /// Creates the policy with the given configuration.
    pub fn new(config: VeSampleConfig) -> Self {
        let detector = SkewDetector::new(config.skew_test).with_min_labels(config.min_labels);
        Self {
            config,
            detector,
            switched_at: None,
        }
    }

    /// The configured active-learning function.
    pub fn config(&self) -> &VeSampleConfig {
        &self.config
    }

    /// Observes the current per-class label counts (after a labeling batch)
    /// and returns the acquisition function to use for the *next* `Explore`
    /// call.
    pub fn observe(&mut self, class_counts: &[u64]) -> AcquisitionKind {
        let total: u64 = class_counts.iter().sum::<u64>();
        if self.detector.observe(class_counts) && self.switched_at.is_none() {
            self.switched_at = Some(total as usize);
        }
        self.current()
    }

    /// The currently selected acquisition function without new evidence.
    pub fn current(&self) -> AcquisitionKind {
        if self.detector.is_latched() {
            self.config.active_function
        } else {
            AcquisitionKind::Random
        }
    }

    /// Whether the policy has switched to active learning.
    pub fn has_switched(&self) -> bool {
        self.detector.is_latched()
    }

    /// Number of labels that had been collected when the switch happened.
    pub fn switched_at(&self) -> Option<usize> {
        self.switched_at
    }

    /// The acquisition function for a label-targeted `Explore(label=a)` call:
    /// always rare-class uncertainty sampling, regardless of the skew state.
    pub fn for_target_label(&self) -> AcquisitionKind {
        AcquisitionKind::Uncertainty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_random() {
        let policy = VeSample::default();
        assert_eq!(policy.current(), AcquisitionKind::Random);
        assert!(!policy.has_switched());
    }

    #[test]
    fn stays_random_on_uniform_labels() {
        let mut policy = VeSample::default();
        for step in 1..=20u64 {
            let counts = vec![step, step, step, step];
            assert_eq!(policy.observe(&counts), AcquisitionKind::Random);
        }
        assert!(!policy.has_switched());
    }

    #[test]
    fn switches_to_cluster_margin_on_skew() {
        let mut policy = VeSample::default();
        // Deer-like growth: the first class dominates.
        let mut kind = AcquisitionKind::Random;
        for step in 1..=30u64 {
            let counts = vec![10 * step, step.max(1) / 2, 1, 0, 0, 0];
            kind = policy.observe(&counts);
        }
        assert_eq!(kind, AcquisitionKind::ClusterMargin);
        assert!(policy.has_switched());
        assert!(policy.switched_at().is_some());
    }

    #[test]
    fn coreset_variant_switches_to_coreset() {
        let mut policy = VeSample::new(VeSampleConfig::coreset());
        for step in 1..=30u64 {
            policy.observe(&[20 * step, 1, 1, 0]);
        }
        assert_eq!(policy.current(), AcquisitionKind::Coreset);
    }

    #[test]
    fn frequency_variant_is_slower_to_switch() {
        // Feed the same moderately skewed counts to both variants and verify
        // the frequency test switches no earlier than the AD test (Section
        // 5.2: "slightly more conservative and takes longer to switch").
        let counts_at = |step: u64| vec![6 * step, 2 * step, step, step.max(1) / 2];
        let mut ad = VeSample::new(VeSampleConfig::cluster_margin());
        let mut freq = VeSample::new(VeSampleConfig::frequency(1.0));
        let mut ad_step = None;
        let mut freq_step = None;
        for step in 1..=60u64 {
            if ad.observe(&counts_at(step)) != AcquisitionKind::Random && ad_step.is_none() {
                ad_step = Some(step);
            }
            if freq.observe(&counts_at(step)) != AcquisitionKind::Random && freq_step.is_none() {
                freq_step = Some(step);
            }
        }
        let ad_step = ad_step.expect("AD should eventually switch");
        // Never switching is acceptable for the conservative frequency test.
        if let Some(f) = freq_step {
            assert!(f >= ad_step, "freq switched earlier: {f} < {ad_step}");
        }
    }

    #[test]
    fn switch_is_permanent() {
        let mut policy = VeSample::default();
        for step in 1..=30u64 {
            policy.observe(&[50 * step, 1, 0, 0]);
        }
        assert!(policy.has_switched());
        // Even if subsequent counts look uniform, the policy stays latched.
        assert_eq!(
            policy.observe(&[100, 100, 100, 100]),
            AcquisitionKind::ClusterMargin
        );
    }

    #[test]
    fn no_switch_before_min_labels() {
        let mut policy = VeSample::default();
        assert_eq!(policy.observe(&[5, 0, 0, 0]), AcquisitionKind::Random);
    }

    #[test]
    fn target_label_always_uses_uncertainty() {
        let policy = VeSample::default();
        assert_eq!(policy.for_target_label(), AcquisitionKind::Uncertainty);
    }
}
