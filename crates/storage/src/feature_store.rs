//! The feature store: per-extractor feature vectors keyed by video.
//!
//! The paper's prototype stores feature vectors in Parquet files, one row per
//! `(fid, vid, start, end, vector)`. This store keeps the same logical layout
//! in memory, but physically each `(extractor, video)` entry is one
//! contiguous row-major [`FeatureBlock`] plus the per-window time ranges —
//! the in-memory analogue of a columnar Parquet row group. The ALM's
//! candidate assembly and the Model Manager's batch inference read rows as
//! zero-copy `&[f32]` views straight out of the block instead of cloning
//! `Vec<f32>`s out of a pointer-chasing `Vec<FeatureVector>`.

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use std::collections::HashMap;
use ve_features::{ExtractorId, FeatureVector};
use ve_ml::{FeatureBlock, FeatureBlockBuilder};
use ve_vidsim::{TimeRange, VideoId};

/// All feature windows of one video under one extractor, stored contiguously.
#[derive(Debug, Clone)]
pub struct VideoFeatures {
    /// Which extractor produced the vectors.
    pub extractor: ExtractorId,
    /// Source video.
    pub vid: VideoId,
    ranges: Vec<TimeRange>,
    block: FeatureBlock,
}

impl VideoFeatures {
    /// Builds the contiguous representation from per-window vectors.
    ///
    /// # Panics
    /// Panics if the vectors have inconsistent dimensionalities.
    pub fn from_vectors(extractor: ExtractorId, vid: VideoId, vectors: &[FeatureVector]) -> Self {
        let mut builder = FeatureBlockBuilder::new();
        let mut ranges = Vec::with_capacity(vectors.len());
        for v in vectors {
            builder.push_row(&v.data);
            ranges.push(v.range);
        }
        Self {
            extractor,
            vid,
            ranges,
            block: builder.build(),
        }
    }

    /// Number of stored windows.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the video has no windows.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Time range of window `i`.
    pub fn range(&self, i: usize) -> &TimeRange {
        &self.ranges[i]
    }

    /// All window ranges, in storage order.
    pub fn ranges(&self) -> &[TimeRange] {
        &self.ranges
    }

    /// Zero-copy view of window `i`'s embedding.
    pub fn row(&self, i: usize) -> &[f32] {
        self.block.row(i)
    }

    /// The contiguous block of all windows.
    pub fn block(&self) -> &FeatureBlock {
        &self.block
    }

    /// Index of the first window overlapping `range`, falling back to the
    /// last window (mirroring the Feature Manager's window-snap behaviour);
    /// `None` only when the video has no windows at all.
    pub fn window_for(&self, range: &TimeRange) -> Option<usize> {
        if self.ranges.is_empty() {
            return None;
        }
        self.ranges
            .iter()
            .position(|r| r.overlaps(range))
            .or(Some(self.ranges.len() - 1))
    }

    /// Reconstructs the legacy owned representation (used by snapshot
    /// encoding and tests).
    pub fn to_vectors(&self) -> Vec<FeatureVector> {
        (0..self.len())
            .map(|i| FeatureVector {
                extractor: self.extractor,
                vid: self.vid,
                range: self.ranges[i],
                data: self.row(i).to_vec(),
            })
            .collect()
    }

    /// Bytes of embedding payload held by this entry.
    pub fn payload_bytes(&self) -> usize {
        std::mem::size_of_val(self.block.as_slice())
    }
}

/// One mutation of the [`FeatureStore`], as recorded in its change log.
///
/// Consumers that maintain derived state over the store (the ALM's
/// `AcquisitionIndex`) replay these events instead of re-scanning every
/// entry: an `Upsert` with `replaced == false` is a pure addition that can be
/// ingested incrementally, while a replacement or an extractor drop
/// invalidates whatever was derived from the overwritten rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureStoreChange {
    /// `(extractor, vid)` was inserted (`replaced == false`) or overwritten
    /// (`replaced == true`).
    Upsert {
        /// Extractor whose entry changed.
        extractor: ExtractorId,
        /// Video whose entry changed.
        vid: VideoId,
        /// Whether an existing entry was overwritten.
        replaced: bool,
    },
    /// Every entry of one extractor was removed.
    DropExtractor {
        /// The dropped extractor.
        extractor: ExtractorId,
    },
}

/// In-memory feature-vector store with a change log.
///
/// The store's *generation* is the number of mutations applied so far; the
/// change log records each one. [`FeatureStore::changes_since`] lets derived
/// indexes catch up in O(Δ) instead of re-scanning the whole store.
#[derive(Debug, Clone, Default)]
pub struct FeatureStore {
    by_key: HashMap<(ExtractorId, VideoId), VideoFeatures>,
    log: Vec<FeatureStoreChange>,
}

impl FeatureStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store's generation: the number of mutations applied so far. Each
    /// mutation appends one [`FeatureStoreChange`] to the log, so a consumer
    /// holding generation `g` can replay `changes_since(g)` to catch up.
    pub fn generation(&self) -> u64 {
        self.log.len() as u64
    }

    /// The mutations applied since generation `gen` (oldest first).
    ///
    /// # Panics
    /// Panics if `gen` is newer than the store's current generation.
    pub fn changes_since(&self, gen: u64) -> &[FeatureStoreChange] {
        &self.log[gen as usize..]
    }

    /// Stores (replacing) the vectors of one video for one extractor,
    /// converting to the contiguous block representation.
    pub fn put(&mut self, extractor: ExtractorId, vid: VideoId, vectors: Vec<FeatureVector>) {
        let replaced = self
            .by_key
            .insert(
                (extractor, vid),
                VideoFeatures::from_vectors(extractor, vid, &vectors),
            )
            .is_some();
        self.log.push(FeatureStoreChange::Upsert {
            extractor,
            vid,
            replaced,
        });
    }

    /// Stores an already-built contiguous entry.
    pub fn put_block(&mut self, features: VideoFeatures) {
        let (extractor, vid) = (features.extractor, features.vid);
        let replaced = self.by_key.insert((extractor, vid), features).is_some();
        self.log.push(FeatureStoreChange::Upsert {
            extractor,
            vid,
            replaced,
        });
    }

    /// Returns the contiguous windows of one video for one extractor, if
    /// extracted.
    pub fn get(&self, extractor: ExtractorId, vid: VideoId) -> Option<&VideoFeatures> {
        self.by_key.get(&(extractor, vid))
    }

    /// Whether features for `(extractor, vid)` are available.
    pub fn contains(&self, extractor: ExtractorId, vid: VideoId) -> bool {
        self.by_key.contains_key(&(extractor, vid))
    }

    /// Videos that have features extracted for the given extractor, sorted.
    pub fn videos_with_features(&self, extractor: ExtractorId) -> Vec<VideoId> {
        let mut ids: Vec<VideoId> = self
            .by_key
            .keys()
            .filter(|(e, _)| *e == extractor)
            .map(|(_, v)| *v)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of `(extractor, video)` entries.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Total number of stored vectors across all entries.
    pub fn total_vectors(&self) -> usize {
        // ve-lint: allow(nondeterministic-iteration) -- integer sum over every value; order-insensitive
        self.by_key.values().map(|v| v.len()).sum::<usize>()
    }

    /// Approximate resident bytes of the stored vectors (data payloads only),
    /// which the eager-extraction guardrail can use to cap background work.
    pub fn approx_bytes(&self) -> usize {
        // ve-lint: allow(nondeterministic-iteration) -- integer sum over every value; order-insensitive
        self.by_key
            .values()
            .map(|v| v.payload_bytes())
            .sum::<usize>()
    }

    /// Iterates over all `(extractor, vid)` entries in ascending key order.
    ///
    /// Key-sorted on purpose: the persistence layer serializes snapshots in
    /// this order, so exposing raw `HashMap` order here made snapshot bytes
    /// differ from run to run on identical state.
    pub fn iter(&self) -> impl Iterator<Item = (&(ExtractorId, VideoId), &VideoFeatures)> {
        let mut entries: Vec<_> = self.by_key.iter().collect();
        entries.sort_by_key(|(key, _)| **key);
        entries.into_iter()
    }

    /// Drops every vector belonging to an extractor (used when the rising
    /// bandit eliminates a candidate feature and its storage can be
    /// reclaimed).
    pub fn drop_extractor(&mut self, extractor: ExtractorId) -> usize {
        let before = self.by_key.len();
        self.by_key.retain(|(e, _), _| *e != extractor);
        let dropped = before - self.by_key.len();
        if dropped > 0 {
            self.log
                .push(FeatureStoreChange::DropExtractor { extractor });
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_vidsim::TimeRange;

    fn fv(e: ExtractorId, vid: u64, start: f64, dim: usize) -> FeatureVector {
        FeatureVector {
            extractor: e,
            vid: VideoId(vid),
            range: TimeRange::new(start, start + 1.0),
            data: vec![start as f32; dim],
        }
    }

    #[test]
    fn put_get_and_contains() {
        let mut s = FeatureStore::new();
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![fv(ExtractorId::R3d, 1, 0.0, 4)],
        );
        assert!(s.contains(ExtractorId::R3d, VideoId(1)));
        assert!(!s.contains(ExtractorId::Mvit, VideoId(1)));
        assert_eq!(s.get(ExtractorId::R3d, VideoId(1)).unwrap().len(), 1);
        assert!(s.get(ExtractorId::R3d, VideoId(2)).is_none());
    }

    #[test]
    fn entries_are_contiguous_blocks_with_zero_copy_rows() {
        let mut s = FeatureStore::new();
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![
                fv(ExtractorId::R3d, 1, 0.0, 3),
                fv(ExtractorId::R3d, 1, 1.0, 3),
            ],
        );
        let entry = s.get(ExtractorId::R3d, VideoId(1)).unwrap();
        assert_eq!(entry.block().rows(), 2);
        assert_eq!(entry.block().dim(), 3);
        // Rows are views into one flat buffer.
        assert_eq!(entry.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(entry.row(1), &[1.0, 1.0, 1.0]);
        assert_eq!(entry.block().as_slice(), &[0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(*entry.range(1), TimeRange::new(1.0, 2.0));
    }

    #[test]
    fn window_lookup_prefers_overlap_then_falls_back_to_last() {
        let mut s = FeatureStore::new();
        s.put(
            ExtractorId::Clip,
            VideoId(3),
            vec![
                fv(ExtractorId::Clip, 3, 0.0, 2),
                fv(ExtractorId::Clip, 3, 1.0, 2),
                fv(ExtractorId::Clip, 3, 2.0, 2),
            ],
        );
        let entry = s.get(ExtractorId::Clip, VideoId(3)).unwrap();
        assert_eq!(entry.window_for(&TimeRange::new(1.2, 1.8)), Some(1));
        // Beyond the last window: snap to the last.
        assert_eq!(entry.window_for(&TimeRange::new(50.0, 51.0)), Some(2));
    }

    #[test]
    fn round_trips_to_legacy_vectors() {
        let vectors = vec![
            fv(ExtractorId::Mvit, 7, 0.0, 5),
            fv(ExtractorId::Mvit, 7, 1.0, 5),
        ];
        let entry = VideoFeatures::from_vectors(ExtractorId::Mvit, VideoId(7), &vectors);
        assert_eq!(entry.to_vectors(), vectors);
    }

    #[test]
    fn videos_with_features_is_sorted_per_extractor() {
        let mut s = FeatureStore::new();
        for vid in [5u64, 1, 3] {
            s.put(
                ExtractorId::Clip,
                VideoId(vid),
                vec![fv(ExtractorId::Clip, vid, 0.0, 4)],
            );
        }
        s.put(
            ExtractorId::R3d,
            VideoId(9),
            vec![fv(ExtractorId::R3d, 9, 0.0, 4)],
        );
        assert_eq!(
            s.videos_with_features(ExtractorId::Clip),
            vec![VideoId(1), VideoId(3), VideoId(5)]
        );
        assert_eq!(s.videos_with_features(ExtractorId::R3d), vec![VideoId(9)]);
    }

    #[test]
    fn aggregates_and_drop_extractor() {
        let mut s = FeatureStore::new();
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![
                fv(ExtractorId::R3d, 1, 0.0, 8),
                fv(ExtractorId::R3d, 1, 1.0, 8),
            ],
        );
        s.put(
            ExtractorId::Mvit,
            VideoId(1),
            vec![fv(ExtractorId::Mvit, 1, 0.0, 8)],
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_vectors(), 3);
        assert_eq!(s.approx_bytes(), 3 * 8 * 4);
        assert_eq!(s.drop_extractor(ExtractorId::R3d), 1);
        assert_eq!(s.total_vectors(), 1);
        assert!(!s.contains(ExtractorId::R3d, VideoId(1)));
    }

    #[test]
    fn put_replaces_existing_entry() {
        let mut s = FeatureStore::new();
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![fv(ExtractorId::R3d, 1, 0.0, 4)],
        );
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![
                fv(ExtractorId::R3d, 1, 0.0, 4),
                fv(ExtractorId::R3d, 1, 1.0, 4),
            ],
        );
        assert_eq!(s.get(ExtractorId::R3d, VideoId(1)).unwrap().len(), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn change_log_records_upserts_and_drops() {
        let mut s = FeatureStore::new();
        assert_eq!(s.generation(), 0);
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![fv(ExtractorId::R3d, 1, 0.0, 4)],
        );
        s.put(
            ExtractorId::R3d,
            VideoId(2),
            vec![fv(ExtractorId::R3d, 2, 0.0, 4)],
        );
        assert_eq!(s.generation(), 2);
        assert_eq!(
            s.changes_since(0),
            &[
                FeatureStoreChange::Upsert {
                    extractor: ExtractorId::R3d,
                    vid: VideoId(1),
                    replaced: false,
                },
                FeatureStoreChange::Upsert {
                    extractor: ExtractorId::R3d,
                    vid: VideoId(2),
                    replaced: false,
                },
            ]
        );
        // A consumer that caught up sees only the delta.
        let caught_up = s.generation();
        s.put(
            ExtractorId::R3d,
            VideoId(1),
            vec![fv(ExtractorId::R3d, 1, 0.0, 4)],
        );
        assert_eq!(
            s.changes_since(caught_up),
            &[FeatureStoreChange::Upsert {
                extractor: ExtractorId::R3d,
                vid: VideoId(1),
                replaced: true,
            }]
        );
        s.drop_extractor(ExtractorId::R3d);
        assert_eq!(
            s.changes_since(s.generation() - 1),
            &[FeatureStoreChange::DropExtractor {
                extractor: ExtractorId::R3d,
            }]
        );
        // Dropping an extractor with no entries records nothing.
        let gen = s.generation();
        assert_eq!(s.drop_extractor(ExtractorId::R3d), 0);
        assert_eq!(s.generation(), gen);
    }

    #[test]
    fn put_block_logs_like_put() {
        let mut s = FeatureStore::new();
        let entry = VideoFeatures::from_vectors(
            ExtractorId::Clip,
            VideoId(4),
            &[fv(ExtractorId::Clip, 4, 0.0, 2)],
        );
        s.put_block(entry.clone());
        s.put_block(entry);
        assert_eq!(
            s.changes_since(0),
            &[
                FeatureStoreChange::Upsert {
                    extractor: ExtractorId::Clip,
                    vid: VideoId(4),
                    replaced: false,
                },
                FeatureStoreChange::Upsert {
                    extractor: ExtractorId::Clip,
                    vid: VideoId(4),
                    replaced: true,
                },
            ]
        );
    }

    #[test]
    fn empty_store() {
        let s = FeatureStore::new();
        assert!(s.is_empty());
        assert_eq!(s.total_vectors(), 0);
        assert_eq!(
            s.videos_with_features(ExtractorId::R3d),
            Vec::<VideoId>::new()
        );
    }
}
