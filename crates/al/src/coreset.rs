//! The greedy Coreset (k-center) acquisition function of Sener & Savarese
//! (ICLR 2018).
//!
//! At each of `budget` steps the candidate farthest (in feature space) from
//! the already-covered set — labeled points plus previously selected
//! candidates — is picked. This is the density-based, diversity-seeking
//! baseline the paper's `VE-sample` can switch to, and the ALM executes
//! exactly `B` max-distance computations per `Explore` call (Section 4,
//! Baseline cost model).

use ve_ml::tensor::squared_distance;

/// Selects `budget` candidate indices with the greedy k-center rule.
///
/// * `candidates` — feature vectors of the unlabeled pool.
/// * `labeled` — feature vectors of already-labeled segments (may be empty;
///   the first pick is then the candidate farthest from the pool centroid,
///   which avoids an arbitrary dependence on input order).
///
/// # Panics
/// Panics if feature dimensions are inconsistent.
pub fn coreset_selection(
    candidates: &[Vec<f32>],
    labeled: &[Vec<f32>],
    budget: usize,
) -> Vec<usize> {
    if candidates.is_empty() || budget == 0 {
        return Vec::new();
    }
    let dim = candidates[0].len();
    assert!(
        candidates.iter().all(|c| c.len() == dim),
        "inconsistent candidate dimensions"
    );
    assert!(
        labeled.iter().all(|c| c.len() == dim),
        "labeled dimensions do not match candidates"
    );

    // min_dist[i] = squared distance from candidate i to the covered set.
    let mut min_dist: Vec<f32> = if labeled.is_empty() {
        // Seed with distance to the candidate centroid so the first pick is
        // the most "extreme" point rather than whatever appears first.
        let mut centroid = vec![0.0f32; dim];
        for c in candidates {
            for (s, &v) in centroid.iter_mut().zip(c) {
                *s += v;
            }
        }
        let inv = 1.0 / candidates.len() as f32;
        for s in &mut centroid {
            *s *= inv;
        }
        candidates
            .iter()
            .map(|c| squared_distance(c, &centroid))
            .collect()
    } else {
        candidates
            .iter()
            .map(|c| {
                labeled
                    .iter()
                    .map(|l| squared_distance(c, l))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect()
    };

    let mut selected = Vec::with_capacity(budget.min(candidates.len()));
    for _ in 0..budget.min(candidates.len()) {
        // Pick the candidate with the largest distance to the covered set.
        let mut best = usize::MAX;
        let mut best_dist = f32::NEG_INFINITY;
        for (i, &d) in min_dist.iter().enumerate() {
            if selected.contains(&i) {
                continue;
            }
            if d > best_dist {
                best_dist = d;
                best = i;
            }
        }
        if best == usize::MAX {
            break;
        }
        selected.push(best);
        // Update coverage distances.
        for (i, d) in min_dist.iter_mut().enumerate() {
            let nd = squared_distance(&candidates[i], &candidates[best]);
            if nd < *d {
                *d = nd;
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight clusters far apart; coreset should cover all three before
    /// revisiting any cluster.
    fn clustered_candidates() -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for i in 0..5 {
                out.push(vec![cx + i as f32 * 0.01, cy - i as f32 * 0.01]);
            }
        }
        out
    }

    fn cluster_of(idx: usize) -> usize {
        idx / 5
    }

    #[test]
    fn covers_distinct_clusters_first() {
        let candidates = clustered_candidates();
        let picks = coreset_selection(&candidates, &[], 3);
        assert_eq!(picks.len(), 3);
        let clusters: std::collections::HashSet<usize> =
            picks.iter().map(|&i| cluster_of(i)).collect();
        assert_eq!(clusters.len(), 3, "each pick should come from a different cluster");
    }

    #[test]
    fn respects_already_labeled_points() {
        let candidates = clustered_candidates();
        // Cluster 0 is already labeled; the first two picks must come from
        // clusters 1 and 2.
        let labeled = vec![vec![0.0, 0.0]];
        let picks = coreset_selection(&candidates, &labeled, 2);
        let clusters: std::collections::HashSet<usize> =
            picks.iter().map(|&i| cluster_of(i)).collect();
        assert!(!clusters.contains(&0), "cluster 0 is already covered: {picks:?}");
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn no_duplicate_selections() {
        let candidates = clustered_candidates();
        let picks = coreset_selection(&candidates, &[], 15);
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), picks.len());
        assert_eq!(picks.len(), 15);
    }

    #[test]
    fn budget_capped_by_pool_size() {
        let candidates = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        assert_eq!(coreset_selection(&candidates, &[], 10).len(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(coreset_selection(&[], &[], 5).is_empty());
        assert!(coreset_selection(&[vec![1.0]], &[], 0).is_empty());
    }

    #[test]
    fn deterministic() {
        let candidates = clustered_candidates();
        assert_eq!(
            coreset_selection(&candidates, &[], 4),
            coreset_selection(&candidates, &[], 4)
        );
    }

    #[test]
    #[should_panic(expected = "labeled dimensions")]
    fn rejects_mismatched_labeled_dims() {
        coreset_selection(&[vec![1.0, 2.0]], &[vec![1.0]], 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn selections_are_valid_indices_and_unique(
                points in proptest::collection::vec(
                    proptest::collection::vec(-10.0f32..10.0, 3), 1..40),
                budget in 0usize..10,
            ) {
                let picks = coreset_selection(&points, &[], budget);
                prop_assert!(picks.len() <= budget.min(points.len()));
                let unique: std::collections::HashSet<_> = picks.iter().collect();
                prop_assert_eq!(unique.len(), picks.len());
                prop_assert!(picks.iter().all(|&i| i < points.len()));
            }
        }
    }
}
