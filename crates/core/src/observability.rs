//! The system's deterministic event plane (see `ve-obs` for the machinery
//! and the two-plane contract).
//!
//! # What qualifies as an event
//!
//! Every [`SessionEvent`] is recorded at a point where its *content* is a
//! pure function of the session's inputs, and where the *per-iteration
//! multiset* of events is identical between the synchronous harness and the
//! async engine at any `executor_workers × compute_threads`. Wall-clock
//! facts (queue wait, run time, spill waits) are banned here; they live in
//! the timing plane and join by span/iteration.
//!
//! # Iteration attribution
//!
//! The recorder carries the current iteration in an atomic set by
//! `sample_segments` *after* it increments the session counter. The
//! synchronous path runs its deferred training/evaluation at the start of
//! `explore(N+1)` — before the counter moves to `N+1` — which is exactly the
//! work the async engine runs inside window `N`; both therefore attribute it
//! to iteration `N`, and the canonicalized ledgers line up bucket for
//! bucket. (The async engine's final window trains once more than a
//! synchronous session of the same length; equality assertions trim that
//! boundary bucket, the same allowance `chaos_faults` makes.)
//!
//! # Ordering
//!
//! Recording order within an iteration is scheduling-dependent (a training
//! task and an eager extraction may finish in either order), so equality is
//! asserted on [`Obs::canonical_events`]: iteration-major, then the variant
//! order below. The *raw* recording order is still exactly the legacy
//! degradation-ledger order, which is why `VocalExplore::drain_degradations`
//! can be a cursor view over this plane (see [`Obs::drain_degradations`]).

use crate::degradation::Degradation;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use ve_features::ExtractorId;
use ve_obs::{EventKind, EventLedger, MetricsRegistry};
use ve_vidsim::VideoId;

/// One deterministic event. Variant order defines the canonical
/// intra-iteration rank (roughly the phase order of an iteration); all
/// payloads are integers or `Ord` ids — floats are stored as IEEE bits,
/// which order correctly for the non-negative values recorded here.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SessionEvent {
    /// The acquisition index absorbed newly covered rows during selection.
    IndexIngest { rows_added: u64, epoch: u64 },
    /// Probability-cache traffic of one selection call (deltas of
    /// `ProbCacheStats` across the call; the cache is only consulted on the
    /// session thread, so the deltas are deterministic).
    CacheProbe {
        hit_rows: u64,
        miss_rows: u64,
        invalidations: u64,
    },
    /// One `sample_segments` call completed.
    SelectionCompleted {
        batch: u32,
        videos_extracted_for_call: u32,
        candidates_lost: u32,
        coverage_fallback: bool,
    },
    /// User-facing predictions for the iteration's batch were attached.
    PredictionsServed { segments: u32, predicted: u32 },
    /// The user labeled a segment.
    LabelAdded { vid: VideoId },
    /// A feature clip was computed and published to the cache (recorded by
    /// the unique publish winner, so exactly once per clip per extractor).
    Extracted {
        extractor: ExtractorId,
        vid: VideoId,
    },
    /// A cross-validated feature-quality evaluation produced a score.
    EvaluationCompleted {
        extractor: ExtractorId,
        /// `f64::to_bits` of the CV score (non-negative, so bit order ==
        /// numeric order).
        score_bits: u64,
    },
    /// One training attempt ran (both the synchronous in-place retry loop
    /// and the executor's retryable task record these, one per attempt).
    TrainAttempt {
        extractor: ExtractorId,
        /// The training request's own iteration argument.
        iteration: u32,
        attempt: u32,
        ok: bool,
    },
    /// Training published a new model version.
    TrainCompleted {
        extractor: ExtractorId,
        iteration: u32,
        version: u64,
    },
    /// An absorbed fault (the degradation ledger is a view over these).
    Degraded(Degradation),
}

impl EventKind for SessionEvent {
    /// Stable kind names for drop accounting and the bench artifacts'
    /// `events.by_kind` section — a pure function of the variant.
    fn kind(&self) -> &'static str {
        match self {
            SessionEvent::IndexIngest { .. } => "index_ingest",
            SessionEvent::CacheProbe { .. } => "cache_probe",
            SessionEvent::SelectionCompleted { .. } => "selection_completed",
            SessionEvent::PredictionsServed { .. } => "predictions_served",
            SessionEvent::LabelAdded { .. } => "label_added",
            SessionEvent::Extracted { .. } => "extracted",
            SessionEvent::EvaluationCompleted { .. } => "evaluation_completed",
            SessionEvent::TrainAttempt { .. } => "train_attempt",
            SessionEvent::TrainCompleted { .. } => "train_completed",
            SessionEvent::Degraded(_) => "degraded",
        }
    }
}

/// The observability recorder: deterministic event ledger + metrics
/// registry + the current-iteration tag. One per [`crate::VocalExplore`],
/// shared with the feature/model/AL managers via `Arc`.
pub struct Obs {
    current_iteration: AtomicU32,
    ledger: EventLedger<SessionEvent>,
    metrics: MetricsRegistry,
}

/// Shared handle to the recorder.
pub type ObsHandle = Arc<Obs>;

impl Obs {
    /// A recorder with event/metrics sinks enabled (`enabled = false` keeps
    /// only the events that double as program state — degradations).
    pub fn new(enabled: bool) -> ObsHandle {
        Self::with_recorder_capacity(enabled, None)
    }

    /// A recorder whose event ledger is bounded to the most recent
    /// `capacity` droppable events (flight-recorder mode; `None` =
    /// unbounded). Degradations are pinned and never evicted, so the
    /// degradation view stays lossless at any capacity.
    pub fn with_recorder_capacity(enabled: bool, capacity: Option<usize>) -> ObsHandle {
        let obs = Obs {
            current_iteration: AtomicU32::new(0),
            ledger: match capacity {
                Some(c) => EventLedger::with_capacity(c),
                None => EventLedger::new(),
            },
            metrics: MetricsRegistry::new(),
        };
        obs.ledger.set_enabled(enabled);
        Arc::new(obs)
    }

    pub fn is_enabled(&self) -> bool {
        self.ledger.is_enabled()
    }

    /// Sets the iteration tag subsequent events attribute to.
    pub fn set_iteration(&self, iteration: u32) {
        self.current_iteration.store(iteration, Ordering::Relaxed);
    }

    pub fn iteration(&self) -> u32 {
        self.current_iteration.load(Ordering::Relaxed)
    }

    /// Records an event under the current iteration tag.
    pub fn record(&self, event: SessionEvent) {
        self.ledger.record(self.iteration(), event);
    }

    /// Records a degradation. Always recorded — the degradation ledger is
    /// program state, not optional telemetry — and counted in the metrics
    /// registry when sinks are on.
    pub fn record_degradation(&self, degradation: Degradation) {
        if self.is_enabled() {
            self.metrics.inc("degradations", 1);
        }
        self.ledger
            .record_always(self.iteration(), SessionEvent::Degraded(degradation));
    }

    /// Bumps a metrics counter (no-op when sinks are disabled).
    pub fn inc(&self, name: &str, by: u64) {
        if self.is_enabled() {
            self.metrics.inc(name, by);
        }
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The ledger in raw recording order.
    pub fn events(&self) -> Vec<(u32, SessionEvent)> {
        self.ledger.snapshot()
    }

    /// The ledger in canonical (iteration-major, event-`Ord`) order — the
    /// form sync/async and cross-parallelism equality is asserted on.
    pub fn canonical_events(&self) -> Vec<(u32, SessionEvent)> {
        self.ledger.canonical()
    }

    /// Exact per-kind counts of events evicted by the flight recorder
    /// (empty in unbounded mode or while within capacity).
    pub fn dropped_events(&self) -> Vec<(&'static str, u64)> {
        self.ledger.dropped_by_kind()
    }

    /// Degradations recorded since the last drain, in recording order —
    /// the legacy `Vec<Degradation>` ledger as a view over the event plane.
    pub fn drain_degradations(&self) -> Vec<Degradation> {
        self.ledger.drain_filter_map(|e| match e {
            SessionEvent::Degraded(d) => Some(d.clone()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_groups_by_iteration_then_variant() {
        let obs = Obs::new(true);
        obs.set_iteration(2);
        obs.record(SessionEvent::TrainAttempt {
            extractor: ExtractorId::R3d,
            iteration: 2,
            attempt: 0,
            ok: true,
        });
        obs.set_iteration(1);
        obs.record(SessionEvent::LabelAdded { vid: VideoId(4) });
        obs.record(SessionEvent::CacheProbe {
            hit_rows: 1,
            miss_rows: 0,
            invalidations: 0,
        });
        let canon = obs.canonical_events();
        assert_eq!(canon.len(), 3);
        assert_eq!(canon[0].0, 1);
        assert!(matches!(canon[0].1, SessionEvent::CacheProbe { .. }));
        assert!(matches!(canon[1].1, SessionEvent::LabelAdded { .. }));
        assert_eq!(canon[2].0, 2);
    }

    #[test]
    fn degradations_survive_disabled_sinks_and_drain_in_order() {
        let obs = Obs::new(false);
        obs.record(SessionEvent::LabelAdded { vid: VideoId(1) }); // dropped
        obs.record_degradation(Degradation::CandidatesLost {
            iteration: 1,
            videos: 2,
        });
        obs.record_degradation(Degradation::TrainingFailed {
            iteration: 1,
            extractor: ExtractorId::R3d,
        });
        assert_eq!(obs.events().len(), 2);
        let drained = obs.drain_degradations();
        assert!(matches!(drained[0], Degradation::CandidatesLost { .. }));
        assert!(matches!(drained[1], Degradation::TrainingFailed { .. }));
        assert!(obs.drain_degradations().is_empty());
        // Metrics counter untouched while disabled.
        assert_eq!(obs.metrics().counter("degradations"), 0);
    }

    #[test]
    fn bounded_recorder_evicts_telemetry_but_pins_degradations() {
        let obs = Obs::with_recorder_capacity(true, Some(2));
        obs.set_iteration(1);
        obs.record(SessionEvent::LabelAdded { vid: VideoId(1) });
        obs.record(SessionEvent::LabelAdded { vid: VideoId(2) });
        obs.record_degradation(Degradation::CandidatesLost {
            iteration: 1,
            videos: 2,
        });
        obs.record(SessionEvent::LabelAdded { vid: VideoId(3) }); // evicts vid 1
        assert_eq!(obs.events().len(), 3);
        assert_eq!(obs.dropped_events(), vec![("label_added", 1)]);
        assert_eq!(obs.drain_degradations().len(), 1);
    }
}
