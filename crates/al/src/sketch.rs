//! The cluster-sketch candidate reducer.
//!
//! When eager extraction has covered tens of thousands of candidate windows,
//! running the margin/uncertainty stages over every window at every `Explore`
//! call stops being interactive. The ALM used to bound that work by shuffling
//! the candidate list and truncating it to 2,000 windows — cheap, but blind:
//! a random truncation can drop entire regions of feature space, and it
//! consumed RNG state, coupling selections to call history.
//!
//! [`ClusterSketch`] replaces that cap with a structure-aware reduction that
//! is a *pure function of the candidate index contents*:
//!
//! 1. **Fit**: deterministic k-means ([`crate::cluster_margin::kmeans_fit`])
//!    over a fixed prefix of the index rows produces `k` centroids.
//! 2. **Assign**: every candidate row maps to its nearest centroid
//!    (first-index-wins ties). New rows appended by incremental ingest are
//!    assigned on arrival — O(Δ · k · d) per call, not O(n · k · d) — and a
//!    prefix change (rows inserted before the fit prefix) triggers a refit.
//! 3. **Reduce**: when the unmasked candidate count exceeds the cap, pick
//!    representatives round-robin across clusters in ascending-size order
//!    (smallest clusters first, members in ascending row order), so every
//!    region keeps proportional-but-bounded representation instead of
//!    surviving by lottery.
//!
//! # Determinism
//!
//! Every stage builds on the thread-count-independent kernels of
//! [`ve_ml::FeatureBlock`] and breaks ties toward the first index, so the
//! reduction is bit-identical at any parallelism setting, and identical
//! whether the sketch was grown incrementally or rebuilt from scratch over
//! the same rows.

use crate::cluster_margin::kmeans_fit;
use ve_ml::FeatureBlock;

/// Parameters of the sketch (fixed defaults documented in the ROADMAP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSketchConfig {
    /// Rows the k-means fit runs over: the first `min(prefix_rows, n)` rows
    /// of the candidate index in canonical order.
    pub prefix_rows: usize,
    /// Number of centroids.
    pub clusters: usize,
    /// k-means iterations of the fit.
    pub kmeans_iters: usize,
}

impl Default for ClusterSketchConfig {
    fn default() -> Self {
        Self {
            prefix_rows: 1024,
            clusters: 64,
            kmeans_iters: 4,
        }
    }
}

/// A persistent clustering of a growing candidate block (see module docs).
#[derive(Debug, Clone)]
pub struct ClusterSketch {
    config: ClusterSketchConfig,
    centroids: FeatureBlock,
    /// Cluster id of every assigned row (`assignments.len()` rows assigned).
    assignments: Vec<usize>,
    /// Rows the centroids were fitted over (`min(prefix_rows, n at fit)`).
    prefix_len: usize,
}

impl ClusterSketch {
    /// Fits centroids over the block's prefix and assigns every row.
    ///
    /// # Panics
    /// Panics if the block is empty.
    pub fn build(block: &FeatureBlock, config: ClusterSketchConfig) -> Self {
        assert!(!block.is_empty(), "cannot sketch an empty candidate block");
        let prefix_len = config.prefix_rows.max(1).min(block.rows());
        let prefix: Vec<usize> = (0..prefix_len).collect();
        let (centroids, _) = kmeans_fit(
            &block.gather(&prefix),
            config.clusters.max(1),
            config.kmeans_iters.max(1),
        );
        let mut sketch = Self {
            config,
            centroids,
            assignments: Vec::with_capacity(block.rows()),
            prefix_len,
        };
        sketch.extend(block);
        sketch
    }

    /// The sketch parameters.
    pub fn config(&self) -> &ClusterSketchConfig {
        &self.config
    }

    /// Rows assigned so far.
    pub fn assigned_rows(&self) -> usize {
        self.assignments.len()
    }

    /// Rows the centroids were fitted over.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Number of fitted centroids.
    pub fn clusters(&self) -> usize {
        self.centroids.rows().max(1)
    }

    /// Assigns the rows appended to `block` since the last `build`/`extend`.
    /// Per-row assignments are pure functions of (row, centroids), so
    /// extending incrementally or rebuilding over the same rows yields
    /// identical assignments.
    ///
    /// # Panics
    /// Panics if `block` has fewer rows than are already assigned (the index
    /// only ever grows between refits).
    pub fn extend(&mut self, block: &FeatureBlock) {
        let assigned = self.assignments.len();
        assert!(
            block.rows() >= assigned,
            "candidate block shrank under the sketch"
        );
        if block.rows() == assigned {
            return;
        }
        if self.centroids.is_empty() || block.dim() == 0 {
            // Degenerate zero-dimensional features: every distance ties at 0,
            // first centroid wins.
            self.assignments.resize(block.rows(), 0);
            return;
        }
        let fresh: Vec<usize> = (assigned..block.rows()).collect();
        self.assignments
            .extend(block.gather(&fresh).nearest_rows(&self.centroids));
    }

    /// Reduces the unmasked rows to at most `cap` representatives, returned
    /// in ascending row order: clusters are visited round-robin in
    /// ascending-(size, id) order and each contributes its unmasked members
    /// in ascending row order, so small/rare regions are fully kept while
    /// dense regions are subsampled.
    ///
    /// # Panics
    /// Panics if `masked.len()` differs from the assigned row count.
    pub fn reduce(&self, masked: &[bool], cap: usize) -> Vec<usize> {
        assert_eq!(
            masked.len(),
            self.assignments.len(),
            "mask length must match assigned rows"
        );
        let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); self.clusters()];
        for (row, &cluster) in self.assignments.iter().enumerate() {
            if !masked[row] {
                clusters[cluster].push(row);
            }
        }
        clusters.retain(|c| !c.is_empty());
        // Stable sort: equal sizes keep ascending cluster-id order.
        clusters.sort_by_key(|c| c.len());

        let total: usize = clusters.iter().map(|c| c.len()).sum::<usize>();
        let take = cap.min(total);
        let mut selected = Vec::with_capacity(take);
        let mut cursor = vec![0usize; clusters.len()];
        while selected.len() < take {
            let mut progressed = false;
            for (ci, cluster) in clusters.iter().enumerate() {
                if selected.len() >= take {
                    break;
                }
                if cursor[ci] < cluster.len() {
                    selected.push(cluster[cursor[ci]]);
                    cursor[ci] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        selected.sort_unstable();
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per_blob: usize) -> FeatureBlock {
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (20.0, 0.0), (0.0, 20.0)] {
            for i in 0..per_blob {
                rows.push(vec![cx + (i % 7) as f32 * 0.05, cy - (i % 5) as f32 * 0.05]);
            }
        }
        FeatureBlock::from_nested(&rows)
    }

    fn cfg(prefix: usize, k: usize) -> ClusterSketchConfig {
        ClusterSketchConfig {
            prefix_rows: prefix,
            clusters: k,
            kmeans_iters: 4,
        }
    }

    #[test]
    fn incremental_extend_matches_fresh_build() {
        let full = blobs(40); // 120 rows
                              // Grow a copy of the block row by row in two stages.
        let mut growing = FeatureBlock::empty(2);
        for r in 0..80 {
            growing.push_row(full.row(r));
        }
        let mut sketch = ClusterSketch::build(&growing, cfg(48, 6));
        for r in 80..full.rows() {
            growing.push_row(full.row(r));
        }
        sketch.extend(&growing);
        let fresh = ClusterSketch::build(&full, cfg(48, 6));
        assert_eq!(sketch.assignments, fresh.assignments);
        assert_eq!(sketch.prefix_len, fresh.prefix_len);
        let masked = vec![false; full.rows()];
        assert_eq!(sketch.reduce(&masked, 30), fresh.reduce(&masked, 30));
    }

    #[test]
    fn reduce_spans_all_blobs_and_respects_cap() {
        let block = blobs(50);
        // Prefix spans all three blobs so every region owns a centroid.
        let sketch = ClusterSketch::build(&block, cfg(150, 6));
        let masked = vec![false; block.rows()];
        let reduced = sketch.reduce(&masked, 12);
        assert_eq!(reduced.len(), 12);
        assert!(reduced.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
        let blobs_hit: std::collections::HashSet<usize> = reduced.iter().map(|&r| r / 50).collect();
        assert_eq!(blobs_hit.len(), 3, "every blob keeps representation");
    }

    #[test]
    fn reduce_skips_masked_rows_and_handles_small_pools() {
        let block = blobs(4);
        let sketch = ClusterSketch::build(&block, cfg(8, 3));
        let mut masked = vec![false; block.rows()];
        for m in masked.iter_mut().take(4) {
            *m = true; // whole first blob labeled
        }
        let reduced = sketch.reduce(&masked, 100);
        assert_eq!(reduced.len(), 8, "cap above pool returns all unmasked");
        assert!(reduced.iter().all(|&r| r >= 4));
        assert!(sketch.reduce(&vec![true; block.rows()], 5).is_empty());
    }

    #[test]
    fn rare_clusters_survive_reduction() {
        // One singleton far away plus a dense blob: ascending-size
        // round-robin must keep the singleton in any non-trivial cap.
        let mut rows = vec![vec![100.0f32, 100.0]];
        for i in 0..200 {
            rows.push(vec![(i % 14) as f32 * 0.01, 0.0]);
        }
        let block = FeatureBlock::from_nested(&rows);
        let sketch = ClusterSketch::build(&block, cfg(128, 4));
        let reduced = sketch.reduce(&vec![false; block.rows()], 10);
        assert!(
            reduced.contains(&0),
            "the outlier cluster must survive: {reduced:?}"
        );
    }

    #[test]
    fn identical_across_thread_counts() {
        let block = blobs(400); // 1200 rows, large enough to fan out
        let masked: Vec<bool> = (0..block.rows()).map(|r| r % 11 == 0).collect();
        let _guard = ve_sched::parallel::test_parallelism_guard();
        ve_sched::parallel::set_parallelism(1);
        let single = ClusterSketch::build(&block, cfg(256, 16));
        let single_reduced = single.reduce(&masked, 64);
        ve_sched::parallel::set_parallelism(8);
        let multi = ClusterSketch::build(&block, cfg(256, 16));
        let multi_reduced = multi.reduce(&masked, 64);
        ve_sched::parallel::set_parallelism(0);
        assert_eq!(single.assignments, multi.assignments);
        assert_eq!(single_reduced, multi_reduced);
    }

    #[test]
    #[should_panic(expected = "empty candidate block")]
    fn rejects_empty_block() {
        ClusterSketch::build(&FeatureBlock::empty(2), ClusterSketchConfig::default());
    }
}
