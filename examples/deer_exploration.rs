//! Deer exploration: the motivating use case of Section 2.1.
//!
//! Ecologists collected collar-camera footage of deer and want to understand
//! how much time the animals spend on each activity. The class distribution
//! is heavily skewed toward "bedded", which is exactly the situation where
//! `VE-sample` pays off: it starts with cheap random sampling, detects the
//! skew from the labels it collects, and switches to Cluster-Margin sampling
//! — improving both model quality on the rare activities and the diversity of
//! what the user is asked to label (the `S_max` metric).
//!
//! Run with:
//! ```text
//! cargo run --release --example deer_exploration
//! ```

use vocalexplore::prelude::*;
use vocalexplore::{FeatureSelectionPolicy, SamplingPolicy};

fn run(label: &str, sampling: SamplingPolicy) -> SessionOutcome {
    let mut session = SessionConfig::new(DatasetName::Deer, 0.4, 7)
        .with_iterations(40)
        .with_eval_every(5);
    session.system = session
        .system
        .with_sampling(sampling)
        // Fix the feature so the comparison isolates the sampling method
        // (R3D is one of the correct choices for Deer, Figure 4a).
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d));
    session.system.train.epochs = 80;
    let outcome = SessionRunner::new(session).run();
    println!(
        "{label:<18} final F1 = {:.3}   S_max = {:.2}   switched to AL at label #{}",
        outcome.final_f1(),
        outcome.final_s_max(),
        outcome
            .records
            .iter()
            .find(|r| r.acquisition != AcquisitionKind::Random)
            .map(|r| r.labels_total.to_string())
            .unwrap_or_else(|| "never".to_string()),
    );
    outcome
}

fn main() {
    println!("Deer activity exploration (B = 5 segments per iteration, 40 iterations)\n");

    let random = run("Random", SamplingPolicy::Fixed(AcquisitionKind::Random));
    let cluster_margin = run(
        "Cluster-Margin",
        SamplingPolicy::Fixed(AcquisitionKind::ClusterMargin),
    );
    let ve_sample = run("VE-sample (CM)", SamplingPolicy::default());

    println!("\nSummary:");
    println!(
        "  VE-sample matches the better of the two fixed strategies \
         (F1 {:.3} vs Random {:.3} / Cluster-Margin {:.3})",
        ve_sample.final_f1(),
        random.final_f1(),
        cluster_margin.final_f1()
    );
    println!(
        "  and shows the user a more diverse set of activities than Random \
         (S_max {:.2} vs {:.2}; lower is more diverse).",
        ve_sample.final_s_max(),
        random.final_s_max()
    );
}
