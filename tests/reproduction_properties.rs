//! Integration tests asserting the *qualitative shapes* the paper's
//! evaluation reports — the properties the figure/table binaries reproduce at
//! larger scale. These run at reduced scale so the whole suite stays fast,
//! but each assertion corresponds to a headline claim of Section 5.

use vocalexplore::prelude::*;
use vocalexplore::{FeatureSelectionPolicy, SamplingPolicy};

fn quick(dataset: DatasetName, seed: u64, iterations: usize) -> SessionConfig {
    let mut cfg = SessionConfig::new(dataset, 0.15, seed)
        .with_iterations(iterations)
        .with_eval_every(iterations.max(2) / 2);
    cfg.system.train.epochs = 50;
    cfg.system = cfg.system.with_extra_candidates(10);
    cfg
}

fn fixed_feature(mut cfg: SessionConfig, e: ExtractorId) -> SessionConfig {
    cfg.system = cfg
        .system
        .with_feature_selection(FeatureSelectionPolicy::Fixed(e));
    cfg
}

fn fixed_sampling(mut cfg: SessionConfig, kind: AcquisitionKind) -> SessionConfig {
    cfg.system = cfg.system.with_sampling(SamplingPolicy::Fixed(kind));
    cfg
}

/// Figure 4 shape: an informative extractor clearly beats the random-weight
/// extractor on the same labeling budget.
#[test]
fn informative_feature_beats_random_feature() {
    let good = SessionRunner::new(fixed_feature(
        quick(DatasetName::Deer, 5, 16),
        ExtractorId::R3d,
    ))
    .run()
    .final_f1();
    let bad = SessionRunner::new(fixed_feature(
        quick(DatasetName::Deer, 5, 16),
        ExtractorId::Random,
    ))
    .run()
    .final_f1();
    assert!(
        good > bad + 0.05,
        "R3D ({good:.3}) must clearly beat the Random feature ({bad:.3}) on Deer"
    );
}

/// Figure 3 shape: on a skewed dataset, VE-sample (CM) reaches a label
/// diversity (S_max) at least as good as pure random sampling.
#[test]
fn ve_sample_improves_label_diversity_on_skewed_data() {
    let random = SessionRunner::new(fixed_sampling(
        fixed_feature(quick(DatasetName::K20Skew, 7, 20), ExtractorId::Mvit),
        AcquisitionKind::Random,
    ))
    .run();
    let ve = SessionRunner::new(fixed_feature(
        quick(DatasetName::K20Skew, 7, 20),
        ExtractorId::Mvit,
    ))
    .run();
    assert!(
        ve.final_s_max() <= random.final_s_max() + 0.02,
        "VE-sample S_max ({:.2}) should not be worse than Random's ({:.2})",
        ve.final_s_max(),
        random.final_s_max()
    );
}

/// Table 4 / Figure 5 shape: the rising bandit converges to a correct
/// extractor on Deer within the horizon.
#[test]
fn bandit_selects_a_video_model_on_deer() {
    let mut cfg = quick(DatasetName::Deer, 9, 40);
    cfg.system = cfg
        .system
        .with_feature_selection(FeatureSelectionPolicy::Bandit(RisingBanditConfig::default()));
    let outcome = SessionRunner::new(cfg).run();
    let selected = outcome.final_extractor;
    assert!(
        matches!(selected, ExtractorId::R3d | ExtractorId::Mvit),
        "Deer must select a video model, got {selected}"
    );
    assert!(
        outcome.feature_selected_at.unwrap_or(usize::MAX) <= 40,
        "selection should converge within the horizon"
    );
}

/// Figure 2 / Figure 8 shape: VE-full's cumulative visible latency is far
/// below the serial preprocessing baseline while F1 stays comparable.
#[test]
fn ve_full_is_cheaper_than_preprocessing_baseline_without_losing_f1() {
    use vocalexplore::PreprocessPolicy;

    let mut pp = fixed_feature(quick(DatasetName::Deer, 11, 16), ExtractorId::R3d);
    pp.system = pp
        .system
        .with_strategy(SchedulerStrategy::Serial)
        .with_preprocess(PreprocessPolicy::AllVideos)
        .with_sampling(SamplingPolicy::Fixed(AcquisitionKind::Coreset));
    let pp_outcome = SessionRunner::new(pp).run();

    let mut full = fixed_feature(quick(DatasetName::Deer, 11, 16), ExtractorId::R3d);
    full.system = full.system.with_strategy(SchedulerStrategy::VeFull);
    let full_outcome = SessionRunner::new(full).run();

    assert!(
        full_outcome.cumulative_visible_latency() * 2.0 < pp_outcome.cumulative_visible_latency(),
        "VE-full visible latency ({:.0}s) must be far below Coreset-PP ({:.0}s)",
        full_outcome.cumulative_visible_latency(),
        pp_outcome.cumulative_visible_latency()
    );
    assert!(
        full_outcome.final_f1() + 0.15 > pp_outcome.final_f1(),
        "VE-full F1 ({:.3}) should stay comparable to Coreset-PP ({:.3})",
        full_outcome.final_f1(),
        pp_outcome.final_f1()
    );
}

/// Figure 9 shape: 10% label noise barely degrades VOCALExplore's F1.
#[test]
fn moderate_label_noise_is_tolerated() {
    let clean = SessionRunner::new(fixed_feature(
        quick(DatasetName::Deer, 13, 20),
        ExtractorId::R3d,
    ))
    .run()
    .final_f1();
    let noisy = SessionRunner::new(
        fixed_feature(quick(DatasetName::Deer, 13, 20), ExtractorId::R3d).with_noise(0.10),
    )
    .run()
    .final_f1();
    assert!(
        noisy > clean - 0.15,
        "10% label noise should not collapse F1: clean {clean:.3}, noisy {noisy:.3}"
    );
}

/// Section 4 claim: VE-full's per-iteration visible latency is on the order
/// of one second (B = 5 segments, selection + inference only).
#[test]
fn ve_full_visible_latency_is_about_one_second_per_iteration() {
    let mut cfg = fixed_feature(quick(DatasetName::Deer, 15, 12), ExtractorId::R3d);
    cfg.system = cfg.system.with_strategy(SchedulerStrategy::VeFull);
    let outcome = SessionRunner::new(cfg).run();
    // Skip the first iteration (cold start may extract features for the very
    // first batch before any eager extraction has happened).
    for record in outcome.records.iter().skip(1) {
        assert!(
            record.visible_latency_secs < 2.5,
            "iteration {} visible latency {:.2}s exceeds the ~1s target",
            record.iteration,
            record.visible_latency_secs
        );
    }
}
