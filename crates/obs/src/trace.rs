//! Chrome `trace_event` exporter: builds a trace loadable in Perfetto /
//! `chrome://tracing` from timing-plane records, and validates its structure
//! before it is committed as a CI artifact.
//!
//! The format is the JSON-array flavor: `{"traceEvents": [...]}` where each
//! span is a balanced `B`/`E` pair on one `(pid, tid)` track, `ts` is in
//! microseconds, and `M` metadata events name the tracks. Rendering sorts
//! events by timestamp (stable, so a zero-length span keeps `B` before `E`),
//! which is also what [`ChromeTrace::validate`] checks: per-track monotonic
//! timestamps, balanced begin/end nesting, and at least one complete span
//! for every category the caller requires.

use crate::timing::{PhaseTiming, TaskTiming};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One raw trace event. `ph` is the Chrome phase: `'B'`egin, `'E'`nd,
/// `'i'`nstant, or `'M'`etadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: String,
    pub cat: String,
    pub ph: char,
    pub ts_us: u64,
    pub pid: u64,
    pub tid: u64,
    /// Rendered into the `args` object as string values.
    pub args: Vec<(String, String)>,
}

/// Statistics produced by a successful validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    pub tracks: usize,
    pub spans: usize,
    /// `'i'` (instant) event count — anomaly markers and the like.
    pub instants: usize,
    /// Complete span count per category.
    pub spans_per_cat: BTreeMap<String, usize>,
}

/// A trace under construction.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a `(pid, tid)` track in the trace UI.
    pub fn name_track(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(TraceEvent {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_us: 0,
            pid,
            tid,
            args: vec![("name".to_string(), name.to_string())],
        });
    }

    /// Adds one complete span as a `B`/`E` pair.
    #[allow(clippy::too_many_arguments)] // mirrors the trace_event field list
    pub fn add_span(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        start_us: u64,
        end_us: u64,
        args: Vec<(String, String)>,
    ) {
        let end_us = end_us.max(start_us);
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'B',
            ts_us: start_us,
            pid,
            tid,
            args,
        });
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'E',
            ts_us: end_us,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Adds an executed task from the timing plane: one span on the worker's
    /// track, annotated with its queue class, span id, and queue wait.
    pub fn add_task(&mut self, t: &TaskTiming) {
        self.add_span(
            &format!("{}#{}", t.label.kind, t.label.iteration),
            t.label.kind,
            0,
            1 + t.worker as u64,
            t.start_us,
            t.end_us,
            vec![
                ("span".to_string(), t.span.to_string()),
                ("class".to_string(), t.class.label().to_string()),
                ("queue_wait_us".to_string(), t.queue_wait_us().to_string()),
            ],
        );
    }

    /// Adds a thread-scoped `instant` event — a zero-duration marker the
    /// trace UI draws as a tick on the `(pid, tid)` track. Used for anomaly
    /// annotations: *where* a budget blew, without opening a span.
    pub fn add_instant(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us,
            pid,
            tid,
            args,
        });
    }

    /// Adds a session-thread phase on the dedicated session track (tid 0).
    pub fn add_phase(&mut self, p: &PhaseTiming) {
        self.add_span(
            &format!("{}#{}", p.phase, p.iteration),
            p.phase,
            0,
            0,
            p.start_us,
            p.start_us + p.dur_us,
            vec![("iteration".to_string(), p.iteration.to_string())],
        );
    }

    /// Events sorted for rendering: by timestamp, stable (insertion order
    /// breaks ties, keeping `B` before `E` for zero-length spans), metadata
    /// first.
    fn sorted(&self) -> Vec<TraceEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| (if e.ph == 'M' { 0u8 } else { 1 }, e.ts_us));
        evs
    }

    /// Hand-rolled JSON rendering (no serde in this environment).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\"traceEvents\": [\n");
        let evs = self.sorted();
        for (i, e) in evs.iter().enumerate() {
            let mut args = String::new();
            for (j, (k, v)) in e.args.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(args, "{sep}\"{}\": \"{}\"", esc(k), esc(v));
            }
            let sep = if i + 1 == evs.len() { "" } else { "," };
            // Instant events carry an explicit thread scope so Perfetto
            // anchors the tick to its track.
            let scope = if e.ph == 'i' { "\"s\": \"t\", " } else { "" };
            let _ = writeln!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", {scope}\"ts\": {}, \
                 \"pid\": {}, \"tid\": {}, \"args\": {{{args}}}}}{sep}",
                esc(&e.name),
                esc(&e.cat),
                e.ph,
                e.ts_us,
                e.pid,
                e.tid
            );
        }
        out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
        out
    }

    /// Structural validation of the trace as it will be rendered:
    ///
    /// * timestamps are monotonically non-decreasing per `(pid, tid)` track,
    /// * every track's `B`/`E` events balance (no dangling begin or end),
    /// * every category in `required_cats` has at least one complete span.
    pub fn validate(&self, required_cats: &[&str]) -> Result<TraceStats, String> {
        // Rendering sorts globally by timestamp, which makes per-track
        // monotonicity hold by construction; the sequence checker still
        // guards hand-merged or externally-produced event lists.
        validate_sequence(&self.sorted(), required_cats)
    }
}

/// The core structural check over an event sequence in its final order.
fn validate_sequence(evs: &[TraceEvent], required_cats: &[&str]) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut tracks: BTreeMap<(u64, u64), (u64, usize)> = BTreeMap::new();
    for e in evs {
        if e.ph == 'M' {
            continue;
        }
        let track = tracks.entry((e.pid, e.tid)).or_insert((0, 0));
        if e.ts_us < track.0 {
            return Err(format!(
                "track ({}, {}): ts {} goes backwards (prev {})",
                e.pid, e.tid, e.ts_us, track.0
            ));
        }
        track.0 = e.ts_us;
        match e.ph {
            'B' => track.1 += 1,
            // Instants take part in the monotonicity check above but have
            // no begin/end balance to keep.
            'i' => stats.instants += 1,
            'E' => {
                if track.1 == 0 {
                    return Err(format!(
                        "track ({}, {}): `E` for `{}` at ts {} with no open `B`",
                        e.pid, e.tid, e.name, e.ts_us
                    ));
                }
                track.1 -= 1;
                stats.spans += 1;
                *stats.spans_per_cat.entry(e.cat.clone()).or_insert(0) += 1;
            }
            other => return Err(format!("unsupported phase `{other}`")),
        }
    }
    for ((pid, tid), (_, open)) in &tracks {
        if *open != 0 {
            return Err(format!(
                "track ({pid}, {tid}): {open} unbalanced `B` event(s)"
            ));
        }
    }
    stats.tracks = tracks.len();
    for cat in required_cats {
        if stats.spans_per_cat.get(*cat).copied().unwrap_or(0) == 0 {
            return Err(format!("required phase `{cat}` has zero complete spans"));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{QueueClass, TaskLabel};

    fn task(span: u64, kind: &'static str, worker: usize, s: u64, e: u64) -> TaskTiming {
        TaskTiming {
            span,
            label: TaskLabel::new(kind, 1),
            class: QueueClass::Normal,
            worker,
            submit_us: s.saturating_sub(2),
            start_us: s,
            end_us: e,
        }
    }

    #[test]
    fn spans_balance_and_validate() {
        let mut trace = ChromeTrace::new();
        trace.name_track(0, 1, "worker-0");
        trace.add_task(&task(1, "train", 0, 10, 50));
        trace.add_task(&task(2, "infer", 0, 60, 65));
        trace.add_phase(&PhaseTiming {
            phase: "select",
            iteration: 1,
            start_us: 0,
            dur_us: 8,
        });
        let stats = trace.validate(&["train", "infer", "select"]).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.tracks, 2);
        let json = trace.render_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"B\""));
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 3);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 3);
    }

    #[test]
    fn missing_required_phase_fails() {
        let mut trace = ChromeTrace::new();
        trace.add_task(&task(1, "train", 0, 10, 50));
        let err = trace.validate(&["train", "eager"]).unwrap_err();
        assert!(err.contains("eager"), "{err}");
    }

    #[test]
    fn nested_and_overlapping_spans_still_balance() {
        let mut trace = ChromeTrace::new();
        // Outer 0..100 and inner 20..40 on the same track.
        trace.add_span("outer", "a", 0, 1, 0, 100, vec![]);
        trace.add_span("inner", "a", 0, 1, 20, 40, vec![]);
        let stats = trace.validate(&["a"]).unwrap();
        assert_eq!(stats.spans, 2);
    }

    #[test]
    fn dangling_end_is_rejected() {
        let mut trace = ChromeTrace::new();
        trace.events.push(TraceEvent {
            name: "x".into(),
            cat: "c".into(),
            ph: 'E',
            ts_us: 5,
            pid: 0,
            tid: 1,
            args: vec![],
        });
        assert!(trace.validate(&[]).is_err());
    }

    #[test]
    fn zero_length_span_keeps_begin_before_end() {
        let mut trace = ChromeTrace::new();
        trace.add_span("z", "c", 0, 1, 10, 10, vec![]);
        assert!(trace.validate(&["c"]).is_ok());
    }

    #[test]
    fn dangling_begin_is_rejected() {
        let mut trace = ChromeTrace::new();
        trace.events.push(TraceEvent {
            name: "x".into(),
            cat: "c".into(),
            ph: 'B',
            ts_us: 5,
            pid: 0,
            tid: 1,
            args: vec![],
        });
        let err = trace.validate(&[]).unwrap_err();
        assert!(err.contains("unbalanced"), "{err}");
    }

    #[test]
    fn non_monotonic_track_is_rejected() {
        // `ChromeTrace::validate` checks the *rendered* order, where the
        // global timestamp sort makes per-track monotonicity hold by
        // construction; the underlying sequence checker still defends
        // hand-merged event lists, so exercise it directly.
        let ev = |ph: char, ts_us: u64| TraceEvent {
            name: "x".into(),
            cat: "c".into(),
            ph,
            ts_us,
            pid: 0,
            tid: 1,
            args: vec![],
        };
        let bad = [ev('B', 20), ev('E', 30), ev('i', 10)];
        let err = validate_sequence(&bad, &[]).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
        // Different tracks keep independent clocks: the same timestamps
        // spread over two tids are fine.
        let mut ok = [ev('B', 20), ev('E', 30), ev('i', 10)];
        ok[2].tid = 2;
        assert!(validate_sequence(&ok, &[]).is_ok());
    }

    #[test]
    fn unsupported_phase_is_rejected() {
        let mut trace = ChromeTrace::new();
        trace.events.push(TraceEvent {
            name: "x".into(),
            cat: "c".into(),
            ph: 'X',
            ts_us: 5,
            pid: 0,
            tid: 1,
            args: vec![],
        });
        let err = trace.validate(&[]).unwrap_err();
        assert!(err.contains("unsupported phase"), "{err}");
    }

    #[test]
    fn instant_events_validate_count_and_render_with_thread_scope() {
        let mut trace = ChromeTrace::new();
        trace.add_task(&task(1, "train", 0, 10, 50));
        trace.add_instant(
            "anomaly:phase_outlier",
            "anomaly",
            0,
            1,
            30,
            vec![("factor_x100".to_string(), "412".to_string())],
        );
        let stats = trace.validate(&["train"]).unwrap();
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 1);
        let json = trace.render_json();
        assert!(json.contains("\"ph\": \"i\", \"s\": \"t\""), "{json}");
        assert!(json.contains("anomaly:phase_outlier"));
    }
}
