//! Figure 5 — median feature-selection step (with IQR) per dataset.
//!
//! Runs rising-bandit feature selection at horizons `T = 20` and `T = 50` and
//! reports the median iteration at which the bandit converged to a single
//! extractor, with the interquartile range across trials. Expected shape:
//! `T = 20` converges faster than `T = 50`, and even at `T = 50` selection
//! completes within roughly 30 steps.
//!
//! ```text
//! cargo run --release -p ve-bench --bin fig5 [-- --full]
//! ```

use ve_bench::{print_header, print_row, Profile};
use ve_stats::{iqr, median};
use vocalexplore::prelude::*;
use vocalexplore::FeatureSelectionPolicy;

fn main() {
    let profile = Profile::from_args();
    let trials: u64 = if std::env::args().any(|a| a == "--full") {
        20
    } else {
        8
    };
    println!(
        "Figure 5: median feature-selection step with IQR ({} trials, C = 5, w = 5)\n",
        trials
    );

    let widths = [12, 22, 22];
    print_header(
        &["Dataset", "T = 20  median [IQR]", "T = 50  median [IQR]"],
        &widths,
    );

    for dataset in DatasetName::all() {
        let mut cells = vec![dataset.to_string()];
        for horizon in [20usize, 50] {
            let mut steps = Vec::new();
            for trial in 0..trials {
                let mut cfg = profile.session(dataset, trial * 131 + 3);
                cfg.system = cfg
                    .system
                    .with_feature_selection(FeatureSelectionPolicy::Bandit(RisingBanditConfig {
                        horizon,
                        ..RisingBanditConfig::default()
                    }));
                let outcome = ve_bench::run_session(cfg);
                if let Some(step) = outcome.feature_selected_at {
                    steps.push(step as f64);
                }
            }
            if steps.is_empty() {
                cells.push("did not converge".to_string());
            } else {
                let (p25, p75) = iqr(&steps);
                cells.push(format!("{:.0} [{:.0}, {:.0}]", median(&steps), p25, p75));
            }
        }
        print_row(&cells, &widths);
    }
    println!("\nExpected shape: T = 20 converges no later than T = 50; both within ~30 steps.");
}
