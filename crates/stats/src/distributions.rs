//! Random distributions used by the synthetic-corpus generator and the
//! feature-embedding simulator: Zipfian class frequencies (the paper's K20
//! (skew) construction uses Zipf with `s = 2`) and standard-normal sampling
//! via the Box–Muller transform (so the workspace does not need `rand_distr`).

use rand::Rng;

/// Zipfian distribution over ranks `1..=k` with exponent `s`:
/// `P[rank = r] ∝ 1 / r^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, one entry per rank.
    cdf: Vec<f64>,
    /// Normalized probabilities per rank.
    probs: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `k` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `s < 0`.
    pub fn new(k: usize, s: f64) -> Self {
        assert!(k > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let raw: Vec<f64> = (1..=k).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        // Guard against floating-point drift.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf, probs }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `r` (0-based).
    pub fn prob(&self, r: usize) -> f64 {
        self.probs[r]
    }

    /// Samples a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Computes per-class video counts following the paper's K20 (skew)
/// construction: class frequencies follow a Zipf(s) distribution, scaled so
/// the most common class has `max_count` videos and every class has at least
/// `min_count`.
///
/// With `k = 20`, `s = 2.0`, `max_count = 650`, `min_count = 3` this
/// reproduces the paper's "most common activity has 650 videos and the least
/// common activity has 3 videos" (Section 5, Datasets).
pub fn zipf_frequencies(k: usize, s: f64, max_count: usize, min_count: usize) -> Vec<usize> {
    assert!(k > 0);
    assert!(max_count >= min_count);
    let zipf = Zipf::new(k, s);
    let p0 = zipf.prob(0);
    (0..k)
        .map(|r| {
            let scaled = (zipf.prob(r) / p0 * max_count as f64).round() as usize;
            scaled.max(min_count)
        })
        .collect()
}

/// Standard-normal sampler using the Box–Muller transform with caching of the
/// second generated variate.
#[derive(Debug, Clone, Default)]
pub struct BoxMuller {
    cached: Option<f64>,
}

impl BoxMuller {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples one standard-normal value.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Samples a normal value with the given mean and standard deviation.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        mean + std * self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = Zipf::new(20, 2.0);
        let total: f64 = (0..20).map(|r| z.prob(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_probabilities_decrease_with_rank() {
        let z = Zipf::new(10, 1.5);
        for r in 1..10 {
            assert!(z.prob(r) <= z.prob(r - 1));
        }
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(5, 0.0);
        for r in 0..5 {
            assert!((z.prob(r) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_respects_ordering() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        // Empirical frequency of rank 0 should be near its probability.
        let freq0 = counts[0] as f64 / 20_000.0;
        assert!((freq0 - z.prob(0)).abs() < 0.02);
    }

    #[test]
    fn zipf_frequencies_match_paper_k20_skew() {
        let counts = zipf_frequencies(20, 2.0, 650, 3);
        assert_eq!(counts.len(), 20);
        assert_eq!(counts[0], 650, "most common class has 650 videos");
        assert_eq!(
            *counts.last().unwrap(),
            3,
            "least common class has 3 videos"
        );
        // Monotone non-increasing.
        for w in counts.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Total should be close to the paper's 1050 training videos.
        let total: usize = counts.iter().sum();
        assert!(
            (1000..1200).contains(&total),
            "total {total} should be near the paper's 1050"
        );
    }

    #[test]
    fn box_muller_mean_and_variance() {
        let mut bm = BoxMuller::new();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| bm.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn box_muller_with_mean_and_std() {
        let mut bm = BoxMuller::new();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| bm.sample_with(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }
}
