//! `nondeterministic-iteration`: iterating a `std::collections::HashMap` /
//! `HashSet` in a determinism-critical crate.
//!
//! **Contract.** `HashMap`/`HashSet` iteration order is randomized per
//! process (`RandomState`). In `ve-al`, `ve-ml`, `ve-storage`, and
//! `vocalexplore` — the crates ROADMAP binds to "bit-identical at any
//! worker/thread count, a pure function of inputs" — any iteration whose
//! order can reach a selection, a stored artifact, or a float reduction is
//! a latent nondeterminism bug. Lookups (`get`, `contains_key`, `insert`)
//! are fine; only order-exposing methods are flagged.
//!
//! # How bindings are found (token-level, no type inference)
//!
//! * declarations: `name: HashMap<…>` fields/params and
//!   `let [mut] name = HashMap::new()/with_capacity(…)/from(…)` bindings —
//!   collected **crate-wide**, so a field declared in one file is tracked in
//!   the crate's other files;
//! * map-returning functions: `fn name(…) -> …HashMap<…>` anywhere in the
//!   workspace, so `store.windows().iter()` is caught at the call site.
//!
//! # Exemptions (proof the order cannot escape)
//!
//! * the same statement sorts (`.sort*()`) or lands in an ordered collection
//!   (`BTreeMap`/`BTreeSet` appears in the statement);
//! * the *next* statement sorts the binding the statement just created
//!   (`let mut v: Vec<_> = m.keys().collect(); v.sort();`);
//! * a `ve-lint: allow(nondeterministic-iteration) -- <why order-insensitive>`
//!   annotation.

use crate::engine::{Finding, DETERMINISM_CRITICAL_CRATES, RULE_NONDETERMINISTIC_ITERATION};
use crate::workspace::{SourceFile, WorkspaceModel};
use std::collections::{BTreeMap, BTreeSet};

/// Methods that expose iteration order.
const ORDER_EXPOSING: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

const SORTERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

fn is_hash_collection(name: &str) -> bool {
    name == "HashMap" || name == "HashSet"
}

/// Collects identifiers bound to hash collections in this file: struct
/// fields, fn params (`name: HashMap<…>`), and `let` bindings initialized
/// from a `HashMap`/`HashSet` constructor path.
fn collect_bindings(file: &SourceFile, out: &mut BTreeSet<String>) {
    for ci in 0..file.code.len() {
        let Some(tok) = file.ct(ci) else { continue };
        if !(tok.kind == crate::lexer::TokenKind::Ident && is_hash_collection(&tok.text)) {
            continue;
        }
        // Bindings declared in test code must not taint the crate's
        // production files (tests freely build scratch HashSets).
        if file.is_test_line(tok.line) {
            continue;
        }
        // Walk back over the path prefix (`std :: collections ::`).
        let mut j = ci;
        while j >= 2
            && file.ct(j - 1).is_some_and(|t| t.is_punct(':'))
            && file.ct(j - 2).is_some_and(|t| t.is_punct(':'))
        {
            if j < 3 {
                break;
            }
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        // Walk back out of wrapper generics: `warm: Mutex<HashMap<…>>` or
        // `index: Arc<RwLock<HashMap<…>>>` still binds `warm`/`index` to a
        // hash collection (reached through `.lock()`/`.read()` passthroughs).
        while j >= 2
            && file.ct(j - 1).is_some_and(|t| t.is_punct('<'))
            && file
                .ct(j - 2)
                .is_some_and(|t| t.kind == crate::lexer::TokenKind::Ident)
        {
            j -= 2;
        }
        // Walk back over reference prefixes: `m: &HashMap<…>` and
        // `m: &'a mut HashMap<…>` still bind `m` to a hash collection.
        while j >= 2
            && file.ct(j - 1).is_some_and(|t| {
                t.is_punct('&') || t.is_ident("mut") || t.kind == crate::lexer::TokenKind::Lifetime
            })
        {
            j -= 1;
        }
        let before = file.ct(j - 1).expect("j > 0");
        if before.is_punct(':') {
            // `name : [path::]HashMap` — field, param, or annotated let.
            if let Some(name) = file.ct(j.wrapping_sub(2)) {
                if name.kind == crate::lexer::TokenKind::Ident {
                    out.insert(name.text.clone());
                }
            }
        } else if before.is_punct('=') {
            // `let [mut] name = [path::]HashMap::new()` — walk back past `=`.
            let mut k = j - 1; // index of `=`
            if k == 0 {
                continue;
            }
            k -= 1;
            let Some(name) = file.ct(k) else { continue };
            if name.kind != crate::lexer::TokenKind::Ident {
                continue;
            }
            let is_let = (k >= 1 && file.ct(k - 1).is_some_and(|t| t.is_ident("let")))
                || (k >= 2
                    && file.ct(k - 1).is_some_and(|t| t.is_ident("mut"))
                    && file.ct(k - 2).is_some_and(|t| t.is_ident("let")));
            if is_let {
                out.insert(name.text.clone());
            }
        }
    }
}

/// Collects names of functions whose return type mentions a hash collection
/// (`fn windows(…) -> &HashMap<…>`).
fn collect_map_returning_fns(ws: &WorkspaceModel) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in &ws.files {
        for ci in 0..file.code.len() {
            if !file.ct(ci).is_some_and(|t| t.is_ident("fn")) {
                continue;
            }
            let Some(name) = file.ct(ci + 1) else {
                continue;
            };
            if name.kind != crate::lexer::TokenKind::Ident || file.is_test_line(name.line) {
                continue;
            }
            // Find the param list, then scan the return type (tokens between
            // `)` and the body `{` or `;`).
            let mut j = ci + 2;
            while j < file.code.len() && !file.ct(j).is_some_and(|t| t.is_punct('(')) {
                j += 1;
            }
            if j >= file.code.len() {
                continue;
            }
            let close = file.matching_close(j);
            let mut k = close + 1;
            let mut returns_map = false;
            while let Some(t) = file.ct(k) {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.kind == crate::lexer::TokenKind::Ident && is_hash_collection(&t.text) {
                    returns_map = true;
                }
                k += 1;
            }
            if returns_map {
                out.insert(name.text.clone());
            }
        }
    }
    out
}

/// Statement span (code-token indices) around `ci`: back to the previous
/// `;`/`{`/`}` and forward to the next `;` (or `{`/`}` boundary), skipping
/// over nested bracket groups when scanning forward.
fn statement_span(file: &SourceFile, ci: usize) -> (usize, usize) {
    let mut start = ci;
    while start > 0 {
        let t = file.ct(start - 1).expect("start > 0");
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    let mut end = ci;
    while let Some(t) = file.ct(end) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            end = file.matching_close(end);
        } else if t.is_punct(';') || t.is_punct('}') {
            break;
        }
        end += 1;
    }
    (start, end.min(file.code.len().saturating_sub(1)))
}

/// Whether the statement proves its order cannot escape: it sorts, or it
/// collects into an ordered collection.
fn statement_neutralizes(file: &SourceFile, span: (usize, usize)) -> bool {
    for ci in span.0..=span.1 {
        let Some(t) = file.ct(ci) else { continue };
        if t.kind == crate::lexer::TokenKind::Ident
            && (SORTERS.contains(&t.text.as_str())
                || t.text == "BTreeMap"
                || t.text == "BTreeSet"
                || t.text == "BinaryHeap")
        {
            return true;
        }
    }
    false
}

/// Whether the statement is `let [mut] b = …;` and the following statement
/// starts with `b.sort*(`.
fn next_statement_sorts_binding(file: &SourceFile, span: (usize, usize)) -> bool {
    if !file.ct(span.0).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut bi = span.0 + 1;
    if file.ct(bi).is_some_and(|t| t.is_ident("mut")) {
        bi += 1;
    }
    let Some(binding) = file.ct(bi) else {
        return false;
    };
    if binding.kind != crate::lexer::TokenKind::Ident {
        return false;
    }
    let next = span.1 + 1;
    file.ct(next).is_some_and(|t| t.text == binding.text)
        && file.ct(next + 1).is_some_and(|t| t.is_punct('.'))
        && file
            .ct(next + 2)
            .is_some_and(|t| SORTERS.contains(&t.text.as_str()))
}

pub fn check(ws: &WorkspaceModel) -> Vec<Finding> {
    let map_fns = collect_map_returning_fns(ws);
    // Crate-wide binding sets: fields declared in one file are used in others.
    let mut crate_bindings: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for file in &ws.files {
        if !DETERMINISM_CRITICAL_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        collect_bindings(
            file,
            crate_bindings.entry(file.crate_name.as_str()).or_default(),
        );
    }

    let mut out = Vec::new();
    for file in &ws.files {
        let Some(bindings) = crate_bindings.get(file.crate_name.as_str()) else {
            continue;
        };
        for ci in 0..file.code.len() {
            let Some(candidate) = order_exposing_use(file, ci, bindings, &map_fns) else {
                continue;
            };
            let tok = file.ct(ci).expect("candidate matched");
            if file.is_test_line(tok.line) {
                continue;
            }
            let span = statement_span(file, ci);
            if statement_neutralizes(file, span) || next_statement_sorts_binding(file, span) {
                continue;
            }
            out.push(Finding::new(
                RULE_NONDETERMINISTIC_ITERATION,
                file,
                tok.line,
                tok.col,
                format!(
                    "{candidate} iterates a std hash collection whose order is randomized per \
                     process, in determinism-critical crate `{}`; sort the keys, switch to \
                     `BTreeMap`/`BTreeSet`, or annotate why the order cannot escape",
                    file.crate_name
                ),
            ));
        }
    }
    out
}

/// If the code token at `ci` starts an order-exposing use of a known hash
/// collection, describes it; otherwise `None`.
fn order_exposing_use(
    file: &SourceFile,
    ci: usize,
    bindings: &BTreeSet<String>,
    map_fns: &BTreeSet<String>,
) -> Option<String> {
    let tok = file.ct(ci)?;
    if tok.kind != crate::lexer::TokenKind::Ident {
        return None;
    }
    let name = tok.text.as_str();

    // `map.keys()` / map-returning call `windows().iter()`.
    let (desc, mut after_recv) = if bindings.contains(name) {
        (format!("`{name}.<m>()`"), ci + 1)
    } else if map_fns.contains(name) && file.ct(ci + 1).is_some_and(|t| t.is_punct('(')) {
        let close = file.matching_close(ci + 1);
        (format!("`{name}().<m>()`"), close + 1)
    } else {
        return None;
    };
    // Skip guard/reference passthroughs: `warm.lock().keys()` still iterates
    // the map inside.
    const PASSTHROUGH: &[&str] = &["lock", "read", "write", "borrow", "borrow_mut", "as_ref"];
    while file.ct(after_recv).is_some_and(|t| t.is_punct('.'))
        && file
            .ct(after_recv + 1)
            .is_some_and(|t| PASSTHROUGH.contains(&t.text.as_str()))
        && file.ct(after_recv + 2).is_some_and(|t| t.is_punct('('))
        && file.ct(after_recv + 3).is_some_and(|t| t.is_punct(')'))
    {
        after_recv += 4;
    }
    if file.ct(after_recv).is_some_and(|t| t.is_punct('.')) {
        if let Some(m) = file.ct(after_recv + 1) {
            if ORDER_EXPOSING.contains(&m.text.as_str())
                && file.ct(after_recv + 2).is_some_and(|t| t.is_punct('('))
            {
                return Some(desc.replace("<m>", &m.text));
            }
        }
    }

    // `for _ in [&][mut] [self.] name {` — direct for-loop iteration. Only
    // fires when `name` is directly followed by `{`, so `map.len()` in a
    // range expression never matches.
    if bindings.contains(name) && file.ct(ci + 1).is_some_and(|t| t.is_punct('{')) {
        // Walk back over `&`, `mut`, `self.`, and require the `in` keyword.
        let mut j = ci;
        if j >= 2
            && file.ct(j - 1).is_some_and(|t| t.is_punct('.'))
            && file.ct(j - 2).is_some_and(|t| t.is_ident("self"))
        {
            j -= 2;
        }
        while j >= 1 {
            let t = file.ct(j - 1).expect("j >= 1");
            if t.is_punct('&') || t.is_ident("mut") {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 1 && file.ct(j - 1).is_some_and(|t| t.is_ident("in")) {
            return Some(format!("`for … in {name}`"));
        }
    }
    None
}
